"""Error-hierarchy contract: one except clause catches the whole family."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.LexerError("x", 0),
    errors.ParseError("x", 3),
    errors.ParseError("x"),
    errors.ResolutionError("x"),
    errors.CatalogError("x"),
    errors.UnsupportedQueryError("x"),
    errors.EngineError("x"),
    errors.BackendError("x"),
    errors.DomainError("x"),
    errors.DnfBlowupError("x", 100, 10),
    errors.SimulationError("x"),
]


class TestHierarchy:
    @pytest.mark.parametrize("error", ALL_ERRORS, ids=lambda e: type(e).__name__)
    def test_everything_is_a_trac_error(self, error):
        assert isinstance(error, errors.TracError)

    def test_lexer_error_carries_position(self):
        error = errors.LexerError("bad char", 17)
        assert error.position == 17
        assert "offset 17" in str(error)

    def test_parse_error_position_optional(self):
        with_pos = errors.ParseError("oops", 5)
        without = errors.ParseError("oops")
        assert "offset 5" in str(with_pos)
        assert "offset" not in str(without)

    def test_dnf_blowup_carries_counts(self):
        error = errors.DnfBlowupError("too big", term_count=5000, limit=4096)
        assert error.term_count == 5000
        assert error.limit == 4096

    def test_single_except_clause_suffices(self):
        """The promise the docstring makes: catch TracError, get them all."""
        from repro import Catalog, MemoryBackend, RecencyReporter

        reporter = RecencyReporter(MemoryBackend(Catalog()), create_temp_tables=False)
        for bad_sql in (
            "SELECT",                     # parse error
            "SELECT x FROM missing",      # resolution error
            "SELECT ' FROM t",            # lexer error
        ):
            with pytest.raises(errors.TracError):
                reporter.report(bad_sql)
