"""Per-source health: what the supervision layer knows that the data don't say.

The recency report infers staleness from the Heartbeat table alone — a
source that stops reporting simply freezes. But the *deployment* often knows
more: a sniffer supervisor that exhausted its restart budget, or watched a
source go silent, has positive evidence that the source is down rather than
merely quiet. :class:`SourceHealth` is the registry where that evidence
lives: supervisors write status transitions into it, and a
:class:`~repro.core.report.RecencyReporter` given the registry annotates its
reports with the degraded sources so the paper's "exceptional source"
statistics can be cross-checked against known outages (see
docs/ROBUSTNESS.md).

The registry is deliberately tiny and dependency-free: sources are opaque
string ids, statuses are the four constants below, and everything is
guarded by one lock so supervisors and reporters may live on different
threads.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

#: A source whose sniffer is polling normally.
HEALTHY = "healthy"
#: Transient poll failures: the supervisor is retrying with backoff.
BACKING_OFF = "backing_off"
#: The sniffer crashed and was restarted; the next poll is a probe.
RESTARTING = "restarting"
#: Permanent failure, exhausted restart budget, or silent source: the
#: supervisor gave up and quarantined the source.
DEGRADED = "degraded"

STATUSES = (HEALTHY, BACKING_OFF, RESTARTING, DEGRADED)


class SourceStatus:
    """One source's current status, with the why and the when."""

    __slots__ = ("source_id", "status", "reason", "since")

    def __init__(
        self,
        source_id: str,
        status: str,
        reason: Optional[str] = None,
        since: Optional[float] = None,
    ) -> None:
        self.source_id = source_id
        self.status = status
        self.reason = reason
        self.since = since

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``/healthz`` endpoint embeds it)."""
        return {
            "source": self.source_id,
            "status": self.status,
            "reason": self.reason,
            "since": self.since,
        }

    def __repr__(self) -> str:
        extra = f", reason={self.reason!r}" if self.reason else ""
        return f"SourceStatus({self.source_id!r}, {self.status}{extra})"


class SourceHealth:
    """Thread-safe registry of per-source supervision statuses."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._statuses: Dict[str, SourceStatus] = {}

    def mark(
        self,
        source_id: str,
        status: str,
        reason: Optional[str] = None,
        at: Optional[float] = None,
    ) -> None:
        """Record ``source_id``'s new status (overwrites the previous one)."""
        if status not in STATUSES:
            raise ValueError(f"unknown source status {status!r}; expected one of {STATUSES}")
        with self._lock:
            self._statuses[source_id] = SourceStatus(source_id, status, reason, at)

    def status_of(self, source_id: str) -> Optional[str]:
        """The source's status string, or ``None`` if never marked."""
        with self._lock:
            entry = self._statuses.get(source_id)
        return entry.status if entry is not None else None

    def entry_of(self, source_id: str) -> Optional[SourceStatus]:
        with self._lock:
            return self._statuses.get(source_id)

    def is_degraded(self, source_id: str) -> bool:
        return self.status_of(source_id) == DEGRADED

    def degraded_sources(self) -> List[str]:
        """Sorted ids of every source currently marked degraded."""
        with self._lock:
            return sorted(
                sid for sid, entry in self._statuses.items() if entry.status == DEGRADED
            )

    def snapshot(self) -> Dict[str, SourceStatus]:
        """A point-in-time copy of every entry (for display / assertions)."""
        with self._lock:
            return dict(self._statuses)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Every entry as JSON-serializable dicts, keyed by source id."""
        return {sid: entry.to_dict() for sid, entry in sorted(self.snapshot().items())}

    def __len__(self) -> int:
        with self._lock:
            return len(self._statuses)

    def __repr__(self) -> str:
        degraded = self.degraded_sources()
        return f"SourceHealth({len(self)} sources, {len(degraded)} degraded)"
