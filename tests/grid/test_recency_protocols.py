"""The two recency protocols of Section 3.1."""

import pytest

from repro import MemoryBackend
from repro.errors import SimulationError
from repro.grid.machine import Machine
from repro.grid.simulator import monitoring_catalog
from repro.grid.sniffer import Sniffer, SnifferConfig


@pytest.fixture
def backend():
    return MemoryBackend(monitoring_catalog(["m1"]))


def sniffer_with(machine, backend, protocol, **kwargs):
    config = SnifferConfig(lag=2.0, recency_protocol=protocol, **kwargs)
    return Sniffer(machine, backend, config)


class TestConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(SimulationError):
            SnifferConfig(recency_protocol="telepathy")


class TestLastEventProtocol:
    def test_quiet_source_looks_stale(self, backend):
        """The paper's stated disadvantage: with nothing to report for a
        long time, the source appears very out of date."""
        machine = Machine("m1")
        sniffer = sniffer_with(machine, backend, "last_event")
        machine.set_activity(1.0, "busy")
        sniffer.poll(10.0)
        assert backend.heartbeat_of("m1") == 1.0
        # Long quiet period: recency is frozen at the last event.
        sniffer.poll(1000.0)
        assert backend.heartbeat_of("m1") == 1.0

    def test_heartbeat_records_compensate(self, backend):
        machine = Machine("m1")
        sniffer = sniffer_with(machine, backend, "last_event")
        machine.set_activity(1.0, "busy")
        machine.heartbeat(500.0)
        sniffer.poll(1000.0)
        assert backend.heartbeat_of("m1") == 500.0

    def test_recency_never_regresses(self, backend):
        machine = Machine("m1")
        sniffer = sniffer_with(machine, backend, "last_event")
        machine.heartbeat(5.0)
        sniffer.poll(10.0)
        # An out-of-band (manual) heartbeat bump is not overwritten by a
        # poll that loads nothing.
        sniffer.poll(20.0)
        assert backend.heartbeat_of("m1") == 5.0


class TestHorizonProtocol:
    def test_quiet_source_stays_fresh(self, backend):
        """The protocol fix: recency advances to the visibility horizon
        even with nothing to report."""
        machine = Machine("m1")
        sniffer = sniffer_with(machine, backend, "horizon")
        machine.set_activity(1.0, "busy")
        sniffer.poll(10.0)
        assert backend.heartbeat_of("m1") == 8.0  # horizon = 10 - lag
        sniffer.poll(1000.0)
        assert backend.heartbeat_of("m1") == 998.0

    def test_horizon_not_advanced_past_unread_batch(self, backend):
        """With a truncated (batched) read the drain is incomplete, so the
        horizon claim would be false — recency must stay at the last loaded
        event."""
        machine = Machine("m1")
        sniffer = sniffer_with(machine, backend, "horizon", batch_size=2)
        for t in (1.0, 2.0, 3.0, 4.0):
            machine.heartbeat(t)
        sniffer.poll(10.0)
        assert backend.heartbeat_of("m1") == 2.0  # 2 of 4 loaded
        sniffer.poll(20.0)
        assert backend.heartbeat_of("m1") == 18.0  # now fully drained

    def test_dead_machine_hazard(self, backend):
        """Documented hazard: the horizon protocol cannot distinguish a
        quiet source from a dead one — the failed machine's recency keeps
        advancing. (Under the last-event protocol it would freeze and be
        flagged exceptional.)"""
        machine = Machine("m1")
        sniffer = sniffer_with(machine, backend, "horizon")
        machine.set_activity(1.0, "busy")
        sniffer.poll(10.0)
        machine.fail()
        sniffer.poll(500.0)
        assert backend.heartbeat_of("m1") == 498.0  # advances regardless


class TestProtocolComparison:
    def test_min_recency_guarantee_holds_for_both(self, backend):
        """Whatever the protocol, every event at or before the reported
        recency is in the database — the Section 4.3 snapshot guarantee."""
        for protocol in ("last_event", "horizon"):
            backend = MemoryBackend(monitoring_catalog(["m1"]))
            machine = Machine("m1")
            sniffer = sniffer_with(machine, backend, protocol)
            for t in (1.0, 5.0, 9.0):
                machine.heartbeat(t)
            machine.set_activity(9.5, "busy")
            sniffer.poll(12.0)
            recency = backend.heartbeat_of("m1")
            assert recency is not None
            loaded = sniffer.offset
            log_events = list(machine.log)
            for i, event in enumerate(log_events):
                if event.timestamp <= recency:
                    assert i < loaded, (protocol, event)
