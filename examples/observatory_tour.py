#!/usr/bin/env python
"""Observatory tour: live endpoints, events, SLOs and the flight recorder.

Walks the Recency Observatory end to end, entirely in-process:

1. run a grid simulation with an injected silence fault, a staleness SLO
   and an :class:`~repro.obs.server.ObservatoryServer` on an ephemeral
   port;
2. scrape the live ``/metrics``, ``/healthz`` and ``/status`` endpoints
   over real HTTP mid-run, exactly as Prometheus or ``trac top`` would;
3. render one ``trac top`` dashboard frame from the status document;
4. inspect the structured event log and the flight dump the watchdog
   anomaly triggered.

The same wiring is available from the command line::

    trac simulate --db grid.sqlite --faults plan.json --serve 9464 \
        --flight-dir flights --top

Run:  python examples/observatory_tour.py
"""

import json
import tempfile
import urllib.request

from repro import obs
from repro.core.slo import StalenessSLO
from repro.faults import plan_from_json
from repro.grid import GridSimulator, SimulationConfig
from repro.grid.supervisor import SupervisorPolicy
from repro.obs.dashboard import render_top, status_from_simulator
from repro.obs.flight import FlightRecorder
from repro.obs.server import ObservatoryServer

PLAN = json.dumps(
    {"seed": 7, "faults": [{"kind": "silence", "source": "m2", "start": 5}]}
)


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.read().decode("utf-8")


def main() -> None:
    print("=== Observatory tour ===")
    telemetry = obs.enable()
    slo = StalenessSLO(target_p95=25.0, budget=0.05)
    sim = GridSimulator(
        SimulationConfig(num_machines=4, seed=7),
        fault_plan=plan_from_json(PLAN),
        supervisor_policy=SupervisorPolicy(silence_timeout=30.0),
        slo=slo,
        telemetry=telemetry,
    )

    flight_dir = tempfile.mkdtemp(prefix="trac-flight-")
    recorder = FlightRecorder(telemetry, flight_dir, slo=slo, health=sim.health)
    recorder.install()

    with ObservatoryServer(
        telemetry,
        health=sim.health,
        status_provider=lambda: status_from_simulator(sim, slo),
    ) as server:
        print(f"observatory serving on {server.url}")

        print("\n--- 1. simulate with an injected silence on m2 ---")
        sim.run(200)
        print(f"simulated to t={sim.now:.0f}s")

        print("\n--- 2. scrape the live endpoints over HTTP ---")
        metrics = scrape(server.url + "/metrics")
        lag_lines = [
            line for line in metrics.splitlines() if line.startswith("trac_source_lag")
        ]
        print(f"scraped /metrics: {len(metrics.splitlines())} lines, "
              f"{len(lag_lines)} lag-histogram samples")
        healthz = json.loads(scrape(server.url + "/healthz"))
        print(f"scraped /healthz: status={healthz['status']} "
              f"degraded={healthz['degraded']}")

        print("\n--- 3. one trac top frame from /status ---")
        status = json.loads(scrape(server.url + "/status"))
        print(render_top(status))

    print("--- 4. the structured event log ---")
    for name, count in sorted(telemetry.events.counts_by_name().items()):
        print(f"  {name:<20} x{count}")

    print("\n--- 5. the flight recorder caught the anomaly ---")
    recorder.uninstall()
    for path in recorder.dumps:
        with open(path, encoding="utf-8") as fp:
            doc = json.load(fp)
        print(f"flight dump: trigger={doc['trigger']['name']} "
              f"source={doc['trigger']['source']} "
              f"events={len(doc['events'])} spans={len(doc['spans'])} "
              f"lag_series={sorted(doc['lag_series'])}")

    verdict = slo.status()
    state = f"BREACHED ({', '.join(verdict.breached)})" if not verdict.ok else "ok"
    print(f"\nstaleness SLO (p95 < {slo.target_p95:g}s): {state}")
    obs.disable()


if __name__ == "__main__":
    main()
