"""Synthetic data generation for the Section 5.2 experiments.

Schema: the Activity / Routing / Heartbeat triple of the paper's examples,
with source names ``Tao1 ... TaoK`` (the paper ran on Tao Linux and its
queries name machines ``Tao1, Tao10, ...``).

Key properties preserved from the paper's generator:

* ``data_ratio x num_sources = total_rows`` in Activity;
* roughly half the activity values are ``idle`` (the queried value) so the
  non-selective queries touch data from almost every source;
* the Routing table has one row per source and **maps the query machines
  onto themselves** — the assumption the paper states when computing the
  Naive method's false-positive rates for Q3/Q4;
* Heartbeat recency timestamps advance one step per source, with an
  optional set of "exceptional" sources frozen far in the past to exercise
  the z-score split.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.backends.base import Backend
from repro.catalog import (
    Catalog,
    Column,
    FiniteDomain,
    TableSchema,
    TimestampDomain,
)
from repro.errors import TracError


def source_name(index: int) -> str:
    """Name of the ``index``-th data source (1-based): ``Tao<i>``."""
    if index < 1:
        raise TracError("source indexes are 1-based")
    return f"Tao{index}"


def workload_catalog(num_sources: int) -> Catalog:
    """Catalog for the benchmark schema with finite machine domains."""
    machines = FiniteDomain({source_name(i) for i in range(1, num_sources + 1)})
    activity = TableSchema(
        "activity",
        [
            Column("mach_id", "TEXT", machines),
            Column("value", "TEXT", FiniteDomain({"idle", "busy"})),
            Column("event_time", "TIMESTAMP", TimestampDomain()),
        ],
        source_column="mach_id",
    )
    routing = TableSchema(
        "routing",
        [
            Column("mach_id", "TEXT", machines),
            Column("neighbor", "TEXT", machines),
            Column("event_time", "TIMESTAMP", TimestampDomain()),
        ],
        source_column="mach_id",
    )
    return Catalog([activity, routing])


class WorkloadConfig:
    """Parameters of one workload instance.

    Parameters
    ----------
    num_sources:
        Number of data sources (machines).
    data_ratio:
        Rows per source in the Activity table.
    seed:
        RNG seed for value assignment.
    idle_fraction:
        Fraction of activity rows with value ``idle``.
    base_time:
        Epoch timestamp of the oldest event.
    heartbeat_step:
        Seconds between consecutive sources' recency timestamps.
    exceptional_sources:
        Indexes (1-based) of sources whose heartbeat is frozen
        ``exceptional_gap`` seconds before ``base_time`` (z-score outliers).
    skew:
        Zipf exponent for the per-source row counts. 0 (the paper's setup)
        gives every source exactly ``data_ratio`` rows; larger values
        concentrate rows on low-index sources while keeping the *total* at
        ``num_sources x data_ratio`` (every source keeps at least one row).
        An ablation axis: real grids are never uniform.
    """

    def __init__(
        self,
        num_sources: int,
        data_ratio: int,
        seed: int = 0,
        idle_fraction: float = 0.5,
        base_time: float = 1_142_368_000.0,  # around the paper's March 2006
        heartbeat_step: float = 60.0,
        exceptional_sources: Sequence[int] = (),
        exceptional_gap: float = 30 * 24 * 3600.0,
        skew: float = 0.0,
    ) -> None:
        if num_sources < 1 or data_ratio < 1:
            raise TracError("num_sources and data_ratio must be positive")
        if skew < 0:
            raise TracError("skew cannot be negative")
        self.num_sources = num_sources
        self.data_ratio = data_ratio
        self.seed = seed
        self.idle_fraction = idle_fraction
        self.base_time = base_time
        self.heartbeat_step = heartbeat_step
        self.exceptional_sources = tuple(exceptional_sources)
        self.exceptional_gap = exceptional_gap
        self.skew = skew

    def rows_per_source(self) -> List[int]:
        """Per-source Activity row counts (uniform or Zipf-skewed)."""
        if self.skew == 0.0:
            return [self.data_ratio] * self.num_sources
        weights = [1.0 / (i ** self.skew) for i in range(1, self.num_sources + 1)]
        scale = self.total_rows / sum(weights)
        counts = [max(1, int(w * scale)) for w in weights]
        # Fix rounding drift on the largest source, keeping it >= 1.
        drift = self.total_rows - sum(counts)
        counts[0] = max(1, counts[0] + drift)
        return counts

    @property
    def total_rows(self) -> int:
        return self.num_sources * self.data_ratio

    def __repr__(self) -> str:
        return (
            f"WorkloadConfig(sources={self.num_sources}, ratio={self.data_ratio}, "
            f"rows={self.total_rows})"
        )


class WorkloadData:
    """Generated rows, ready to load into any backend."""

    def __init__(
        self,
        config: WorkloadConfig,
        activity: List[Tuple[str, str, float]],
        routing: List[Tuple[str, str, float]],
        heartbeat: List[Tuple[str, float]],
    ) -> None:
        self.config = config
        self.activity = activity
        self.routing = routing
        self.heartbeat = heartbeat

    @property
    def sources(self) -> List[str]:
        return [source_name(i) for i in range(1, self.config.num_sources + 1)]

    def __repr__(self) -> str:
        return (
            f"WorkloadData(activity={len(self.activity)}, routing={len(self.routing)}, "
            f"heartbeat={len(self.heartbeat)})"
        )


def generate_workload(
    config: WorkloadConfig,
    query_machine_indexes: Sequence[int] = (),
) -> WorkloadData:
    """Generate the Activity / Routing / Heartbeat rows.

    ``query_machine_indexes`` are the (1-based) indexes of the machines the
    benchmark queries name; Routing maps that set onto itself (cyclically),
    as the paper assumes when deriving the Naive fpr formulas. All other
    machines route to their successor.
    """
    rng = random.Random(config.seed)
    names = [source_name(i) for i in range(1, config.num_sources + 1)]

    activity: List[Tuple[str, str, float]] = []
    event_time = config.base_time
    for name, row_count in zip(names, config.rows_per_source()):
        idle_count = round(row_count * config.idle_fraction)
        for row_index in range(row_count):
            value = "idle" if row_index < idle_count else "busy"
            activity.append((name, value, event_time))
            event_time += 1.0
    rng.shuffle(activity)

    query_set = [source_name(i) for i in query_machine_indexes if i <= config.num_sources]
    routing = _build_routing(names, query_set, config.base_time)

    exceptional = set(config.exceptional_sources)
    heartbeat: List[Tuple[str, float]] = []
    for i, name in enumerate(names, start=1):
        if i in exceptional:
            recency = config.base_time - config.exceptional_gap
        else:
            recency = config.base_time + i * config.heartbeat_step
        heartbeat.append((name, recency))

    return WorkloadData(config, activity, routing, heartbeat)


def _build_routing(
    names: List[str], query_set: List[str], base_time: float
) -> List[Tuple[str, str, float]]:
    routing: List[Tuple[str, str, float]] = []
    query_cycle: Dict[str, str] = {}
    if query_set:
        for i, name in enumerate(query_set):
            query_cycle[name] = query_set[(i + 1) % len(query_set)]
    for i, name in enumerate(names):
        if name in query_cycle:
            neighbor = query_cycle[name]
        else:
            neighbor = names[(i + 1) % len(names)]
        routing.append((name, neighbor, base_time))
    return routing


def load_workload(backend: Backend, data: WorkloadData, batch_size: int = 50000) -> None:
    """Bulk-load generated rows into a backend (tables are cleared first)."""
    backend.delete_all("activity")
    backend.delete_all("routing")
    backend.delete_all("heartbeat")
    for start in range(0, len(data.activity), batch_size):
        backend.insert_rows("activity", data.activity[start : start + batch_size])
    for start in range(0, len(data.routing), batch_size):
        backend.insert_rows("routing", data.routing[start : start + batch_size])
    for start in range(0, len(data.heartbeat), batch_size):
        backend.insert_rows("heartbeat", data.heartbeat[start : start + batch_size])
