"""Exporter tests: JSONL round-trip, Prometheus format + escaping, summary."""

import io
import math

import pytest

from repro.errors import TracError
from repro.obs import (
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    Tracer,
    metrics_snapshot,
    parse_prometheus_text,
    phase_durations,
    prometheus_text,
    render_summary,
    span_name_aggregates,
    spans_from_jsonl,
    spans_to_jsonl,
    write_spans_jsonl,
)


def make_spans():
    tracer = Tracer()
    with tracer.span("root", method="focused"):
        with tracer.span("child") as child:
            child.set_attribute("rows", 3)
    return tracer.finished_spans()


class TestJsonl:
    def test_round_trip(self):
        spans = make_spans()
        dumped = spans_to_jsonl(spans)
        parsed = spans_from_jsonl(dumped)
        assert parsed == [s.to_dict() for s in spans]

    def test_empty_input(self):
        assert spans_to_jsonl([]) == ""
        assert spans_from_jsonl("") == []

    def test_blank_lines_skipped(self):
        dumped = spans_to_jsonl(make_spans())
        assert len(spans_from_jsonl(dumped + "\n\n")) == 2

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(TracError, match="line 2"):
            spans_from_jsonl('{"name": "ok"}\nnot json')

    def test_non_object_line_raises(self):
        with pytest.raises(TracError, match="not an object"):
            spans_from_jsonl("[1, 2, 3]")


class TestWriteSpansJsonl:
    def test_streams_newline_terminated_lines(self):
        spans = make_spans()
        buffer = io.StringIO()
        assert write_spans_jsonl(spans, buffer) == len(spans)
        text = buffer.getvalue()
        assert text.endswith("\n")
        assert len(text.splitlines()) == len(spans)
        assert spans_from_jsonl(text) == [s.to_dict() for s in spans]

    def test_empty_iterable_writes_nothing(self):
        buffer = io.StringIO()
        assert write_spans_jsonl([], buffer) == 0
        assert buffer.getvalue() == ""

    def test_string_form_delegates(self):
        """spans_to_jsonl is the streaming writer minus the trailing newline."""
        spans = make_spans()
        buffer = io.StringIO()
        write_spans_jsonl(spans, buffer)
        assert spans_to_jsonl(spans) == buffer.getvalue().removesuffix("\n")

    def test_accepts_a_generator(self):
        buffer = io.StringIO()
        assert write_spans_jsonl(iter(make_spans()), buffer) == 2


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"backend": "sqlite"}, help="Hit count").inc(3)
        registry.gauge("backlog").set(7)
        text = prometheus_text(registry)
        assert "# HELP hits Hit count" in text
        assert "# TYPE hits counter" in text
        assert '\nhits{backend="sqlite"} 3\n' in text
        assert "# TYPE backlog gauge" in text
        assert "\nbacklog 7" in text

    def test_histogram_series(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", {"m": "x"}, buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(2.0)
        text = prometheus_text(registry)
        assert 'lat_bucket{m="x",le="0.5"} 1' in text
        assert 'lat_bucket{m="x",le="1"} 1' in text
        assert 'lat_bucket{m="x",le="+Inf"} 2' in text
        assert 'lat_sum{m="x"} 2.25' in text
        assert 'lat_count{m="x"} 2' in text

    def test_type_comment_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"b": "1"})
        registry.counter("hits", {"b": "2"})
        text = prometheus_text(registry)
        assert text.count("# TYPE hits counter") == 1

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        tricky = 'a"b\\c\nd'
        registry.counter("c", {"sql": tricky}).inc()
        text = prometheus_text(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert "\nd" not in text.split("# TYPE c counter")[1]  # newline escaped


class TestPrometheusParse:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"backend": "sqlite", "sql": 'x "y" \\ z\n'}).inc(5)
        registry.gauge("backlog").set(-2.5)
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        h.observe(3.0)
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[("hits", (("backend", "sqlite"), ("sql", 'x "y" \\ z\n')))] == 5
        assert samples[("backlog", ())] == -2.5
        assert samples[("lat_bucket", (("le", "1"),))] == 1
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 2
        assert samples[("lat_sum", ())] == 3.5
        assert samples[("lat_count", ())] == 2

    def test_comments_skipped(self):
        samples = parse_prometheus_text("# HELP x y\n# TYPE x counter\nx 1\n")
        assert samples == {("x", ()): 1.0}

    def test_malformed_line_raises(self):
        with pytest.raises(TracError, match="line 1"):
            parse_prometheus_text("not a sample line at all")

    @pytest.mark.parametrize(
        "tricky",
        [
            "trailing backslash \\",
            'all three: \\ " \n together',
            'nested escapes \\" \\n \\\\',
            "brace } and { inside",
            'comma,separated="fake"',
            "",
        ],
        ids=["backslash", "mixed", "pre-escaped", "braces", "comma-eq", "empty"],
    )
    def test_adversarial_label_values_round_trip(self, tricky):
        registry = MetricsRegistry()
        registry.counter("c", {"sql": tricky, "plain": "x"}).inc(2)
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[("c", (("plain", "x"), ("sql", tricky)))] == 2

    def test_adversarial_labels_on_histograms(self):
        registry = MetricsRegistry()
        tricky = 'SELECT "a\\b"\nFROM t'
        h = registry.histogram("lat", {"sql": tricky}, buckets=(1.0,))
        h.observe(0.5)
        h.observe(5.0)
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[("lat_bucket", (("sql", tricky), ("le", "1")))] == 1
        assert samples[("lat_bucket", (("sql", tricky), ("le", "+Inf")))] == 2
        assert samples[("lat_count", (("sql", tricky),))] == 2

    def test_infinite_gauge_values_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("up").set(math.inf)
        registry.gauge("down").set(-math.inf)
        text = prometheus_text(registry)
        assert "\nup +Inf" in text and "\ndown -Inf" in text
        samples = parse_prometheus_text(text)
        assert samples[("up", ())] == math.inf
        assert samples[("down", ())] == -math.inf


class TestMetricsSnapshot:
    def test_structured_buckets(self):
        import json

        registry = MetricsRegistry()
        registry.counter("hits", {"b": "x"}).inc(2)
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        snapshot = metrics_snapshot(registry)
        json.dumps(snapshot)  # flight dumps embed this verbatim
        by_name = {entry["name"]: entry for entry in snapshot}
        assert by_name["hits"]["value"] == 2
        assert by_name["hits"]["labels"] == {"b": "x"}
        assert by_name["lat"]["buckets"] == [["1", 1], ["+Inf", 1]]
        assert by_name["lat"]["count"] == 1

    def test_empty_registry(self):
        assert metrics_snapshot(MetricsRegistry()) == []


class TestSpanAggregates:
    def test_aggregates_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("q"):
                pass
        aggs = span_name_aggregates(tracer.finished_spans())
        assert set(aggs) == {"q"}
        q = aggs["q"]
        assert q["count"] == 3
        assert q["min"] <= q["mean"] <= q["max"]
        assert math.isclose(q["total"], q["mean"] * 3)

    def test_empty(self):
        assert span_name_aggregates([]) == {}


class TestRenderSummary:
    def test_disabled_telemetry_message(self):
        out = render_summary(NULL_TELEMETRY)
        assert "disabled" in out
        assert "TRAC_TELEMETRY" in out

    def test_enabled_but_empty(self):
        out = render_summary(Telemetry())
        assert "nothing has been recorded" in out

    def test_sections_present(self):
        tel = Telemetry()
        tel.metrics.counter("hits", {"backend": "memory"}).inc(2)
        tel.metrics.histogram("lat", buckets=(1.0,)).observe(0.5)
        with tel.tracer.span("trac.report"):
            pass
        out = render_summary(tel)
        assert "counters and gauges:" in out
        assert "hits" in out and "backend=memory" in out
        assert "histograms:" in out and "lat" in out
        assert "spans (by name):" in out and "trac.report" in out

    def test_max_spans_renders_tree(self):
        tel = Telemetry()
        with tel.tracer.span("root", method="focused"):
            with tel.tracer.span("leaf"):
                pass
        out = render_summary(tel, max_spans=1)
        assert "most recent spans" in out
        tree = out.split("most recent spans", 1)[1].splitlines()
        root_line = next(l for l in tree if "root" in l)
        leaf_line = next(l for l in tree if "leaf" in l)
        # The child is indented one level deeper than its root.
        assert len(leaf_line) - len(leaf_line.lstrip()) > len(root_line) - len(
            root_line.lstrip()
        )
        assert '"method": "focused"' in out


class TestPhaseDurations:
    def test_means_of_direct_children(self):
        tel = Telemetry()
        for _ in range(2):
            with tel.tracer.span("trac.report"):
                with tel.tracer.span("report.user_query"):
                    pass
                with tel.tracer.span("report.statistics"):
                    with tel.tracer.span("grandchild"):
                        pass
        phases = phase_durations(tel, "trac.report")
        assert set(phases) == {"report.user_query", "report.statistics"}
        assert all(v >= 0.0 for v in phases.values())

    def test_unknown_root_name(self):
        assert phase_durations(Telemetry(), "nope") == {}
