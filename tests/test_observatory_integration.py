"""Acceptance: `trac simulate --serve --faults` is scrapeable mid-run and
an injected silence produces a complete flight dump.

The child runs with ``--top`` writing dashboard frames to a pipe we do not
drain until after scraping: pipe backpressure keeps the simulation alive
(blocked mid-loop) while urllib hits the live observatory, so the mid-run
scrape cannot race a fast run to completion.
"""

import json
import os
import subprocess
import sys
import time
import urllib.request

import pytest

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

PLAN = {"seed": 7, "faults": [{"kind": "silence", "source": "m2", "start": 5}]}


def scrape(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.headers.get("Content-Type"), response.read().decode("utf-8")


@pytest.fixture()
def observatory_run(tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(PLAN))
    flights = tmp_path / "flights"
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "simulate",
            "--db", str(tmp_path / "grid.sqlite"),
            "--machines", "4",
            "--duration", "5000",
            "--faults", str(plan_path),
            "--silence-timeout", "30",
            "--serve", "0",
            "--flight-dir", str(flights),
            "--slo-target", "10",
            "--top", "--top-interval", "5",
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        yield process, flights
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=30)


def test_live_scrape_and_flight_dump(observatory_run):
    process, flights = observatory_run

    # The URL line is printed before the simulation loop starts.
    first = process.stdout.readline()
    assert first.startswith("observatory serving on http://"), first
    url = first.split()[-1]

    # Mid-run (the undrained --top pipe keeps the child alive): /metrics
    # must be live Prometheus text and grow the per-source lag histogram.
    deadline = time.monotonic() + 30.0
    lag_seen = False
    while time.monotonic() < deadline:
        ctype, body = scrape(url + "/metrics")
        assert ctype.startswith("text/plain; version=0.0.4")
        if "trac_source_lag_seconds" in body:
            lag_seen = True
            break
        time.sleep(0.05)
    assert lag_seen, "lag histogram never appeared in /metrics mid-run"
    assert process.poll() is None, "child exited before the mid-run scrape finished"

    # /healthz is live too, and eventually shows m2 degraded by the watchdog.
    deadline = time.monotonic() + 30.0
    healthz = {}
    while time.monotonic() < deadline:
        healthz = json.loads(scrape(url + "/healthz")[1])
        if "m2" in healthz.get("degraded", []):
            break
        time.sleep(0.05)
    assert healthz["status"] == "degraded"
    assert healthz["sources"]["m2"]["status"] == "degraded"
    assert "breakers" in healthz

    # Drain the pipe so the run can finish, then wait for a clean exit.
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, stderr
    assert "staleness SLO" in stdout
    assert "flight recorder:" in stdout

    # The injected silence produced a flight dump with the triggering
    # event, correlated spans, and the degraded source's lag series.
    dumps = sorted(flights.glob("flight-*.json"))
    assert dumps, stdout
    doc = json.loads(dumps[0].read_text())
    assert doc["format"] == "trac-flight-v1"
    assert doc["trigger"]["name"] == "watchdog.silence"
    assert doc["trigger"]["source"] == "m2"
    assert any(e["name"] == "watchdog.silence" and e["source"] == "m2" for e in doc["events"])
    span_names = {s["name"] for s in doc["spans"]}
    assert "sniffer.poll" in span_names
    assert doc["lag_series"]["m2"], "degraded source must carry its lag series"
    assert doc["slo"]["target_p95"] == 10.0
    assert doc["health"], "health registry must be embedded"
