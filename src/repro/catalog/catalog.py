"""The catalog: the set of table schemas known to the system.

Name resolution (turning ``A.mach_id`` in a query into a (table, column)
pair), recency-query generation and the relevance analysis all consult the
catalog. Every catalog automatically contains the system Heartbeat table.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List

from repro.catalog.schema import HEARTBEAT_TABLE, TableSchema, heartbeat_schema
from repro.errors import CatalogError

#: Process-wide ticket source for catalog generations. Every mutation of any
#: catalog draws a fresh ticket, so a catalog's current ``generation`` is
#: globally unique — two catalogs (or two states of one catalog) never share
#: it. Per-table generations and catalog identities draw from the same
#: counter, so no two (catalog, table, state) triples ever collide either.
_GENERATION_TICKETS = itertools.count(1)


class Catalog:
    """A registry of :class:`TableSchema` objects, keyed case-insensitively.

    Parameters
    ----------
    tables:
        Initial monitored tables. The Heartbeat system table is always
        present and need not (and must not) be supplied.

    Besides the whole-catalog ``generation`` (bumped on *every* mutation),
    each table carries its own generation ticket, bumped only when *that*
    table's schema is added or replaced. Caches that know which tables a
    resolution touched can key on ``(identity, sql)`` and validate the
    referenced tables' generations, so registering an unrelated table no
    longer invalidates them. ``identity`` is a ticket drawn once per
    catalog instance and never changed — it distinguishes two catalogs
    that happen to contain same-named tables.
    """

    def __init__(self, tables: Iterable[TableSchema] = ()) -> None:
        self._tables: Dict[str, TableSchema] = {}
        self._table_generations: Dict[str, int] = {}
        self.identity = next(_GENERATION_TICKETS)
        self.generation = 0
        self.add(heartbeat_schema())
        for table in tables:
            self.add(table)

    def _bump_generation(self, key: str) -> None:
        ticket = next(_GENERATION_TICKETS)
        self.generation = ticket
        self._table_generations[key] = ticket

    def table_generation(self, name: str) -> int:
        """The generation ticket of ``name``'s current schema (0 when the
        table is not in the catalog)."""
        return self._table_generations.get(name.lower(), 0)

    def add(self, table: TableSchema) -> None:
        """Register a table schema.

        Raises
        ------
        CatalogError
            If a table with the same (case-insensitive) name exists.
        """
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already in catalog")
        self._tables[key] = table
        self._bump_generation(key)

    def replace(self, table: TableSchema) -> None:
        """Register a table schema, overwriting any existing definition."""
        key = table.name.lower()
        self._tables[key] = table
        self._bump_generation(key)

    def get(self, name: str) -> TableSchema:
        """Look up a table by (case-insensitive) name.

        Raises
        ------
        CatalogError
            If the table does not exist.
        """
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"no table {name!r} in catalog") from exc

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def heartbeat(self) -> TableSchema:
        """The system Heartbeat table schema."""
        return self._tables[HEARTBEAT_TABLE]

    def monitored_tables(self) -> List[TableSchema]:
        """All tables except the Heartbeat system table."""
        return [t for key, t in sorted(self._tables.items()) if key != HEARTBEAT_TABLE]

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has(name)

    def __repr__(self) -> str:
        names = ", ".join(sorted(self._tables))
        return f"Catalog([{names}])"
