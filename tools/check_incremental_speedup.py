#!/usr/bin/env python
"""Guard: incremental maintenance must keep hot reports >= 5x recompute.

Steady-state hot-query benchmark (see ``docs/PERFORMANCE.md``): stream N
heartbeats into a ``MemoryBackend``, then repeat one predicate-stable
monitoring query M times while a trickle of fresh heartbeats keeps
landing between reports. Two identically-loaded backends are measured:

* **recompute** — a plain :class:`RecencyReporter`; every report re-runs
  the heartbeat subqueries, i.e. an O(N) scan per report;
* **incremental** — the same reporter wired to an
  :class:`~repro.incremental.IncrementalMaintainer`; after the first
  (miss) report the relevant-source set is materialized and each
  heartbeat maintains it in O(affected entries), so a report pays a
  dictionary copy.

The script asserts the measured speedup meets the threshold (default 5x)
and that the final reports of both backends are identical — a perf win
that changed the answer would be no win at all.

Run:  python tools/check_incremental_speedup.py [--runs N] [--threshold X]
Exit status 0 when the speedup holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.backends.memory import MemoryBackend
from repro.catalog import Catalog, Column, TableSchema
from repro.core.report import RecencyReporter
from repro.incremental import IncrementalMaintainer

#: The hot query: predicate structure stays fixed while heartbeats stream.
HOT_QUERY = (
    "SELECT mach_id FROM activity "
    "WHERE mach_id IN ('s1', 's2', 's3') AND value = 'idle'"
)

#: Heartbeat upserts landing between consecutive reports (steady state).
UPSERTS_PER_REPORT = 10


def build_backend(num_sources: int) -> MemoryBackend:
    catalog = Catalog(
        [
            TableSchema(
                "activity",
                [Column("mach_id", "TEXT"), Column("value", "TEXT")],
                source_column="mach_id",
            )
        ]
    )
    backend = MemoryBackend(catalog)
    backend.insert_rows(
        "activity", [(f"s{i}", "idle" if i != 2 else "busy") for i in range(1, 5)]
    )
    for i in range(num_sources):
        backend.upsert_heartbeat(f"s{i}", 1000.0 + i)
    return backend


def measure(
    backend: MemoryBackend,
    reporter: RecencyReporter,
    sql: str,
    runs: int,
    num_sources: int,
) -> float:
    """Mean seconds per report in steady state (first run discarded as
    warm-up — it is the incremental path's registration miss). The same
    deterministic heartbeat trickle lands before every report so both
    backends stay identical and maintenance cost is paid inside the loop."""
    samples = []
    for run in range(runs):
        for j in range(UPSERTS_PER_REPORT):
            sid = (run * UPSERTS_PER_REPORT + j) % num_sources
            backend.upsert_heartbeat(f"s{sid}", 2000.0 + run + j / 10.0)
        start = time.perf_counter()
        reporter.report(sql, method="focused")
        samples.append(time.perf_counter() - start)
    if len(samples) > 1:
        samples = samples[1:]
    return sum(samples) / len(samples)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=31)
    parser.add_argument("--threshold", type=float, default=5.0, help="min speedup")
    parser.add_argument("--num-sources", type=int, default=8000)
    args = parser.parse_args(argv)

    obs.disable()

    recompute_backend = build_backend(args.num_sources)
    recompute = RecencyReporter(
        recompute_backend, create_temp_tables=False, plan_cache_size=32
    )
    t_recompute = measure(
        recompute_backend, recompute, HOT_QUERY, args.runs, args.num_sources
    )

    incremental_backend = build_backend(args.num_sources)
    maintainer = IncrementalMaintainer(incremental_backend)
    incremental = RecencyReporter(
        incremental_backend,
        create_temp_tables=False,
        plan_cache_size=32,
        incremental=maintainer,
    )
    t_incremental = measure(
        incremental_backend, incremental, HOT_QUERY, args.runs, args.num_sources
    )

    # Same mutation sequence hit both backends: the answers must agree.
    final_recompute = recompute.report(HOT_QUERY)
    final_incremental = incremental.report(HOT_QUERY)
    if (
        final_recompute.split.normal != final_incremental.split.normal
        or final_recompute.split.exceptional != final_incremental.split.exceptional
    ):
        print("FAIL: incremental report diverged from recompute", file=sys.stderr)
        return 1
    if final_incremental.incremental != "hit":
        print(
            f"FAIL: hot query was not served incrementally "
            f"(verdict {final_incremental.incremental!r})",
            file=sys.stderr,
        )
        return 1

    speedup = t_recompute / t_incremental if t_incremental > 0 else float("inf")
    stats = maintainer.stats()

    print("incremental speedup guard")
    print(f"  heartbeat sources                    : {args.num_sources}")
    print(f"  recompute report time (O(N) scan)    : {t_recompute * 1e3:9.3f} ms")
    print(f"  incremental report time (dict copy)  : {t_incremental * 1e3:9.3f} ms")
    print(f"  speedup                              : {speedup:9.2f} x"
          f"  (threshold {args.threshold}x)")
    print(f"  maintainer hit rate                  : {stats['hit_rate'] * 100:8.1f} %"
          f"  ({stats['updates']} maintenance updates)")

    if speedup < args.threshold:
        print("FAIL: incremental speedup fell below the threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
