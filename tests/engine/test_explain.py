"""Engine EXPLAIN trace tests."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.engine import Database
from repro.engine.explain import explain_query


@pytest.fixture
def db():
    t1 = TableSchema(
        "t1", [Column("s", "TEXT"), Column("x", "INTEGER")], source_column="s"
    )
    t2 = TableSchema(
        "t2", [Column("s", "TEXT"), Column("y", "INTEGER")], source_column="s"
    )
    database = Database(Catalog([t1, t2]))
    database.insert_many("t1", [("a", 1), ("b", 2), ("c", 3)])
    database.insert_many("t2", [("a", 1), ("b", 2)])
    return database


class TestExplain:
    def test_conjunctive_plan_reported(self, db):
        text = explain_query(db, "SELECT s FROM t1 WHERE x > 1")
        assert "plan: conjunctive" in text
        assert "scan t1: 1 pushed predicate(s), 3 -> 2 rows" in text
        assert "result: 2 row(s)" in text

    def test_full_scan_reported(self, db):
        text = explain_query(db, "SELECT s FROM t1")
        assert "scan t1: full (3 rows)" in text

    def test_hash_join_reported(self, db):
        text = explain_query(db, "SELECT t1.s FROM t1, t2 WHERE t1.s = t2.s")
        assert "hash join on 1 key(s)" in text
        assert "join order starts at t2" in text  # smaller side first

    def test_nested_loop_reported(self, db):
        text = explain_query(db, "SELECT t1.s FROM t1, t2 WHERE t1.x < t2.y")
        assert "nested loop" in text

    def test_general_boolean_plan(self, db):
        text = explain_query(db, "SELECT t1.s FROM t1, t2 WHERE t1.s = t2.s OR t1.x = 1")
        assert "plan: general boolean" in text

    def test_pushdown_selectivity_visible(self, db):
        text = explain_query(
            db, "SELECT t1.s FROM t1, t2 WHERE t1.x > 2 AND t1.s = t2.s"
        )
        assert "3 -> 1 rows" in text

    def test_trace_does_not_change_results(self, db):
        from repro.engine import execute_sql

        sql = "SELECT t1.s FROM t1, t2 WHERE t1.s = t2.s"
        plain = execute_sql(db, sql)
        explained = explain_query(db, sql)
        assert f"result: {len(plain.rows)} row(s)" in explained
