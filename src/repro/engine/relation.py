"""In-memory relations and databases."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.catalog import Catalog, TableSchema
from repro.errors import EngineError

Row = Tuple[object, ...]


class Relation:
    """A bag of rows conforming to a :class:`TableSchema`.

    Rows are tuples aligned with ``schema.columns``. The relation is a bag
    (duplicates allowed), matching SQL semantics without DISTINCT.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Sequence[object]] = ()) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._width = len(schema.columns)
        for row in rows:
            self.insert(row)

    @property
    def rows(self) -> List[Row]:
        return self._rows

    def insert(self, row: Sequence[object]) -> None:
        """Append one row (validated for arity)."""
        if len(row) != self._width:
            raise EngineError(
                f"row arity {len(row)} does not match table "
                f"{self.schema.name!r} with {self._width} columns"
            )
        self._rows.append(tuple(row))

    def insert_many(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(row)

    def delete_where(self, predicate) -> int:
        """Delete rows for which ``predicate(row_tuple)`` is true.

        Returns the number of rows removed.
        """
        before = len(self._rows)
        self._rows = [row for row in self._rows if not predicate(row)]
        return before - len(self._rows)

    def update_where(self, predicate, updater) -> int:
        """Replace rows matching ``predicate`` by ``updater(row)``.

        Returns the number of rows updated.
        """
        count = 0
        new_rows: List[Row] = []
        for row in self._rows:
            if predicate(row):
                new_row = tuple(updater(row))
                if len(new_row) != self._width:
                    raise EngineError("updater changed row arity")
                new_rows.append(new_row)
                count += 1
            else:
                new_rows.append(row)
        self._rows = new_rows
        return count

    def column_values(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        index = self.schema.column_index(name)
        return [row[index] for row in self._rows]

    def copy(self) -> "Relation":
        clone = Relation(self.schema)
        clone._rows = list(self._rows)
        return clone

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, {len(self._rows)} rows)"


class Database:
    """A named collection of relations plus the catalog they conform to."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._relations: Dict[str, Relation] = {}
        for schema in catalog:
            self._relations[schema.name.lower()] = Relation(schema)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name.lower()]
        except KeyError as exc:
            raise EngineError(f"no relation {name!r} in database") from exc

    def has(self, name: str) -> bool:
        return name.lower() in self._relations

    def add_table(self, schema: TableSchema, rows: Iterable[Sequence[object]] = ()) -> Relation:
        """Register a new table (also added to the catalog) and load rows."""
        if not self.catalog.has(schema.name):
            self.catalog.add(schema)
        relation = Relation(schema, rows)
        self._relations[schema.name.lower()] = relation
        return relation

    def insert(self, table: str, row: Sequence[object]) -> None:
        self.relation(table).insert(row)

    def insert_many(self, table: str, rows: Iterable[Sequence[object]]) -> None:
        self.relation(table).insert_many(rows)

    def copy(self) -> "Database":
        """Deep-enough copy: relations are copied, the catalog is shared."""
        clone = Database.__new__(Database)
        clone.catalog = self.catalog
        clone._relations = {name: rel.copy() for name, rel in self._relations.items()}
        return clone

    def tables(self) -> List[str]:
        return sorted(self._relations)

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}={len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"Database({sizes})"
