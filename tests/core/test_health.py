"""SourceHealth registry semantics, and how degradation flows into
recency reports and watch rules."""

import pytest

from repro.core.health import (
    BACKING_OFF,
    DEGRADED,
    HEALTHY,
    RESTARTING,
    STATUSES,
    SourceHealth,
    SourceStatus,
)
from repro.core.monitor import RecencyMonitor, WatchRule, rules_from_json
from repro.core.report import RecencyReporter
from repro.errors import TracError

IDLE = "SELECT mach_id FROM activity WHERE value = 'idle'"


class TestRegistry:
    def test_empty(self):
        health = SourceHealth()
        assert len(health) == 0
        assert health.status_of("m1") is None
        assert health.entry_of("m1") is None
        assert not health.is_degraded("m1")
        assert health.degraded_sources() == []

    def test_mark_overwrites(self):
        health = SourceHealth()
        health.mark("m1", HEALTHY, at=0.0)
        health.mark("m1", BACKING_OFF, reason="poll error", at=5.0)
        entry = health.entry_of("m1")
        assert entry.status == BACKING_OFF
        assert entry.reason == "poll error"
        assert entry.since == 5.0
        assert len(health) == 1

    def test_unknown_status_rejected(self):
        health = SourceHealth()
        with pytest.raises(ValueError):
            health.mark("m1", "on-fire")
        assert set(STATUSES) == {HEALTHY, BACKING_OFF, RESTARTING, DEGRADED}

    def test_degraded_sources_sorted(self):
        health = SourceHealth()
        health.mark("m9", DEGRADED)
        health.mark("m2", DEGRADED)
        health.mark("m5", HEALTHY)
        assert health.degraded_sources() == ["m2", "m9"]
        assert health.is_degraded("m9")
        assert not health.is_degraded("m5")

    def test_snapshot_is_a_copy(self):
        health = SourceHealth()
        health.mark("m1", DEGRADED)
        snap = health.snapshot()
        health.mark("m1", HEALTHY)
        assert snap["m1"].status == DEGRADED
        assert health.status_of("m1") == HEALTHY

    def test_status_repr_mentions_reason(self):
        status = SourceStatus("m1", DEGRADED, reason="gave up")
        assert "gave up" in repr(status)


class TestReportIntegration:
    def test_degraded_sources_annotate_the_report(self, paper_memory_backend):
        health = SourceHealth()
        health.mark("m3", DEGRADED, reason="restart budget exhausted")
        reporter = RecencyReporter(
            paper_memory_backend, create_temp_tables=False, source_health=health
        )
        report = reporter.report(IDLE, method="naive")
        assert report.degraded_sources == ["m3"]
        assert report.is_degraded("m3")
        assert not report.is_degraded("m1")
        # Suspect = z-score exceptional (m2, a month stale) + degraded (m3).
        assert report.suspect_sources == {"m2", "m3"}
        assert any("Degraded data sources" in n for n in report.notices())

    def test_no_registry_means_no_degraded(self, paper_memory_backend):
        reporter = RecencyReporter(paper_memory_backend, create_temp_tables=False)
        report = reporter.report(IDLE, method="naive")
        assert report.degraded_sources == []
        assert report.suspect_sources == {"m2"}
        assert not any("Degraded" in n for n in report.notices())

    def test_degraded_need_not_be_exceptional(self, paper_memory_backend):
        """Degradation is supervisor knowledge: it can flag a source whose
        heartbeat still looks statistically normal."""
        health = SourceHealth()
        health.mark("m1", DEGRADED, reason="permanent fault")
        reporter = RecencyReporter(
            paper_memory_backend, create_temp_tables=False, source_health=health
        )
        report = reporter.report(IDLE, method="naive")
        assert "m1" not in {s.source_id for s in report.split.exceptional}
        assert "m1" in report.suspect_sources


class TestMonitorIntegration:
    def test_forbid_degraded_trips(self, paper_memory_backend):
        health = SourceHealth()
        health.mark("m3", DEGRADED, reason="silent source")
        monitor = RecencyMonitor(
            paper_memory_backend, clock=lambda: 0.0, source_health=health
        )
        monitor.add_rule(WatchRule("quarantine", IDLE, forbid_degraded=True))
        alerts = monitor.check()
        assert [a.kind for a in alerts] == ["degraded"]
        assert "m3" in alerts[0].message

    def test_forbid_degraded_quiet_when_healthy(self, paper_memory_backend):
        health = SourceHealth()
        health.mark("m3", HEALTHY)
        monitor = RecencyMonitor(
            paper_memory_backend, clock=lambda: 0.0, source_health=health
        )
        monitor.add_rule(WatchRule("quarantine", IDLE, forbid_degraded=True))
        assert monitor.check() == []

    def test_forbid_degraded_alone_is_a_valid_condition(self):
        rule = WatchRule("r", IDLE, forbid_degraded=True)
        assert rule.forbid_degraded
        with pytest.raises(TracError):
            WatchRule("r", IDLE)  # still rejected without any condition

    def test_rules_from_json_parses_forbid_degraded(self):
        rules = rules_from_json(
            '[{"name": "q", "sql": "SELECT mach_id FROM activity", '
            '"forbid_degraded": true}]'
        )
        assert len(rules) == 1
        assert rules[0].forbid_degraded
