#!/usr/bin/env python
"""Guard: disabled telemetry must cost (nearly) nothing on the report path.

The instrumented hot paths (``RecencyReporter.report``, the backends, the
mini engine) all follow the same pattern when telemetry is off: one
attribute/default lookup, one ``tel.enabled`` branch, and no-op
``PhaseTimer``/``NullSpan`` context managers. This script bounds the cost
those primitives add to one figure-1-style report and fails when the bound
exceeds the budget (default 5%).

Method — we cannot re-run the pre-instrumentation code, so the check is a
first-principles bound instead of a before/after diff:

1. time one disabled-telemetry report on a small paper workload
   (``t_report``, warm-up discarded, mean of the rest);
2. microbenchmark the disabled-path primitives in isolation:
   a full no-op ``PhaseTimer`` cycle (construct + enter + exit), a
   ``resolve()`` + ``enabled`` branch, the event-emission guard
   (the ``enabled`` branch in front of every ``tel.emit`` call — with
   telemetry disabled the ``NullEventLog`` is never even reached),
   a disabled histogram observation (``NullInstrument.observe`` with a
   trace-id exemplar), the trace-propagation guard (the
   ``enabled`` branch in front of context inject/extract — disabled
   telemetry never builds a SpanContext or touches a carrier), and the
   disabled lineage guard (the ``lineage=False`` keyword forward plus
   falsy branch the engine pays per operator when row provenance is off
   — the lineage module is never even imported on that path);
3. overhead_bound = (timers_per_report * t_timer
                     + checks_per_report * t_check
                     + events_per_report * t_event
                     + histograms_per_report * t_histogram
                     + propagations_per_report * t_propagation
                     + lineage_checks_per_report * t_lineage) / t_report

The per-report primitive counts are deliberate over-estimates, so the
reported percentage is an upper bound. Enabled-telemetry timing is printed
for information only — it is *expected* to cost more.

Run:  python tools/check_telemetry_overhead.py [--runs N] [--threshold PCT]
Exit status 0 when within budget, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro import obs
from repro.core.report import RecencyReporter
from repro.backends.memory import MemoryBackend
from repro.obs.events import NULL_EVENT_LOG, NullEventLog
from repro.obs.instrument import NULL_TELEMETRY, PhaseTimer
from repro.workload.generator import (
    WorkloadConfig,
    generate_workload,
    load_workload,
    workload_catalog,
)
from repro.workload.queries import paper_queries, query_machine_indexes

#: Over-estimates of disabled-path primitive invocations per report.
#: report() opens 5 PhaseTimers; backend/engine/monitor paths add a handful
#: of ``enabled`` branches per query (3 queries per report).
TIMERS_PER_REPORT = 8
CHECKS_PER_REPORT = 64
#: Event-emission guard sites a report-with-simulation tick could cross
#: (sniffer retries, breaker transitions, exceptional sources, ...).
EVENTS_PER_REPORT = 16
#: Histogram-observation sites per report (report latency, per-endpoint
#: request latency, poll latency, backend query size, ...), over-estimated.
HISTOGRAMS_PER_REPORT = 8
#: Trace-propagation guard sites per report (context inject on outbound
#: carriers, extract on inbound, profile trace stamping), over-estimated.
PROPAGATIONS_PER_REPORT = 8
#: Disabled-lineage guard sites per report: one ``lineage=False`` keyword
#: forward + falsy branch per engine operator, times 3 queries per report,
#: over-estimated.
LINEAGE_CHECKS_PER_REPORT = 32

MICRO_LOOPS = 200_000


def _mean_seconds(fn: Callable[[], object], runs: int) -> float:
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    if len(samples) > 1:
        samples = samples[1:]  # discard warm-up, paper protocol
    return sum(samples) / len(samples)


def time_phase_timer_cycle() -> float:
    """Seconds per disabled PhaseTimer construct+enter+exit cycle."""
    tel = NULL_TELEMETRY
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        with PhaseTimer(tel, "overhead.probe"):
            pass
    return (time.perf_counter() - start) / MICRO_LOOPS


def time_enabled_check() -> float:
    """Seconds per resolve-default + ``enabled`` branch."""
    start = time.perf_counter()
    acc = 0
    for _ in range(MICRO_LOOPS):
        tel = obs.resolve(None)
        if tel.enabled:
            acc += 1
    assert acc == 0, "telemetry unexpectedly enabled during microbench"
    return (time.perf_counter() - start) / MICRO_LOOPS


def time_event_guard() -> float:
    """Seconds per disabled event-emission site.

    Every instrumented emitter guards ``tel.emit(...)`` behind
    ``tel.enabled`` — the NullEmitter pattern: with telemetry off the
    branch is the whole cost and the event log is never touched. This
    times exactly that guard (resolve + branch; the emit is never
    reached, mirroring the real call sites).
    """
    start = time.perf_counter()
    emitted = 0
    for _ in range(MICRO_LOOPS):
        tel = obs.resolve(None)
        if tel.enabled:
            tel.emit("overhead.probe", severity="debug")
            emitted += 1
    assert emitted == 0, "telemetry unexpectedly enabled during microbench"
    return (time.perf_counter() - start) / MICRO_LOOPS


def time_histogram_observe() -> float:
    """Seconds per disabled histogram observation (exemplar included).

    With telemetry off every ``record_*`` shim bottoms out in
    ``NullInstrument.observe`` — no bucket search, no lock, no exemplar
    storage. This times that no-op, trace-id argument and all.
    """
    histogram = NULL_TELEMETRY.metrics.histogram("overhead_probe_seconds")
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        histogram.observe(0.001, trace_id="0" * 32)
    elapsed = time.perf_counter() - start
    assert histogram.exemplars() == {}, "null histogram must not retain exemplars"
    return elapsed / MICRO_LOOPS


def time_propagation_guard() -> float:
    """Seconds per disabled trace-propagation site.

    Context is only injected/extracted behind ``tel.enabled`` (the
    observatory server's pattern): with telemetry off no SpanContext is
    ever built and the carrier is never touched. The guard is the whole
    cost.
    """
    carrier = {"traceparent": "00-" + "a" * 32 + "-" + "b" * 16 + "-01"}
    start = time.perf_counter()
    extracted = 0
    for _ in range(MICRO_LOOPS):
        tel = obs.resolve(None)
        if tel.enabled:
            if obs.extract_context(carrier) is not None:
                extracted += 1
    assert extracted == 0, "telemetry unexpectedly enabled during microbench"
    return (time.perf_counter() - start) / MICRO_LOOPS


def time_lineage_guard() -> float:
    """Seconds per disabled lineage site.

    Row provenance is strictly opt-in: with ``lineage=False`` (the
    default) the execution path pays one keyword-argument forward plus
    one falsy branch per operator — the lineage module is never imported
    and no per-row set is ever built. This times that forward+branch,
    mirroring the ``_project``/``execute_query`` call sites.
    """

    def probe(rows, lineage: bool = False):
        if lineage:
            raise AssertionError("lineage unexpectedly enabled during microbench")
        return rows

    payload: list = []
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        probe(payload, lineage=False)
    return (time.perf_counter() - start) / MICRO_LOOPS


def assert_null_event_log() -> None:
    """Structural check: disabled telemetry shares the inert event log."""
    assert isinstance(NULL_TELEMETRY.events, NullEventLog), (
        "disabled telemetry must use the NullEventLog"
    )
    assert NULL_TELEMETRY.events is NULL_EVENT_LOG, (
        "disabled telemetry must share the singleton NULL_EVENT_LOG"
    )
    assert NULL_TELEMETRY.events.emit("probe") is None
    assert len(NULL_TELEMETRY.events) == 0, "NullEventLog must never retain events"


def build_reporter(num_sources: int, data_ratio: int) -> RecencyReporter:
    catalog = workload_catalog(num_sources)
    backend = MemoryBackend(catalog)
    data = generate_workload(
        WorkloadConfig(num_sources=num_sources, data_ratio=data_ratio),
        query_machine_indexes(num_sources),
    )
    load_workload(backend, data)
    return RecencyReporter(backend, create_temp_tables=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=11)
    parser.add_argument("--threshold", type=float, default=5.0, help="max overhead %%")
    parser.add_argument("--num-sources", type=int, default=20)
    parser.add_argument("--data-ratio", type=int, default=25)
    args = parser.parse_args(argv)

    obs.disable()
    reporter = build_reporter(args.num_sources, args.data_ratio)
    sql = paper_queries(args.num_sources)["Q1"]

    assert_null_event_log()
    t_report = _mean_seconds(lambda: reporter.report(sql, method="focused"), args.runs)
    t_timer = time_phase_timer_cycle()
    t_check = time_enabled_check()
    t_event = time_event_guard()
    t_histogram = time_histogram_observe()
    t_propagation = time_propagation_guard()
    t_lineage = time_lineage_guard()

    bound = (
        TIMERS_PER_REPORT * t_timer
        + CHECKS_PER_REPORT * t_check
        + EVENTS_PER_REPORT * t_event
        + HISTOGRAMS_PER_REPORT * t_histogram
        + PROPAGATIONS_PER_REPORT * t_propagation
        + LINEAGE_CHECKS_PER_REPORT * t_lineage
    )
    overhead_pct = 100.0 * bound / t_report

    # Informational: the *enabled* path is allowed to be slower.
    tel = obs.Telemetry()
    reporter.telemetry = tel
    t_enabled = _mean_seconds(lambda: reporter.report(sql, method="focused"), args.runs)
    reporter.telemetry = None
    reporter.close()

    print("telemetry overhead guard")
    print(f"  disabled report time        : {t_report * 1e3:9.3f} ms")
    print(f"  no-op PhaseTimer cycle      : {t_timer * 1e9:9.1f} ns")
    print(f"  resolve+enabled branch      : {t_check * 1e9:9.1f} ns")
    print(f"  disabled event-emit guard   : {t_event * 1e9:9.1f} ns")
    print(f"  disabled histogram observe  : {t_histogram * 1e9:9.1f} ns")
    print(f"  disabled trace propagation  : {t_propagation * 1e9:9.1f} ns")
    print(f"  disabled lineage guard      : {t_lineage * 1e9:9.1f} ns")
    print(
        f"  bound ({TIMERS_PER_REPORT} timers + {CHECKS_PER_REPORT} checks"
        f" + {EVENTS_PER_REPORT} events + {HISTOGRAMS_PER_REPORT} histograms"
        f" + {PROPAGATIONS_PER_REPORT} propagations"
        f" + {LINEAGE_CHECKS_PER_REPORT} lineage guards) : {bound * 1e6:9.2f} us/report"
    )
    print(f"  disabled-path overhead bound: {overhead_pct:9.3f} %  (budget {args.threshold}%)")
    print(f"  enabled report time (info)  : {t_enabled * 1e3:9.3f} ms")

    if overhead_pct >= args.threshold:
        print("FAIL: disabled-telemetry overhead bound exceeds budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
