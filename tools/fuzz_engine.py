#!/usr/bin/env python
"""Long-running differential fuzz: mini engine (both paths) vs SQLite.

Generates random data and random queries over a two-table schema and
asserts three executions return the same multiset of rows — including
ORDER BY prefixes, aggregates and NULL semantics:

* the mini engine's *compiled* path (lowered lambdas, the default);
* the mini engine's *interpreted* path (per-row AST walk, the oracle);
* SQLite.

The compiled/interpreted comparison pins the fast path to the oracle's
semantics; the SQLite comparison pins both to real-world SQL. Usage::

    python tools/fuzz_engine.py [examples]
"""

from __future__ import annotations

import sqlite3
import sys
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, FiniteDomain, TableSchema
from repro.engine import Database, execute_sql


def catalog():
    return Catalog(
        [
            TableSchema(
                "t1",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("x", "INTEGER"),
                    Column("v", "TEXT"),
                ],
                source_column="s",
            ),
            TableSchema(
                "t2",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("y", "INTEGER"),
                ],
                source_column="s",
            ),
        ]
    )


_row1 = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.one_of(st.none(), st.integers(-3, 6)),
    st.one_of(st.none(), st.sampled_from(["p", "q", "pq"])),
)
_row2 = st.tuples(st.sampled_from(["a", "b", "c"]), st.one_of(st.none(), st.integers(-3, 6)))

_atoms = st.sampled_from(
    [
        "t1.x = 2",
        "t1.x <> 0",
        "t1.x > -1",
        "t1.x BETWEEN 0 AND 4",
        "t1.x NOT BETWEEN 1 AND 2",
        "t1.v = 'p'",
        "t1.v LIKE 'p%'",
        "t1.v NOT LIKE '%q'",
        "t1.v IS NULL",
        "t1.v IS NOT NULL",
        "t1.s IN ('a', 'b')",
        "t1.s NOT IN ('c')",
        "t2.y < 3",
        "t2.y = t1.x",
        "t1.s = t2.s",
        "t1.s <> t2.s",
        "t1.x <= t2.y",
    ]
)

_where = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} AND {b})", inner, inner),
        st.builds(lambda a, b: f"({a} OR {b})", inner, inner),
        st.builds(lambda a: f"NOT ({a})", inner),
    ),
    max_leaves=7,
)

_select = st.sampled_from(
    [
        "t1.s, t1.x, t2.y",
        "t1.s, t2.s",
        "COUNT(*)",
        "COUNT(t1.v)",
        "MIN(t1.x), MAX(t2.y)",
        "SUM(t1.x)",
    ]
)


def _run_sqlite(rows1, rows2, sql):
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE t1 (s TEXT, x INTEGER, v TEXT)")
    conn.execute("CREATE TABLE t2 (s TEXT, y INTEGER)")
    conn.executemany("INSERT INTO t1 VALUES (?,?,?)", rows1)
    conn.executemany("INSERT INTO t2 VALUES (?,?)", rows2)
    try:
        return Counter(conn.execute(sql).fetchall())
    finally:
        conn.close()


def make_property(max_examples: int):
    @settings(max_examples=max_examples, deadline=None, print_blob=True)
    @given(st.lists(_row1, max_size=6), st.lists(_row2, max_size=5), _where, _select)
    def engines_agree(rows1, rows2, where, select):
        sql = f"SELECT {select} FROM t1, t2 WHERE {where}"
        db = Database(catalog())
        db.insert_many("t1", rows1)
        db.insert_many("t2", rows2)
        compiled = Counter(
            tuple(r) for r in execute_sql(db, sql, compiled=True).rows
        )
        interpreted = Counter(
            tuple(r) for r in execute_sql(db, sql, compiled=False).rows
        )
        assert compiled == interpreted, (
            f"COMPILED/INTERPRETED DISAGREEMENT on {sql!r}: "
            f"{compiled} vs {interpreted}"
        )
        theirs = _run_sqlite(rows1, rows2, sql)
        assert compiled == theirs, f"DISAGREEMENT on {sql!r}: {compiled} vs {theirs}"

    return engines_agree


def main() -> int:
    examples = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(
        "differential-fuzzing compiled vs interpreted vs SQLite "
        f"with {examples} examples ..."
    )
    make_property(examples)()
    print("OK: compiled, interpreted and SQLite agreed on every example")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
