"""Abstract syntax tree for the supported SQL subset.

Expression nodes are shared with :mod:`repro.predicates`, which normalizes
and classifies them. All nodes are immutable by convention (the resolver
annotates :class:`ColumnRef` in place before any analysis runs, after which
trees are treated as read-only). Equality is structural, which the DNF
machinery and tests rely on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class of all scalar / boolean expressions."""

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions, for generic tree walks."""
        return ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        raise NotImplementedError


class Literal(Expr):
    """A constant: string, int, float, bool or NULL (``None``)."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def _key(self) -> Tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


#: The boolean constants, convenient for predicate rewriting.
TRUE = Literal(True)
FALSE = Literal(False)


class ColumnRef(Expr):
    """A (possibly qualified) column reference, e.g. ``A.mach_id``.

    The resolver fills in ``binding_key`` (the canonical key of the FROM
    item this reference binds to — the alias if one was given, else the
    table name, lower-cased) and ``is_source`` (whether the referenced
    column is the bound table's data source column).
    """

    __slots__ = ("qualifier", "name", "binding_key", "is_source")

    def __init__(self, name: str, qualifier: Optional[str] = None) -> None:
        self.qualifier = qualifier
        self.name = name
        self.binding_key: Optional[str] = None
        self.is_source: bool = False

    def _key(self) -> Tuple:
        # Structural equality uses the *resolved* identity when available so
        # that `mach_id` and `A.mach_id` compare equal after resolution.
        if self.binding_key is not None:
            return (self.binding_key, self.name.lower())
        return (self.qualifier.lower() if self.qualifier else None, self.name.lower())

    def display(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def __repr__(self) -> str:
        return f"ColumnRef({self.display()!r}, binding={self.binding_key!r})"


class Comparison(Expr):
    """A binary comparison. ``op`` is one of ``= <> < <= > >=``.

    ``!=`` is normalized to ``<>`` at parse time.
    """

    __slots__ = ("op", "left", "right")

    VALID_OPS = ("=", "<>", "<", "<=", ">", ">=")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op == "!=":
            op = "<>"
        if op not in self.VALID_OPS:
            raise ValueError(f"invalid comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def _key(self) -> Tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"Comparison({self.left!r} {self.op} {self.right!r})"


class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal values only."""

    __slots__ = ("expr", "values", "negated")

    def __init__(self, expr: Expr, values: Sequence[Literal], negated: bool = False) -> None:
        self.expr = expr
        self.values: Tuple[Literal, ...] = tuple(values)
        self.negated = negated

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,) + self.values

    def _key(self) -> Tuple:
        return (self.expr, self.values, self.negated)

    def __repr__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"InList({self.expr!r} {word} {[v.value for v in self.values]!r})"


class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    __slots__ = ("expr", "low", "high", "negated")

    def __init__(self, expr: Expr, low: Expr, high: Expr, negated: bool = False) -> None:
        self.expr = expr
        self.low = low
        self.high = high
        self.negated = negated

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr, self.low, self.high)

    def _key(self) -> Tuple:
        return (self.expr, self.low, self.high, self.negated)

    def __repr__(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"Between({self.expr!r} {word} {self.low!r} AND {self.high!r})"


class Like(Expr):
    """``expr [NOT] LIKE 'pattern'`` with SQL ``%`` / ``_`` wildcards."""

    __slots__ = ("expr", "pattern", "negated")

    def __init__(self, expr: Expr, pattern: str, negated: bool = False) -> None:
        self.expr = expr
        self.pattern = pattern
        self.negated = negated

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def _key(self) -> Tuple:
        return (self.expr, self.pattern, self.negated)

    def __repr__(self) -> str:
        word = "NOT LIKE" if self.negated else "LIKE"
        return f"Like({self.expr!r} {word} {self.pattern!r})"


class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    __slots__ = ("expr", "negated")

    def __init__(self, expr: Expr, negated: bool = False) -> None:
        self.expr = expr
        self.negated = negated

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def _key(self) -> Tuple:
        return (self.expr, self.negated)

    def __repr__(self) -> str:
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"IsNull({self.expr!r} {word})"


class And(Expr):
    """N-ary conjunction. Nested conjunctions are flattened on
    construction, so ``And([a, And([b, c])])`` equals ``And([a, b, c])``."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]) -> None:
        flat: List[Expr] = []
        for item in items:
            if isinstance(item, And):
                flat.extend(item.items)
            else:
                flat.append(item)
        self.items: Tuple[Expr, ...] = tuple(flat)

    def children(self) -> Tuple[Expr, ...]:
        return self.items

    def _key(self) -> Tuple:
        return (self.items,)

    def __repr__(self) -> str:
        return f"And({list(self.items)!r})"


class Or(Expr):
    """N-ary disjunction. Nested disjunctions are flattened on
    construction, mirroring :class:`And`."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]) -> None:
        flat: List[Expr] = []
        for item in items:
            if isinstance(item, Or):
                flat.extend(item.items)
            else:
                flat.append(item)
        self.items: Tuple[Expr, ...] = tuple(flat)

    def children(self) -> Tuple[Expr, ...]:
        return self.items

    def _key(self) -> Tuple:
        return (self.items,)

    def __repr__(self) -> str:
        return f"Or({list(self.items)!r})"


class Not(Expr):
    """Logical negation."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def _key(self) -> Tuple:
        return (self.expr,)

    def __repr__(self) -> str:
        return f"Not({self.expr!r})"


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


class AggregateCall(Expr):
    """An aggregate in the select list, e.g. ``COUNT(*)`` or ``SUM(x)``.

    ``argument`` is ``None`` exactly for ``COUNT(*)``.
    """

    __slots__ = ("func", "argument", "distinct")

    VALID_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def __init__(self, func: str, argument: Optional[Expr], distinct: bool = False) -> None:
        func = func.upper()
        if func not in self.VALID_FUNCS:
            raise ValueError(f"invalid aggregate {func!r}")
        if argument is None and func != "COUNT":
            raise ValueError(f"{func}(*) is not valid SQL")
        self.func = func
        self.argument = argument
        self.distinct = distinct

    def children(self) -> Tuple[Expr, ...]:
        return () if self.argument is None else (self.argument,)

    def _key(self) -> Tuple:
        return (self.func, self.argument, self.distinct)

    def __repr__(self) -> str:
        arg = "*" if self.argument is None else repr(self.argument)
        return f"AggregateCall({self.func}({arg}))"


class SelectItem:
    """One entry of the select list: an expression with an optional alias."""

    __slots__ = ("expr", "alias", "is_star")

    def __init__(self, expr: Optional[Expr], alias: Optional[str] = None, is_star: bool = False) -> None:
        self.expr = expr
        self.alias = alias
        self.is_star = is_star

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SelectItem)
            and self.expr == other.expr
            and self.alias == other.alias
            and self.is_star == other.is_star
        )

    def __hash__(self) -> int:
        return hash((self.expr, self.alias, self.is_star))

    def __repr__(self) -> str:
        if self.is_star:
            return "SelectItem(*)"
        return f"SelectItem({self.expr!r}, alias={self.alias!r})"


class TableRef:
    """A FROM-clause item: a table name with an optional alias."""

    __slots__ = ("name", "alias")

    def __init__(self, name: str, alias: Optional[str] = None) -> None:
        self.name = name
        self.alias = alias

    @property
    def binding_key(self) -> str:
        """The key column references bind to: alias if present, else name."""
        return (self.alias or self.name).lower()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TableRef)
            and self.name.lower() == other.name.lower()
            and (self.alias or "").lower() == (other.alias or "").lower()
        )

    def __hash__(self) -> int:
        return hash((self.name.lower(), (self.alias or "").lower()))

    def __repr__(self) -> str:
        return f"TableRef({self.name!r}, alias={self.alias!r})"


class OrderItem:
    """One ORDER BY key: a column reference plus direction."""

    __slots__ = ("expr", "descending")

    def __init__(self, expr: Expr, descending: bool = False) -> None:
        self.expr = expr
        self.descending = descending

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OrderItem)
            and self.expr == other.expr
            and self.descending == other.descending
        )

    def __hash__(self) -> int:
        return hash((self.expr, self.descending))

    def __repr__(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"OrderItem({self.expr!r} {direction})"


class Query:
    """A parsed SPJ query."""

    __slots__ = (
        "select_items",
        "distinct",
        "tables",
        "where",
        "group_by",
        "order_by",
        "limit",
    )

    def __init__(
        self,
        select_items: Sequence[SelectItem],
        tables: Sequence[TableRef],
        where: Optional[Expr] = None,
        distinct: bool = False,
        group_by: Sequence[Expr] = (),
        limit: Optional[int] = None,
        order_by: Sequence[OrderItem] = (),
    ) -> None:
        self.select_items: Tuple[SelectItem, ...] = tuple(select_items)
        self.tables: Tuple[TableRef, ...] = tuple(tables)
        self.where = where
        self.distinct = distinct
        self.group_by: Tuple[Expr, ...] = tuple(group_by)
        self.order_by: Tuple[OrderItem, ...] = tuple(order_by)
        self.limit = limit

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item.expr, AggregateCall) for item in self.select_items)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Query)
            and self.select_items == other.select_items
            and self.tables == other.tables
            and self.where == other.where
            and self.distinct == other.distinct
            and self.group_by == other.group_by
            and self.order_by == other.order_by
            and self.limit == other.limit
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.select_items,
                self.tables,
                self.where,
                self.distinct,
                self.group_by,
                self.order_by,
                self.limit,
            )
        )

    def __repr__(self) -> str:
        return (
            f"Query(select={list(self.select_items)!r}, tables={list(self.tables)!r}, "
            f"where={self.where!r}, distinct={self.distinct})"
        )


def walk(expr: Expr) -> List[Expr]:
    """Pre-order traversal of an expression tree (includes ``expr`` itself)."""
    out: List[Expr] = []
    stack: List[Expr] = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(reversed(node.children()))
    return out


def column_refs(expr: Expr) -> List[ColumnRef]:
    """All column references in an expression tree, in pre-order."""
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]
