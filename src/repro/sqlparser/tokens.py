"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from typing import Optional


class TokenType(enum.Enum):
    """Lexical categories produced by :func:`repro.sqlparser.lexer.tokenize`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"       # = <> != < <= > >=
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Words the lexer classifies as keywords (case-insensitive).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "AS",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "TRUE",
        "FALSE",
        "GROUP",
        "BY",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
    }
)

#: Names of supported aggregate functions.
AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Token:
    """One lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType`.
    value:
        Normalized value. Keywords are upper-cased; identifiers keep their
        declared case; strings are the unquoted text; numbers are ``int`` or
        ``float``.
    position:
        Zero-based character offset of the token's first character.
    """

    __slots__ = ("type", "value", "position")

    def __init__(self, type_: TokenType, value: object, position: int) -> None:
        self.type = type_
        self.value = value
        self.position = position

    def is_keyword(self, word: Optional[str] = None) -> bool:
        """True when this token is a keyword (optionally a specific one)."""
        if self.type is not TokenType.KEYWORD:
            return False
        return word is None or self.value == word.upper()

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, pos={self.position})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))
