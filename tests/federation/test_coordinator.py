"""The coordinator: fan-out discipline, completeness honesty, merge rules."""

import time

import pytest

from repro.core.breaker import CircuitBreaker
from repro.errors import TracError
from repro.federation import (
    FederationCoordinator,
    ShardInfo,
    ShardRegistry,
    ShardServer,
)
from repro.federation.rpc import RPCServer
from repro.grid.simulator import SimulationConfig

SQL = "SELECT * FROM activity WHERE value = 'busy'"


@pytest.fixture
def pair():
    """Two live shards over disjoint id ranges, registered and settled."""
    shards = []
    for k in range(2):
        config = SimulationConfig(num_machines=2, seed=5, machine_id_start=k * 2 + 1)
        shard = ShardServer(f"s{k}", config)
        shard.server.start()
        with shard._lock:
            for _ in range(60):
                shard.sim.step()
        shards.append(shard)
    registry = ShardRegistry()
    for shard in shards:
        registry.register(shard.host, shard.port)
    try:
        yield shards, registry
    finally:
        for shard in shards:
            shard.close()


def make_coordinator(registry, **kwargs):
    defaults = dict(
        deadline=2.0, attempt_timeout=0.5, retries=1, hedge_delay=None,
        breaker_reset=0.5,
    )
    defaults.update(kwargs)
    return FederationCoordinator(registry, **defaults)


class TestHealthy:
    def test_complete_report_over_all_shards(self, pair):
        shards, registry = pair
        coordinator = make_coordinator(registry)
        report = coordinator.report(SQL)
        assert report.shards_total == 2
        assert report.shards_ok == 2
        assert report.missing_shards == []
        assert report.stale_shards == {}
        assert report.complete
        assert report.relevant_source_ids == {"m1", "m2", "m3", "m4"}
        assert not any("Degraded federated" in n for n in report.notices())

    def test_naive_method_matches_focused_sources(self, pair):
        shards, registry = pair
        coordinator = make_coordinator(registry)
        focused = coordinator.report(SQL)
        naive = coordinator.report(SQL, method="naive")
        assert focused.relevant_source_ids == naive.relevant_source_ids

    def test_unknown_method_rejected(self, pair):
        _, registry = pair
        with pytest.raises(TracError, match="unknown method"):
            make_coordinator(registry).report(SQL, method="psychic")

    def test_to_dict_shape(self, pair):
        _, registry = pair
        doc = make_coordinator(registry).report(SQL).to_dict()
        for key in (
            "shards_total", "shards_ok", "missing_shards", "stale_shards",
            "complete", "relevant", "normal", "exceptional", "notices",
            "bound_of_inconsistency",
        ):
            assert key in doc


class TestDeadShard:
    def test_dead_shard_is_named_within_deadline(self, pair):
        shards, registry = pair
        coordinator = make_coordinator(registry, deadline=1.5, retries=1)
        shards[1].close()
        started = time.monotonic()
        report = coordinator.report(SQL)
        elapsed = time.monotonic() - started
        assert elapsed < 2.0
        assert report.missing_shards == ["s1"]
        assert report.shards_ok == 1
        assert not report.complete
        assert any("Degraded federated report" in n for n in report.notices())
        assert any("missing: s1" in n for n in report.notices())
        # The healthy shard's sources still report.
        assert report.relevant_source_ids == {"m1", "m2"}

    def test_breaker_opens_after_repeated_failures_then_recovers(self, pair):
        shards, registry = pair
        coordinator = make_coordinator(
            registry, breaker_threshold=2, breaker_reset=0.2, retries=0,
        )
        victim = shards[1]
        victim.close()
        for _ in range(3):
            coordinator.report(SQL)
        breaker = coordinator._breaker("s1")
        assert breaker.state == CircuitBreaker.OPEN

        # Bring the shard back on the same port's replacement and re-register.
        config = SimulationConfig(num_machines=2, seed=5, machine_id_start=3)
        replacement = ShardServer("s1", config)
        replacement.server.start()
        with replacement._lock:
            for _ in range(60):
                replacement.sim.step()
        try:
            registry.register(replacement.host, replacement.port)
            time.sleep(0.25)  # past breaker_reset: the half-open probe fires
            report = coordinator.report(SQL)
            assert report.shards_ok == 2
            assert report.complete
            assert coordinator._breaker("s1").state == CircuitBreaker.CLOSED
        finally:
            replacement.close()

    def test_stale_fallback_serves_the_last_good_fragment(self, pair):
        shards, registry = pair
        coordinator = make_coordinator(registry, stale_fallback=True, stale_max_age=60.0)
        warm = coordinator.report(SQL)
        assert warm.complete
        shards[1].close()
        report = coordinator.report(SQL)
        assert report.missing_shards == []
        assert list(report.stale_shards) == ["s1"]
        assert report.stale_shards["s1"] >= 0.0
        assert not report.complete  # stale is still not complete
        # The cached fragment keeps s1's sources in the union.
        assert report.relevant_source_ids == {"m1", "m2", "m3", "m4"}
        assert any("Stale cached fragment" in n for n in report.notices())

    def test_stale_fallback_respects_max_age(self, pair):
        shards, registry = pair
        coordinator = make_coordinator(
            registry, stale_fallback=True, stale_max_age=0.0
        )
        coordinator.report(SQL)
        shards[1].close()
        time.sleep(0.05)
        report = coordinator.report(SQL)
        assert report.missing_shards == ["s1"]
        assert report.stale_shards == {}


class TestEmptyAndEdge:
    def test_empty_registry_reports_trivially(self):
        coordinator = make_coordinator(ShardRegistry())
        with pytest.raises(TracError, match="no shards registered"):
            coordinator.report(SQL)

    def test_parameter_validation(self):
        registry = ShardRegistry()
        with pytest.raises(TracError):
            FederationCoordinator(registry, deadline=0.0)
        with pytest.raises(TracError):
            FederationCoordinator(registry, attempt_timeout=-1.0)
        with pytest.raises(TracError):
            FederationCoordinator(registry, retries=-1)

    def test_guard_or_across_shards(self):
        """A guard false on every answering shard kills its subquery; true on
        any one shard keeps it — the union semantics of 'rows exist'."""
        from types import SimpleNamespace

        registry = ShardRegistry()
        coordinator = make_coordinator(registry)
        # _merge only reads plan.mode / plan.subqueries / sub.guards, so
        # lightweight stand-ins keep the test focused on the OR semantics.
        plan = SimpleNamespace(
            mode="focused",
            subqueries=[
                SimpleNamespace(guards=["g0"]),
                SimpleNamespace(guards=["g1"]),
            ],
        )
        replies = [
            {"results": [[["m1", 10.0]], [["m1", 10.0]]], "guards": {"g0": False, "g1": True}, "degraded": []},
            {"results": [[["m2", 20.0]], [["m2", 20.0]]], "guards": {"g0": False, "g1": False}, "degraded": ["m9"]},
        ]
        sources, degraded = coordinator._merge(plan, replies)
        # g0 false everywhere -> q0 dropped; g1 true somewhere -> q1 kept.
        assert {s.source_id for s in sources} == {"m1", "m2"}
        assert degraded == ["m9"]

    def test_short_fragment_does_not_crash_the_merge(self):
        from types import SimpleNamespace

        coordinator = make_coordinator(ShardRegistry())
        plan = SimpleNamespace(
            mode="focused",
            subqueries=[
                SimpleNamespace(guards=[]),
                SimpleNamespace(guards=[]),
            ],
        )
        replies = [{"results": [[["m1", 1.0]]], "guards": {}, "degraded": []}]
        sources, _ = coordinator._merge(plan, replies)
        assert {s.source_id for s in sources} == {"m1"}


class TestRegistry:
    def test_refresh_marks_dead_and_rejoined(self, pair):
        shards, registry = pair
        verdicts = registry.refresh(timeout=1.0)
        assert verdicts == {"s0": True, "s1": True}
        shards[0].close()
        verdicts = registry.refresh(timeout=0.5)
        assert verdicts["s0"] is False
        assert verdicts["s1"] is True
        info = next(i for i in registry.shards() if i.shard_id == "s0")
        assert not info.alive
        assert info.last_error

    def test_union_machines_is_sorted_and_disjoint(self, pair):
        _, registry = pair
        assert registry.machines() == ["m1", "m2", "m3", "m4"]

    def test_reregister_replaces_by_shard_id(self, pair):
        shards, registry = pair
        assert len(registry) == 2
        registry.register(shards[0].host, shards[0].port)
        assert len(registry) == 2

    def test_register_refuses_a_dead_address(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        registry = ShardRegistry()
        from repro.federation.rpc import RPCError

        with pytest.raises(RPCError):
            registry.register("127.0.0.1", port, timeout=0.5)


class TestHedging:
    def test_hedge_fires_for_a_straggler_and_wins(self):
        """First request stalls past hedge_delay; the hedge answers."""
        slow_first = {"count": 0}

        def handler(request):
            slow_first["count"] += 1
            if slow_first["count"] == 1:
                time.sleep(1.2)
            return {"ok": True, "shard_id": "s0", "mode": "all",
                    "results": [], "guards": {}, "degraded": []}

        server = RPCServer(handler).start()
        registry = ShardRegistry()
        registry.add(ShardInfo("s0", server.host, server.port, ["m1"]))
        coordinator = make_coordinator(
            registry, hedge_delay=0.15, attempt_timeout=2.0, deadline=3.0
        )
        try:
            started = time.monotonic()
            reply = coordinator._call_shard(
                registry.shards()[0],
                {"op": "fragment", "mode": "all", "subqueries": []},
                time.monotonic() + 3.0,
            )
            elapsed = time.monotonic() - started
        finally:
            server.stop()
        assert reply is not None and reply["ok"]
        assert elapsed < 1.0  # the hedge answered long before the straggler
        assert slow_first["count"] >= 2
