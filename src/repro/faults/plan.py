"""The fault plan: a seeded, deterministic schedule of pipeline failures.

A :class:`FaultPlan` is pure decision logic — it never touches a sniffer or
backend itself. The integration points (supervisor, :class:`FaultyBackend`,
:class:`FaultyLog`) *ask* it whether a fault fires for ``(source, now)`` and
act on the answer. Determinism has two ingredients:

* every ``(source, channel)`` pair draws from its own ``random.Random``
  seeded by a stable hash of ``(plan seed, source, channel)``, so the
  decision stream for one source is independent of how many other sources
  exist or in what order they poll;
* scripted times (``at=...``) are one-shot triggers that fire on the first
  consultation with ``now >=`` the scripted time, so they are robust to
  tick sizes and irregular poll cadences.

Fault kinds (the channels):

``poll_error``
    The sniffer's poll raises an :class:`InjectedFault` — transient (the
    supervisor retries with backoff) or permanent (the supervisor degrades
    the source immediately).
``drop_records`` / ``duplicate_records``
    Records vanish from, or appear twice in, what a poll reads. Dropping can
    spare ``HEARTBEAT`` records (``spare_heartbeats=True``) to model the
    paper's Section 3.1 scenario: data lost, liveness signal intact.
``backend_apply`` / ``backend_heartbeat``
    The backend write (``upsert_rows``/``delete_rows``, or
    ``upsert_heartbeat``) raises mid-poll.
``wal_append`` / ``checkpoint_write``
    The durability layer fails: a WAL journal append raises mid-poll (the
    supervisor retries the poll), or a checkpoint write fails (the manager
    keeps the previous checkpoint and carries on).  Checkpoint rules are
    consulted with source ``"*"``.
``silence``
    The machine stops writing its log between ``start`` and ``end`` — the
    "silent source" whose recency freezes.
``rpc_drop`` / ``rpc_delay`` / ``rpc_duplicate`` / ``rpc_garbage``
    Federation RPC misbehaviour, injected by the shard server *below* the
    protocol layer: the reply vanishes, stalls, arrives twice, or arrives
    as a non-JSON frame. ``source`` is the shard id here, and the decision
    query is :meth:`FaultPlan.check_rpc` (returns the kind instead of
    raising — dropping a reply is not an exception on the server side).
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.obs import instrument as obs
from repro.obs.events import EVT_FAULT_INJECTED

if TYPE_CHECKING:  # grid imports stay type-only: faults must not import grid
    from repro.grid.events import LogEvent  # pragma: no cover

#: Channels that carry probabilistic / scripted error rules.
_ERROR_KINDS = (
    "poll_error",
    "backend_apply",
    "backend_heartbeat",
    "wal_append",
    "checkpoint_write",
)
_RECORD_KINDS = ("drop_records", "duplicate_records")
#: Federation RPC fault channels (source = shard id, not machine id).
RPC_KINDS = ("rpc_drop", "rpc_delay", "rpc_duplicate", "rpc_garbage")
KINDS = _ERROR_KINDS + _RECORD_KINDS + RPC_KINDS + ("silence",)


class InjectedFault(SimulationError):
    """An error raised on purpose by a :class:`FaultPlan`.

    ``transient`` tells the supervisor whether retrying can help: transient
    faults go through the retry/backoff path, permanent ones degrade the
    source immediately.
    """

    def __init__(self, message: str, source: str, kind: str, transient: bool = True) -> None:
        super().__init__(message)
        self.source = source
        self.kind = kind
        self.transient = transient


def _stable_seed(*parts: object) -> int:
    digest = hashlib.sha256(":".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class _Rule:
    """One fault rule; ``source`` may be ``"*"`` (every source)."""

    __slots__ = ("kind", "source", "probability", "at", "fired", "transient", "spare_heartbeats")

    def __init__(
        self,
        kind: str,
        source: str,
        probability: float = 0.0,
        at: Sequence[float] = (),
        transient: bool = True,
        spare_heartbeats: bool = False,
    ) -> None:
        if kind not in KINDS:
            raise SimulationError(f"unknown fault kind {kind!r}; expected one of {KINDS}")
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"fault probability must be in [0, 1], got {probability}")
        if probability == 0.0 and not at and kind != "silence":
            raise SimulationError(f"{kind} rule for {source!r} would never fire "
                                  "(zero probability and no scripted times)")
        self.kind = kind
        self.source = source
        self.probability = float(probability)
        self.at = tuple(float(t) for t in at)
        #: scripted times that already fired, per concrete source (a "*"
        #: rule fires once per source, not once globally).
        self.fired: Dict[str, Set[float]] = {}
        self.transient = transient
        self.spare_heartbeats = spare_heartbeats

    def matches(self, source: str) -> bool:
        return self.source == "*" or self.source == source

    def scripted_due(self, source: str, now: float) -> bool:
        """True (and consumes the trigger) if a scripted time is due."""
        fired = self.fired.setdefault(source, set())
        for t in self.at:
            if t <= now and t not in fired:
                fired.add(t)
                return True
        return False


class _Silence:
    __slots__ = ("source", "start", "end")

    def __init__(self, source: str, start: float, end: Optional[float]) -> None:
        if source == "*":
            raise SimulationError("silence rules need a concrete source id")
        if start < 0:
            raise SimulationError(f"silence start must be >= 0, got {start}")
        if end is not None and end <= start:
            raise SimulationError(f"silence end ({end}) must be after start ({start})")
        self.source = source
        self.start = float(start)
        self.end = None if end is None else float(end)

    def active(self, now: float) -> bool:
        return now >= self.start and (self.end is None or now < self.end)


class FaultPlan:
    """A deterministic schedule of injected faults. See the module docstring.

    Builder methods return ``self`` so plans read as one chained expression::

        plan = (FaultPlan(seed=7)
                .silence("m3", start=120.0)
                .poll_error("m2", probability=0.2)
                .backend_error("*", op="heartbeat", at=[50.0]))
    """

    def __init__(self, seed: int = 0, telemetry: Optional[object] = None) -> None:
        self.seed = seed
        self.telemetry = telemetry
        self._rules: List[_Rule] = []
        self._silences: List[_Silence] = []
        self._rngs: Dict[Tuple[str, str], random.Random] = {}
        #: Count of injections actually performed, keyed by fault kind.
        self.injected: Dict[str, int] = {}

    # -- builders -----------------------------------------------------------

    def poll_error(
        self,
        source: str = "*",
        probability: float = 0.0,
        at: Sequence[float] = (),
        transient: bool = True,
    ) -> "FaultPlan":
        """Make the source's sniffer poll raise an :class:`InjectedFault`."""
        self._rules.append(_Rule("poll_error", source, probability, at, transient=transient))
        return self

    def drop_records(
        self,
        source: str = "*",
        probability: float = 0.0,
        at: Sequence[float] = (),
        spare_heartbeats: bool = False,
    ) -> "FaultPlan":
        """Drop records from what a poll reads (each record rolls independently)."""
        self._rules.append(
            _Rule("drop_records", source, probability, at, spare_heartbeats=spare_heartbeats)
        )
        return self

    def duplicate_records(
        self, source: str = "*", probability: float = 0.0, at: Sequence[float] = ()
    ) -> "FaultPlan":
        """Deliver some records twice (at-least-once delivery)."""
        self._rules.append(_Rule("duplicate_records", source, probability, at))
        return self

    def backend_error(
        self,
        source: str = "*",
        op: str = "apply",
        probability: float = 0.0,
        at: Sequence[float] = (),
        transient: bool = True,
    ) -> "FaultPlan":
        """Fail backend writes: ``op="apply"`` (upsert/delete rows) or
        ``op="heartbeat"`` (``upsert_heartbeat``)."""
        if op not in ("apply", "heartbeat"):
            raise SimulationError(f"backend_error op must be 'apply' or 'heartbeat', got {op!r}")
        self._rules.append(
            _Rule(f"backend_{op}", source, probability, at, transient=transient)
        )
        return self

    def durability_error(
        self,
        source: str = "*",
        op: str = "wal",
        probability: float = 0.0,
        at: Sequence[float] = (),
        transient: bool = True,
    ) -> "FaultPlan":
        """Fail durability writes: ``op="wal"`` (journal append during a
        poll) or ``op="checkpoint"`` (checkpoint write — use source ``"*"``,
        checkpoints are not per-source)."""
        if op not in ("wal", "checkpoint"):
            raise SimulationError(
                f"durability_error op must be 'wal' or 'checkpoint', got {op!r}"
            )
        kind = "wal_append" if op == "wal" else "checkpoint_write"
        self._rules.append(_Rule(kind, source, probability, at, transient=transient))
        return self

    def rpc_fault(
        self,
        source: str = "*",
        kind: str = "rpc_drop",
        probability: float = 0.0,
        at: Sequence[float] = (),
    ) -> "FaultPlan":
        """Misbehave on a shard's RPC replies; ``source`` is the shard id."""
        if kind not in RPC_KINDS:
            raise SimulationError(
                f"rpc fault kind must be one of {RPC_KINDS}, got {kind!r}"
            )
        self._rules.append(_Rule(kind, source, probability, at))
        return self

    def silence(self, source: str, start: float, end: Optional[float] = None) -> "FaultPlan":
        """Stall the machine's log from ``start`` (to ``end``, or forever)."""
        self._silences.append(_Silence(source, start, end))
        return self

    # -- decision queries ---------------------------------------------------

    def _rng(self, source: str, channel: str) -> random.Random:
        key = (source, channel)
        rng = self._rngs.get(key)
        if rng is None:
            rng = self._rngs[key] = random.Random(_stable_seed(self.seed, source, channel))
        return rng

    def _record(self, kind: str, source: str, count: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + count
        tel = obs.resolve(self.telemetry)
        if tel.enabled:
            for _ in range(count):
                obs.record_fault_injected(tel, kind, source)
            tel.emit(
                EVT_FAULT_INJECTED,
                source=source,
                severity="warning",
                kind=kind,
                count=count,
            )

    def _error_due(self, kind: str, source: str, now: float) -> Optional[_Rule]:
        for rule in self._rules:
            if rule.kind != kind or not rule.matches(source):
                continue
            if rule.scripted_due(source, now):
                return rule
            if rule.probability > 0.0 and self._rng(source, kind).random() < rule.probability:
                return rule
        return None

    def check_poll(self, source: str, now: float) -> None:
        """Raise :class:`InjectedFault` if a poll error fires for this poll."""
        rule = self._error_due("poll_error", source, now)
        if rule is not None:
            self._record("poll_error", source)
            flavour = "transient" if rule.transient else "permanent"
            raise InjectedFault(
                f"injected {flavour} poll error for {source!r} at t={now:g}",
                source,
                "poll_error",
                transient=rule.transient,
            )

    def check_backend(self, source: str, now: float, op: str) -> None:
        """Raise :class:`InjectedFault` if a backend write should fail."""
        kind = f"backend_{op}"
        rule = self._error_due(kind, source, now)
        if rule is not None:
            self._record(kind, source)
            raise InjectedFault(
                f"injected backend {op} failure for {source!r} at t={now:g}",
                source,
                kind,
                transient=rule.transient,
            )

    def check_durability(self, source: str, now: float, op: str) -> None:
        """Raise :class:`InjectedFault` if a WAL/checkpoint write should fail."""
        kind = "wal_append" if op == "wal" else "checkpoint_write"
        rule = self._error_due(kind, source, now)
        if rule is not None:
            self._record(kind, source)
            raise InjectedFault(
                f"injected {op} write failure for {source!r} at t={now:g}",
                source,
                kind,
                transient=rule.transient,
            )

    def check_rpc(self, source: str, now: float) -> Optional[str]:
        """The RPC fault kind due for this shard's reply, or ``None``.

        Consulted once per request by the shard's RPC server; returns the
        first due kind in :data:`RPC_KINDS` order (drop beats delay beats
        duplicate beats garbage when several are due the same instant).
        """
        for kind in RPC_KINDS:
            if self._error_due(kind, source, now) is not None:
                self._record(kind, source)
                return kind
        return None

    def filter_events(
        self, source: str, now: float, events: Sequence["LogEvent"]
    ) -> List["LogEvent"]:
        """Apply drop/duplicate rules to one poll's worth of records."""
        if not events:
            return list(events)
        # Local import keeps repro.faults importable without repro.grid
        # (which imports the supervisor, which imports this package).
        from repro.grid.events import EventKind

        out: List["LogEvent"] = []
        drop_rules = [
            r for r in self._rules if r.kind == "drop_records" and r.matches(source)
        ]
        dup_rules = [
            r for r in self._rules if r.kind == "duplicate_records" and r.matches(source)
        ]
        drop_all = any(r.scripted_due(source, now) for r in drop_rules)
        dup_all = any(r.scripted_due(source, now) for r in dup_rules)
        for event in events:
            dropped = False
            for rule in drop_rules:
                if rule.spare_heartbeats and event.kind is EventKind.HEARTBEAT:
                    continue
                if drop_all or (
                    rule.probability > 0.0
                    and self._rng(source, "drop_records").random() < rule.probability
                ):
                    dropped = True
                    break
            if dropped:
                self._record("drop_records", source)
                continue
            out.append(event)
            for rule in dup_rules:
                if dup_all or (
                    rule.probability > 0.0
                    and self._rng(source, "duplicate_records").random() < rule.probability
                ):
                    out.append(event)
                    self._record("duplicate_records", source)
                    break
        return out

    def is_silenced(self, source: str, now: float) -> bool:
        """Whether the plan silences ``source`` at time ``now``."""
        return any(s.source == source and s.active(now) for s in self._silences)

    def silenced_sources(self, now: Optional[float] = None) -> Set[str]:
        """Sources silenced at ``now`` (or by *any* window when ``None``)."""
        if now is None:
            return {s.source for s in self._silences}
        return {s.source for s in self._silences if s.active(now)}

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        faults: List[Dict[str, object]] = []
        for rule in self._rules:
            entry: Dict[str, object] = {"kind": rule.kind, "source": rule.source}
            if rule.probability:
                entry["probability"] = rule.probability
            if rule.at:
                entry["at"] = list(rule.at)
            if not rule.transient:
                entry["transient"] = False
            if rule.spare_heartbeats:
                entry["spare_heartbeats"] = True
            faults.append(entry)
        for silence in self._silences:
            entry = {"kind": "silence", "source": silence.source, "start": silence.start}
            if silence.end is not None:
                entry["end"] = silence.end
            faults.append(entry)
        return json.dumps({"seed": self.seed, "faults": faults}, indent=2)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self._rules)}, "
            f"silences={len(self._silences)}, injected={sum(self.injected.values())})"
        )


def plan_from_json(text: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from its JSON document form.

    Format::

        {"seed": 7,
         "faults": [
           {"kind": "silence", "source": "m3", "start": 120},
           {"kind": "poll_error", "source": "m2", "probability": 0.2},
           {"kind": "backend_heartbeat", "source": "*", "at": [50]},
           {"kind": "drop_records", "source": "m4", "probability": 0.1,
            "spare_heartbeats": true}
         ]}
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"malformed fault plan JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SimulationError("fault plan JSON must be an object")
    unknown_top = set(data) - {"seed", "faults"}
    if unknown_top:
        raise SimulationError(f"fault plan has unknown fields: {sorted(unknown_top)}")
    plan = FaultPlan(seed=int(data.get("seed", 0)))
    faults = data.get("faults", [])
    if not isinstance(faults, list):
        raise SimulationError("'faults' must be a list of fault objects")
    allowed = {"kind", "source", "probability", "at", "transient", "spare_heartbeats",
               "start", "end"}
    for index, item in enumerate(faults):
        if not isinstance(item, dict):
            raise SimulationError(f"fault #{index} is not an object")
        unknown = set(item) - allowed
        if unknown:
            raise SimulationError(f"fault #{index} has unknown fields: {sorted(unknown)}")
        kind = item.get("kind")
        source = item.get("source", "*")
        if kind == "silence":
            if "start" not in item:
                raise SimulationError(f"fault #{index}: silence needs 'start'")
            plan.silence(source, item["start"], item.get("end"))
            continue
        probability = float(item.get("probability", 0.0))
        at = item.get("at", ())
        if not isinstance(at, (list, tuple)):
            raise SimulationError(f"fault #{index}: 'at' must be a list of times")
        transient = bool(item.get("transient", True))
        if kind == "poll_error":
            plan.poll_error(source, probability, at, transient=transient)
        elif kind == "drop_records":
            plan.drop_records(
                source, probability, at,
                spare_heartbeats=bool(item.get("spare_heartbeats", False)),
            )
        elif kind == "duplicate_records":
            plan.duplicate_records(source, probability, at)
        elif kind in ("backend_apply", "backend_heartbeat"):
            plan.backend_error(
                source, op=kind.split("_", 1)[1], probability=probability, at=at,
                transient=transient,
            )
        elif kind in RPC_KINDS:
            plan.rpc_fault(source, kind, probability, at)
        elif kind in ("wal_append", "checkpoint_write"):
            plan.durability_error(
                source,
                op="wal" if kind == "wal_append" else "checkpoint",
                probability=probability,
                at=at,
                transient=transient,
            )
        else:
            raise SimulationError(f"fault #{index} has unknown kind {kind!r}")
    return plan
