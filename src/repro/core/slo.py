"""Per-source staleness time-series and SLO tracking.

The paper's report answers "how stale is this *answer*, right now". A
production deployment also needs the time dimension: "how stale has source
m3 been over the last half hour, and are we inside our staleness budget?"
This module keeps a rolling window of **recency lag** samples per source
(lag = clock − last reported recency, sampled by the simulator loop or any
other driver) and evaluates a service-level objective over it:

* the **target**: "p95 lag < ``target_p95`` seconds";
* the **error budget**: at most a ``budget`` fraction of samples in the
  window may exceed the target;
* the **burn rate**: the observed violating fraction divided by the
  budget. Burn ≥ 1 means the budget is spent — the source's SLO is
  *breached* (the classic error-budget formulation of SRE practice).

Everything is dependency-free and O(1) per sample: each window keeps a
running count of violating samples, adjusted as the ring evicts. The
:class:`~repro.grid.simulator.GridSimulator` feeds a tracker when given
one; :class:`~repro.core.report.RecencyReporter` surfaces the tracker's
status as a report NOTICE; the observatory server and ``trac top`` render
it live.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.statistics import percentile
from repro.errors import TracError

#: Default SLO target: 95th-percentile recency lag below one minute.
DEFAULT_TARGET_P95 = 60.0
#: Default error budget: 5% of window samples may exceed the target.
DEFAULT_BUDGET = 0.05
#: Default rolling-window size, in samples.
DEFAULT_WINDOW = 256


class LagWindow:
    """One source's rolling window of ``(t, lag)`` samples.

    Not thread-safe on its own — the owning :class:`StalenessSLO` holds
    the lock.
    """

    __slots__ = ("source_id", "threshold", "_samples", "_violations", "_total")

    def __init__(self, source_id: str, threshold: float, capacity: int) -> None:
        self.source_id = source_id
        self.threshold = threshold
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        self._violations = 0
        self._total = 0

    def record(self, t: float, lag: float) -> None:
        if len(self._samples) == self._samples.maxlen:
            _, evicted = self._samples.popleft()
            if evicted > self.threshold:
                self._violations -= 1
        self._samples.append((t, lag))
        self._total += 1
        if lag > self.threshold:
            self._violations += 1

    @property
    def latest(self) -> Optional[float]:
        return self._samples[-1][1] if self._samples else None

    @property
    def violation_fraction(self) -> float:
        return self._violations / len(self._samples) if self._samples else 0.0

    def lags(self) -> List[float]:
        return [lag for _, lag in self._samples]

    def series(self, limit: Optional[int] = None) -> List[Tuple[float, float]]:
        out = list(self._samples)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def __len__(self) -> int:
        return len(self._samples)


class SourceSLOStatus:
    """One source's point-in-time SLO evaluation."""

    __slots__ = (
        "source_id",
        "samples",
        "latest",
        "mean",
        "p95",
        "max_lag",
        "violation_fraction",
        "burn",
        "breached",
    )

    def __init__(
        self,
        source_id: str,
        samples: int,
        latest: Optional[float],
        mean: float,
        p95: float,
        max_lag: float,
        violation_fraction: float,
        burn: float,
        breached: bool,
    ) -> None:
        self.source_id = source_id
        self.samples = samples
        self.latest = latest
        self.mean = mean
        self.p95 = p95
        self.max_lag = max_lag
        self.violation_fraction = violation_fraction
        self.burn = burn
        self.breached = breached

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source_id,
            "samples": self.samples,
            "latest": self.latest,
            "mean": self.mean,
            "p95": self.p95,
            "max": self.max_lag,
            "violation_fraction": self.violation_fraction,
            "burn": self.burn,
            "breached": self.breached,
        }

    def __repr__(self) -> str:
        state = "BREACHED" if self.breached else "ok"
        return (
            f"SourceSLOStatus({self.source_id!r}, p95={self.p95:.3f}s, "
            f"burn={self.burn:.2f}, {state})"
        )


class SLOStatus:
    """The whole tracker's point-in-time evaluation."""

    __slots__ = ("target_p95", "budget", "sources", "breached", "worst_burn")

    def __init__(
        self,
        target_p95: float,
        budget: float,
        sources: List[SourceSLOStatus],
    ) -> None:
        self.target_p95 = target_p95
        self.budget = budget
        self.sources = sources
        self.breached = [s.source_id for s in sources if s.breached]
        self.worst_burn = max((s.burn for s in sources), default=0.0)

    @property
    def ok(self) -> bool:
        return not self.breached

    def to_dict(self) -> Dict[str, object]:
        return {
            "target_p95": self.target_p95,
            "budget": self.budget,
            "breached": list(self.breached),
            "worst_burn": self.worst_burn,
            "sources": [s.to_dict() for s in self.sources],
        }

    def __repr__(self) -> str:
        return (
            f"SLOStatus(target_p95={self.target_p95:g}s, "
            f"breached={len(self.breached)}/{len(self.sources)}, "
            f"worst_burn={self.worst_burn:.2f})"
        )


class StalenessSLO:
    """Thread-safe per-source staleness SLO tracker. See module docstring."""

    def __init__(
        self,
        target_p95: float = DEFAULT_TARGET_P95,
        budget: float = DEFAULT_BUDGET,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if not isinstance(target_p95, (int, float)) or not math.isfinite(target_p95):
            raise TracError(f"SLO target must be a finite number, got {target_p95!r}")
        if target_p95 <= 0:
            raise TracError(f"SLO target must be positive, got {target_p95!r}")
        if not 0.0 < budget < 1.0:
            raise TracError(f"SLO budget must be in (0, 1), got {budget!r}")
        if window < 1:
            raise TracError(f"SLO window must be >= 1 sample, got {window!r}")
        self.target_p95 = float(target_p95)
        self.budget = float(budget)
        self.window = int(window)
        self._lock = threading.Lock()
        self._windows: Dict[str, LagWindow] = {}

    # -- recording ----------------------------------------------------------

    def record(self, source_id: str, t: float, lag: float) -> None:
        """Add one lag sample for ``source_id`` taken at time ``t``."""
        with self._lock:
            win = self._windows.get(source_id)
            if win is None:
                win = self._windows[source_id] = LagWindow(
                    source_id, self.target_p95, self.window
                )
            win.record(t, float(lag))

    # -- evaluation ---------------------------------------------------------

    def _status_of_locked(self, win: LagWindow) -> SourceSLOStatus:
        lags = win.lags()
        if lags:
            mean = sum(lags) / len(lags)
            p95 = percentile(lags, 95.0)
            max_lag = max(lags)
        else:
            mean = p95 = max_lag = 0.0
        fraction = win.violation_fraction
        burn = fraction / self.budget
        return SourceSLOStatus(
            win.source_id,
            len(win),
            win.latest,
            mean,
            p95,
            max_lag,
            fraction,
            burn,
            burn >= 1.0,
        )

    def status_of(self, source_id: str) -> Optional[SourceSLOStatus]:
        """One source's evaluation, or ``None`` if it never reported."""
        with self._lock:
            win = self._windows.get(source_id)
            if win is None:
                return None
            return self._status_of_locked(win)

    def status(self) -> SLOStatus:
        """Every source's evaluation plus the aggregate verdict."""
        with self._lock:
            statuses = [
                self._status_of_locked(win)
                for _, win in sorted(self._windows.items())
            ]
        return SLOStatus(self.target_p95, self.budget, statuses)

    def breached_sources(self) -> List[str]:
        """Sorted ids of sources currently burning past their budget.

        O(sources) — the per-window violation count is maintained
        incrementally, so this is safe to call every simulator tick.
        """
        with self._lock:
            return sorted(
                sid
                for sid, win in self._windows.items()
                if win.violation_fraction >= self.budget
            )

    def series(self, source_id: str, limit: Optional[int] = None) -> List[Tuple[float, float]]:
        """The retained ``(t, lag)`` samples for one source (for the
        flight recorder and dashboard sparklines)."""
        with self._lock:
            win = self._windows.get(source_id)
            return win.series(limit) if win is not None else []

    def sources(self) -> List[str]:
        with self._lock:
            return sorted(self._windows)

    def lag_series(self, limit: Optional[int] = None) -> Dict[str, List[Tuple[float, float]]]:
        """Every source's retained series (the flight-dump payload)."""
        with self._lock:
            return {sid: win.series(limit) for sid, win in sorted(self._windows.items())}

    def __repr__(self) -> str:
        return (
            f"StalenessSLO(target_p95={self.target_p95:g}s, budget={self.budget:g}, "
            f"window={self.window}, sources={len(self.sources())})"
        )
