#!/usr/bin/env python
"""Long-running fuzz of the central relevance guarantees.

Runs the completeness / minimality / Theorem-1 properties (the same ones as
``tests/core/test_relevance_properties.py``) with a much larger example
budget and richer strategies. Intended for occasional deep verification::

    python tools/fuzz_relevance.py [examples-per-property]
"""

from __future__ import annotations

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Catalog, Column, FiniteDomain, MemoryBackend, TableSchema
from repro.core.bruteforce import brute_force_relevant_sources
from repro.core.relevance import build_relevance_plan
from repro.core.report import RecencyReporter
from repro.engine.evaluate import execute_query
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve

SOURCES = ("s1", "s2", "s3", "s4")
VALUES = ("p", "q", "r")
NUMS = (0, 1, 2, 3)


def catalog():
    return Catalog(
        [
            TableSchema(
                "t1",
                [
                    Column("src", "TEXT", FiniteDomain(SOURCES)),
                    Column("v", "TEXT", FiniteDomain(VALUES)),
                    Column("n", "INTEGER", FiniteDomain(NUMS)),
                ],
                source_column="src",
            ),
            TableSchema(
                "t2",
                [
                    Column("src", "TEXT", FiniteDomain(SOURCES)),
                    Column("ref", "TEXT", FiniteDomain(SOURCES)),
                    Column("m", "INTEGER", FiniteDomain(NUMS)),
                ],
                source_column="src",
            ),
        ]
    )


_row1 = st.tuples(st.sampled_from(SOURCES), st.sampled_from(VALUES), st.sampled_from(NUMS))
_row2 = st.tuples(st.sampled_from(SOURCES), st.sampled_from(SOURCES), st.sampled_from(NUMS))

_atoms = st.sampled_from(
    [
        "t1.src = 's1'",
        "t1.src IN ('s1', 's2')",
        "t1.src NOT IN ('s3', 's4')",
        "t1.src LIKE 's_'",
        "t1.src BETWEEN 's1' AND 's3'",
        "t1.v = 'p'",
        "t1.v <> 'q'",
        "t1.v IN ('p', 'r')",
        "t1.n > 0",
        "t1.n BETWEEN 1 AND 2",
        "t1.n <= 2",
        "t1.src = t1.v",
        "t1.v = t1.src",
        "t1.n = 1 AND t1.n = 2",
        "t2.src = 's2'",
        "t2.ref = 's1'",
        "t2.m >= 2",
        "t1.src = t2.src",
        "t1.src = t2.ref",
        "t2.ref = t1.src",
        "t1.n = t2.m",
        "t1.n < t2.m",
        "t2.src = t2.ref",
        "t1.v IS NULL",
        "t1.v IS NOT NULL",
    ]
)

_where = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} AND {b})", inner, inner),
        st.builds(lambda a, b: f"({a} OR {b})", inner, inner),
        st.builds(lambda a: f"NOT ({a})", inner),
    ),
    max_leaves=8,
)


def _setup(rows1, rows2):
    backend = MemoryBackend(catalog())
    backend.insert_rows("t1", rows1)
    backend.insert_rows("t2", rows2)
    for i, src in enumerate(SOURCES):
        backend.upsert_heartbeat(src, 100.0 + i)
    return backend


def make_property(max_examples: int):
    @settings(max_examples=max_examples, deadline=None, print_blob=True)
    @given(
        st.lists(_row1, max_size=4),
        st.lists(_row2, max_size=4),
        _where,
        _row1,
        _row2,
    )
    def property_holds(rows1, rows2, where, new_row1, new_row2):
        backend = _setup(rows1, rows2)
        sql = f"SELECT t1.src FROM t1, t2 WHERE {where}"
        resolved = resolve(parse_query(sql), backend.catalog)
        exact = brute_force_relevant_sources(backend.db, resolved)
        plan = build_relevance_plan(resolved)
        reporter = RecencyReporter(backend, create_temp_tables=False)
        reported = reporter.report(sql).relevant_source_ids

        assert reported >= exact, f"INCOMPLETE for {where!r}: missing {exact - reported}"
        if plan.minimal:
            assert reported == exact, (
                f"NOT MINIMAL for {where!r}: extra {reported - exact}"
            )

        baseline = sorted(execute_query(backend.db, resolved).rows)
        for table, row in (("t1", new_row1), ("t2", new_row2)):
            if row[0] in exact:
                continue
            trial = backend.db.copy()
            trial.insert(table, row)
            after = sorted(execute_query(trial, resolved).rows)
            assert after == baseline, (
                f"THEOREM 1 VIOLATION for {where!r}: insert {row!r} into {table}"
            )

    return property_holds


def main() -> int:
    examples = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"fuzzing relevance guarantees with {examples} examples ...")
    make_property(examples)()
    print("OK: completeness, minimality and Theorem 1 held on every example")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
