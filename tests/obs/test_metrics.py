"""Metrics registry tests: counters, gauges, histogram bucket semantics."""

import threading

import pytest

from repro.errors import TracError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("hits")
        with pytest.raises(TracError):
            c.inc(-1)
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("backlog")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogramBuckets:
    def test_value_at_bound_counts_in_that_bucket(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)  # exactly the first bound: <= 1.0
        assert h.bucket_counts() == [
            (1.0, 1),
            (2.0, 1),
            (4.0, 1),
            (float("inf"), 1),
        ]

    def test_cumulative_counts(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            h.observe(value)
        assert h.bucket_counts() == [
            (1.0, 1),  # 0.5
            (2.0, 2),  # + 1.5
            (4.0, 3),  # + 3.0
            (float("inf"), 4),  # + 100.0 (beyond every finite bound)
        ]

    def test_just_above_bound_falls_into_next(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0000001)
        assert h.bucket_counts() == [(1.0, 0), (2.0, 1), (float("inf"), 1)]

    def test_sum_count_mean(self, registry):
        h = registry.histogram("h", buckets=(10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.count == 2
        assert h.sum == 6.0
        assert h.mean == 3.0

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)

    def test_empty_bounds_rejected(self, registry):
        with pytest.raises(TracError):
            registry.histogram("bad", buckets=())

    def test_non_increasing_bounds_rejected(self, registry):
        with pytest.raises(TracError):
            registry.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(TracError):
            registry.histogram("bad2", buckets=(2.0, 1.0))


class TestRegistry:
    def test_creation_is_idempotent(self, registry):
        a = registry.counter("hits", {"backend": "sqlite"})
        b = registry.counter("hits", {"backend": "sqlite"})
        assert a is b
        assert len(registry) == 1

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("hits", {"a": "1", "b": "2"})
        b = registry.counter("hits", {"b": "2", "a": "1"})
        assert a is b

    def test_distinct_label_sets_are_distinct_series(self, registry):
        a = registry.counter("hits", {"backend": "sqlite"})
        b = registry.counter("hits", {"backend": "memory"})
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_kind_conflict_raises(self, registry):
        registry.counter("hits")
        with pytest.raises(TracError):
            registry.gauge("hits")
        with pytest.raises(TracError):
            registry.histogram("hits")
        # Same name + different labels still conflicts across kinds.
        with pytest.raises(TracError):
            registry.gauge("hits", {"x": "y"})

    def test_collect_sorted_by_name_then_labels(self, registry):
        registry.counter("z_metric")
        registry.counter("a_metric", {"l": "2"})
        registry.counter("a_metric", {"l": "1"})
        collected = registry.collect()
        assert [(i.name, i.labels) for i in collected] == [
            ("a_metric", (("l", "1"),)),
            ("a_metric", (("l", "2"),)),
            ("z_metric", ()),
        ]

    def test_names_and_kind_of(self, registry):
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h")
        assert registry.names() == ["c", "g", "h"]
        assert registry.kind_of("c") == "counter"
        assert registry.kind_of("g") == "gauge"
        assert registry.kind_of("h") == "histogram"
        assert registry.kind_of("missing") is None

    def test_help_text_first_writer_wins(self, registry):
        registry.counter("c", help="first")
        registry.counter("c", help="second")
        assert registry.help_text("c") == "first"
        assert registry.help_text("unknown") is None

    def test_reset_empties_registry(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.names() == []
        # Re-registering after reset starts fresh.
        assert registry.counter("c").value == 0.0

    def test_instrument_kinds(self, registry):
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)


class TestThreadSafety:
    def test_concurrent_updates_do_not_lose_counts(self, registry):
        c = registry.counter("hits")
        h = registry.histogram("lat", buckets=(0.5, 1.0))

        def worker():
            for _ in range(1000):
                c.inc()
                h.observe(0.25)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert c.value == 2000.0
        assert h.count == 2000
        assert h.bucket_counts()[0] == (0.5, 2000)


class TestNullRegistry:
    def test_hands_out_shared_null_instrument(self):
        assert NULL_REGISTRY.counter("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("x") is NULL_INSTRUMENT

    def test_null_instrument_is_inert(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.dec()
        NULL_INSTRUMENT.set(5)
        NULL_INSTRUMENT.observe(1.0)
        assert NULL_INSTRUMENT.value == 0.0
        assert NULL_INSTRUMENT.count == 0
        assert NULL_INSTRUMENT.bucket_counts() == []

    def test_stores_nothing(self):
        NULL_REGISTRY.counter("x").inc()
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.collect() == []
        assert NULL_REGISTRY.names() == []


class TestHistogramQuantile:
    """histogram_quantile: the serving p99 math, Prometheus-style."""

    def make_buckets(self, observations, bounds=(0.1, 0.5, 1.0)):
        h = Histogram("t", (), threading.Lock(), bounds)
        for value in observations:
            h.observe(value)
        return h.bucket_counts()

    def test_interpolates_within_a_bucket(self):
        # 10 samples all in (0.1, 0.5]: p50 lands mid-bucket.
        buckets = self.make_buckets([0.3] * 10)
        assert histogram_quantile(buckets, 0.5) == pytest.approx(0.3)

    def test_spans_buckets(self):
        buckets = self.make_buckets([0.05] * 50 + [0.4] * 50)
        assert histogram_quantile(buckets, 0.25) == pytest.approx(0.05)
        assert histogram_quantile(buckets, 0.75) == pytest.approx(0.3)

    def test_overflow_bucket_returns_last_finite_bound(self):
        buckets = self.make_buckets([5.0] * 10)  # all beyond the 1.0 bound
        assert histogram_quantile(buckets, 0.99) == pytest.approx(1.0)

    def test_empty_and_zero_total_return_none(self):
        assert histogram_quantile([], 0.5) is None
        assert histogram_quantile(self.make_buckets([]), 0.5) is None

    def test_quantile_out_of_range_raises(self):
        buckets = self.make_buckets([0.2])
        with pytest.raises(TracError):
            histogram_quantile(buckets, 1.5)
        with pytest.raises(TracError):
            histogram_quantile(buckets, -0.1)
