"""Length-prefixed JSON socket RPC for the shard federation.

The wire format is deliberately tiny: every message is a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
One request/response pair per connection keeps the failure model simple —
a dead shard is a refused connect or a timed-out read, never a
half-poisoned multiplexed stream.

The server side is a daemon-threaded TCP acceptor with one handler thread
per connection. A ``fault_hook`` lets the shard server inject the
federation fault kinds from :mod:`repro.faults.plan` (drop the reply,
delay it, send it twice, or send a garbage frame) *below* the protocol
layer, which is exactly where a real network would corrupt things; the
client is written to survive all four (timeouts, retries, and ignoring
trailing bytes on a one-shot connection).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from typing import Callable, Optional

from repro.errors import TracError

#: Upper bound on one frame; a length prefix beyond this is garbage.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class RPCError(TracError):
    """A shard RPC failed: connect/timeout/protocol garbage."""


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise RPCError(f"connection closed mid-frame ({count - remaining}/{count} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise RPCError(f"frame too large: {len(payload)} bytes")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict:
    """Read one length-prefixed frame and parse it as a JSON object."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise RPCError(f"bad frame length {length}")
    payload = _recv_exact(sock, length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RPCError(f"garbage frame: {exc}") from exc
    if not isinstance(message, dict):
        raise RPCError("frame payload is not a JSON object")
    return message


def call(
    host: str,
    port: int,
    request: dict,
    timeout: float = 5.0,
) -> dict:
    """One-shot RPC: connect, send ``request``, return the reply.

    ``timeout`` is a wall-clock budget covering connect + send + receive.
    Raises :class:`RPCError` on refusal, timeout, or a garbage reply —
    *including* ``ConnectionRefusedError``/``ConnectionResetError``, so
    callers see one exception type for "that shard is unreachable".
    """
    deadline = time.monotonic() + timeout
    try:
        sock = socket.create_connection((host, port), timeout=max(0.001, timeout))
    except OSError as exc:
        raise RPCError(f"connect {host}:{port} failed: {exc}") from exc
    try:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RPCError(f"deadline exhausted before send to {host}:{port}")
        sock.settimeout(remaining)
        send_frame(sock, request)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RPCError(f"deadline exhausted awaiting {host}:{port}")
        sock.settimeout(remaining)
        # A duplicated response (rpc_duplicate fault) leaves a trailing
        # frame on the socket; one-shot connections make it harmless —
        # we read exactly one reply and close.
        return recv_frame(sock)
    except socket.timeout as exc:
        raise RPCError(f"rpc to {host}:{port} timed out after {timeout:g}s") from exc
    except OSError as exc:
        raise RPCError(f"rpc to {host}:{port} failed: {exc}") from exc
    finally:
        sock.close()


class RPCServer:
    """A threaded one-request-per-connection frame server.

    Parameters
    ----------
    handler:
        ``handler(request) -> response`` mapping one JSON object to
        another; exceptions become ``{"ok": False, "error": ...}`` replies.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after construction).
    fault_hook:
        Optional ``fault_hook(request) -> kind`` consulted per request,
        returning ``None`` or one of the ``rpc_*`` fault kinds from
        :mod:`repro.faults.plan`; the server then misbehaves accordingly.
    fault_delay:
        Seconds to stall when the hook answers ``rpc_delay``.
    """

    def __init__(
        self,
        handler: Callable[[dict], dict],
        host: str = "127.0.0.1",
        port: int = 0,
        fault_hook: Optional[Callable[[dict], Optional[str]]] = None,
        fault_delay: float = 1.0,
    ) -> None:
        self.handler = handler
        self.fault_hook = fault_hook
        self.fault_delay = fault_delay
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        # A blocking accept() would NOT be woken by close() from another
        # thread (the kernel pins the open file description for the
        # duration of the syscall, so the "closed" server keeps accepting).
        # A short accept timeout lets the loop re-check the stop flag.
        self._sock.settimeout(0.25)
        self.host, self.port = self._sock.getsockname()[:2]
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "RPCServer":
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"rpc-accept:{self.port}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        try:
            self._sock.close()  # after the join: see the accept-timeout note
        except OSError:
            pass

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue  # periodic stop-flag check
            except OSError:
                return  # socket closed: shutting down
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10.0)
            request = recv_frame(conn)
            fault = self.fault_hook(request) if self.fault_hook is not None else None
            if fault == "rpc_drop":
                return  # close without replying; the client times out / resets
            try:
                response = self.handler(request)
            except Exception as exc:  # a handler bug must not kill the acceptor
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            if fault == "rpc_delay":
                time.sleep(self.fault_delay)
            if fault == "rpc_garbage":
                conn.sendall(_LENGTH.pack(12) + b"\xff\xfenot json\x00\x01")
                return
            send_frame(conn, response)
            if fault == "rpc_duplicate":
                send_frame(conn, response)
        except (RPCError, OSError):
            pass  # client went away or sent garbage; nothing to salvage
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "RPCServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
