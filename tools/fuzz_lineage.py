#!/usr/bin/env python
"""Property fuzz for the row-lineage algebra.

Generates random data and predicates over the two-table fuzz schema and
asserts the lineage laws hold on every example:

* **join-union** — a join row's lineage equals the union of its parents'
  lineages (for source-projecting selects this is checkable exactly:
  each parent scan contributes its own source value);
* **no-invention** — projection and filtering never cite a source absent
  from the base data;
* **projection-invariance** — changing the select list (without changing
  the FROM/WHERE) changes no row's lineage;
* **aggregate-union** — an ungrouped aggregate's lineage is the union of
  every contributing row's lineage;
* **distinct-merge** — DISTINCT unions the lineages of the duplicates it
  collapses;
* **path-identity** — the compiled and interpreted paths produce
  byte-identical rows *and* lineage, in order.

Usage::

    python tools/fuzz_lineage.py [examples]
"""

from __future__ import annotations

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, FiniteDomain, TableSchema
from repro.engine import Database, execute_sql


def catalog() -> Catalog:
    return Catalog(
        [
            TableSchema(
                "t1",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("x", "INTEGER"),
                ],
                source_column="s",
            ),
            TableSchema(
                "t2",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("y", "INTEGER"),
                ],
                source_column="s",
            ),
        ]
    )


_row1 = st.tuples(
    st.sampled_from(["a", "b", "c"]), st.one_of(st.none(), st.integers(-3, 6))
)
_row2 = st.tuples(
    st.sampled_from(["a", "b", "c"]), st.one_of(st.none(), st.integers(-3, 6))
)

_atoms = st.sampled_from(
    [
        "t1.x = 2",
        "t1.x <> 0",
        "t1.x > -1",
        "t1.x BETWEEN 0 AND 4",
        "t1.x IS NULL",
        "t1.s IN ('a', 'b')",
        "t1.s NOT IN ('c')",
        "t2.y < 3",
        "t2.y = t1.x",
        "t1.s = t2.s",
        "t1.s <> t2.s",
        "t1.x <= t2.y",
    ]
)

_where = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} AND {b})", inner, inner),
        st.builds(lambda a, b: f"({a} OR {b})", inner, inner),
        st.builds(lambda a: f"NOT ({a})", inner),
    ),
    max_leaves=5,
)


def _both_paths(db: Database, sql: str):
    """Run ``sql`` on both paths; assert they agree; return one result."""
    interpreted = execute_sql(db, sql, compiled=False, lineage=True, cache=False)
    compiled = execute_sql(db, sql, compiled=True, lineage=True, cache=False)
    assert interpreted.rows == compiled.rows, f"row divergence on {sql!r}"
    assert interpreted.lineage == compiled.lineage, f"lineage divergence on {sql!r}"
    return interpreted


def make_property(max_examples: int):
    @settings(max_examples=max_examples, deadline=None, print_blob=True)
    @given(st.lists(_row1, max_size=6), st.lists(_row2, max_size=5), _where)
    def lineage_laws(rows1, rows2, where):
        db = Database(catalog())
        db.insert_many("t1", rows1)
        db.insert_many("t2", rows2)
        base_sources = {r[0] for r in rows1} | {r[0] for r in rows2}

        # Join-union: each parent scan contributes exactly its own source
        # value, so a join row's lineage is the union of the two.
        joined = _both_paths(db, f"SELECT t1.s, t2.s FROM t1, t2 WHERE {where}")
        for row, lineage in zip(joined.rows, joined.lineage):
            expected = frozenset(v for v in row if v is not None)
            assert lineage == expected, (
                f"join lineage {set(lineage)} != parents' union {set(expected)} "
                f"for row {row!r} under {where!r}"
            )
            assert lineage <= base_sources, f"invented source under {where!r}"

        # Projection-invariance: same FROM/WHERE, different select list,
        # identical lineage per row.
        projected = _both_paths(db, f"SELECT t1.x FROM t1, t2 WHERE {where}")
        assert projected.lineage == joined.lineage, (
            f"projection changed lineage under {where!r}"
        )

        # Aggregate-union: the single COUNT(*) row unions every member.
        aggregated = _both_paths(db, f"SELECT COUNT(*) FROM t1, t2 WHERE {where}")
        expected_union = frozenset().union(*joined.lineage) if joined.lineage else frozenset()
        assert aggregated.lineage == [expected_union], (
            f"aggregate lineage {aggregated.lineage} != union "
            f"{set(expected_union)} under {where!r}"
        )

        # Distinct-merge: each surviving row unions its duplicates.
        distinct = _both_paths(db, f"SELECT DISTINCT t1.s FROM t1, t2 WHERE {where}")
        for row, lineage in zip(distinct.rows, distinct.lineage):
            merged = frozenset().union(
                *(
                    lin
                    for r, lin in zip(joined.rows, joined.lineage)
                    if r[0] == row[0]
                )
            )
            assert lineage == merged, (
                f"DISTINCT lineage {set(lineage)} != merged duplicates "
                f"{set(merged)} for {row!r} under {where!r}"
            )

    return lineage_laws


def main() -> int:
    examples = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"fuzzing the lineage algebra with {examples} examples ...")
    make_property(examples)()
    print("OK: every lineage law held on every example")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
