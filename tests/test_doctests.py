"""The README-facing doctests must stay runnable."""

import doctest

import repro


def test_package_docstring_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 5
