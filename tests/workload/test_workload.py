"""Workload generator / queries / sweep tests."""

import pytest

from repro import MemoryBackend, SQLiteBackend
from repro.errors import TracError
from repro.workload.generator import (
    WorkloadConfig,
    generate_workload,
    load_workload,
    source_name,
    workload_catalog,
)
from repro.workload.queries import (
    PAPER_MACHINE_INDEXES,
    paper_queries,
    q1_selective_single,
    q2_nonselective_single,
    q3_selective_join,
    q4_nonselective_join,
    query_machine_indexes,
    query_machines,
)
from repro.workload.sweep import SweepConfig, sweep_points


class TestSourceNames:
    def test_names(self):
        assert source_name(1) == "Tao1"
        assert source_name(100000) == "Tao100000"

    def test_one_based(self):
        with pytest.raises(TracError):
            source_name(0)


class TestWorkloadConfig:
    def test_total_rows(self):
        assert WorkloadConfig(num_sources=100, data_ratio=10).total_rows == 1000

    def test_validation(self):
        with pytest.raises(TracError):
            WorkloadConfig(num_sources=0, data_ratio=10)


class TestGeneration:
    def test_activity_row_count(self):
        data = generate_workload(WorkloadConfig(num_sources=20, data_ratio=5))
        assert len(data.activity) == 100

    def test_rows_per_source_exact(self):
        data = generate_workload(WorkloadConfig(num_sources=10, data_ratio=7))
        from collections import Counter

        counts = Counter(row[0] for row in data.activity)
        assert all(count == 7 for count in counts.values())
        assert len(counts) == 10

    def test_idle_fraction(self):
        data = generate_workload(
            WorkloadConfig(num_sources=10, data_ratio=10, idle_fraction=0.3)
        )
        idle = sum(1 for row in data.activity if row[1] == "idle")
        assert idle == 30

    def test_heartbeat_per_source(self):
        data = generate_workload(WorkloadConfig(num_sources=15, data_ratio=2))
        assert len(data.heartbeat) == 15
        assert len({sid for sid, _ in data.heartbeat}) == 15

    def test_exceptional_sources_far_behind(self):
        config = WorkloadConfig(num_sources=10, data_ratio=2, exceptional_sources=(1, 2))
        data = generate_workload(config)
        by_source = dict(data.heartbeat)
        assert by_source["Tao1"] < config.base_time
        assert by_source["Tao3"] > config.base_time

    def test_routing_one_row_per_source(self):
        data = generate_workload(WorkloadConfig(num_sources=12, data_ratio=2))
        assert len(data.routing) == 12

    def test_routing_maps_query_set_onto_itself(self):
        """The paper's fpr assumption: Routing maps the queried machines
        onto themselves."""
        config = WorkloadConfig(num_sources=200, data_ratio=2)
        indexes = query_machine_indexes(200)
        data = generate_workload(config, indexes)
        query_set = {source_name(i) for i in indexes}
        neighbor_of = {m: n for m, n, _ in data.routing}
        for machine in query_set:
            assert neighbor_of[machine] in query_set

    def test_deterministic_by_seed(self):
        a = generate_workload(WorkloadConfig(num_sources=10, data_ratio=5, seed=4))
        b = generate_workload(WorkloadConfig(num_sources=10, data_ratio=5, seed=4))
        assert a.activity == b.activity

    def test_seed_changes_shuffle(self):
        a = generate_workload(WorkloadConfig(num_sources=10, data_ratio=5, seed=1))
        b = generate_workload(WorkloadConfig(num_sources=10, data_ratio=5, seed=2))
        assert a.activity != b.activity
        assert sorted(a.activity) == sorted(b.activity)


class TestLoading:
    @pytest.mark.parametrize("backend_cls", [MemoryBackend, SQLiteBackend])
    def test_load_into_backend(self, backend_cls):
        config = WorkloadConfig(num_sources=10, data_ratio=3)
        data = generate_workload(config)
        backend = backend_cls(workload_catalog(10))
        load_workload(backend, data)
        assert backend.row_count("activity") == 30
        assert backend.row_count("routing") == 10
        assert backend.row_count("heartbeat") == 10

    def test_load_clears_previous_contents(self):
        config = WorkloadConfig(num_sources=5, data_ratio=2)
        data = generate_workload(config)
        backend = MemoryBackend(workload_catalog(5))
        load_workload(backend, data)
        load_workload(backend, data)
        assert backend.row_count("activity") == 10


class TestQueries:
    def test_paper_indexes_at_full_scale(self):
        assert query_machine_indexes(100000) == list(PAPER_MACHINE_INDEXES)

    def test_clamped_and_topped_up_at_small_scale(self):
        indexes = query_machine_indexes(50)
        assert len(indexes) == 6
        assert all(i <= 50 for i in indexes)
        assert len(set(indexes)) == 6

    def test_tiny_scale(self):
        indexes = query_machine_indexes(4)
        assert indexes == [1, 2, 3, 4]

    def test_query_text_shapes(self):
        machines = query_machines(1000)
        q1 = q1_selective_single(machines)
        q2 = q2_nonselective_single(machines)
        q3 = q3_selective_join(machines)
        q4 = q4_nonselective_join(machines)
        assert "IN (" in q1 and "NOT IN" not in q1
        assert "NOT IN (" in q2
        assert "routing" in q3 and "IN (" in q3
        assert "routing" in q4 and "NOT IN (" in q4

    def test_paper_queries_dictionary(self):
        queries = paper_queries(100)
        assert set(queries) == {"Q1", "Q2", "Q3", "Q4"}

    def test_queries_are_parseable_and_runnable(self):
        config = WorkloadConfig(num_sources=30, data_ratio=4)
        data = generate_workload(config, query_machine_indexes(30))
        backend = MemoryBackend(workload_catalog(30))
        load_workload(backend, data)
        for name, sql in paper_queries(30).items():
            result = backend.execute(sql)
            assert result.scalar() >= 0, name

    def test_q1_counts_idle_rows_of_named_machines(self):
        config = WorkloadConfig(num_sources=30, data_ratio=10, idle_fraction=0.5)
        data = generate_workload(config, query_machine_indexes(30))
        backend = MemoryBackend(workload_catalog(30))
        load_workload(backend, data)
        q1 = paper_queries(30)["Q1"]
        # 6 machines x 5 idle rows each.
        assert backend.execute(q1).scalar() == 30


class TestSweep:
    def test_product_invariant(self):
        for config in sweep_points(SweepConfig(total_rows=100_000)):
            assert config.num_sources * config.data_ratio == 100_000

    def test_ratios_grow_by_factor(self):
        ratios = [c.data_ratio for c in sweep_points(SweepConfig(total_rows=100_000))]
        assert ratios == [10, 100, 1000, 10000]

    def test_min_sources_respected(self):
        points = sweep_points(SweepConfig(total_rows=100_000, min_sources=50))
        assert all(c.num_sources >= 50 for c in points)

    def test_too_small_total_rejected(self):
        with pytest.raises(TracError):
            SweepConfig(total_rows=50)

    def test_exceptional_fraction(self):
        points = sweep_points(
            SweepConfig(total_rows=10_000, exceptional_fraction=0.1)
        )
        first = points[0]
        assert len(first.exceptional_sources) == first.num_sources // 10


class TestSkew:
    def test_zero_skew_is_uniform(self):
        config = WorkloadConfig(num_sources=10, data_ratio=7)
        assert config.rows_per_source() == [7] * 10

    def test_skew_preserves_total(self):
        config = WorkloadConfig(num_sources=50, data_ratio=20, skew=1.0)
        counts = config.rows_per_source()
        assert sum(counts) == config.total_rows
        assert len(counts) == 50

    def test_skew_concentrates_on_low_indexes(self):
        config = WorkloadConfig(num_sources=50, data_ratio=20, skew=1.0)
        counts = config.rows_per_source()
        assert counts[0] > counts[-1]
        assert counts == sorted(counts, reverse=True) or counts[0] >= max(counts[1:])

    def test_every_source_keeps_a_row(self):
        config = WorkloadConfig(num_sources=100, data_ratio=2, skew=2.0)
        assert min(config.rows_per_source()) >= 1

    def test_negative_skew_rejected(self):
        with pytest.raises(TracError):
            WorkloadConfig(num_sources=5, data_ratio=2, skew=-0.5)

    def test_skewed_workload_generates(self):
        config = WorkloadConfig(num_sources=20, data_ratio=10, skew=1.5)
        data = generate_workload(config)
        assert len(data.activity) == config.total_rows
        from collections import Counter

        counts = Counter(row[0] for row in data.activity)
        assert counts["Tao1"] > counts[f"Tao20"]

    def test_skewed_workload_loads_and_queries(self):
        config = WorkloadConfig(num_sources=30, data_ratio=10, skew=1.0)
        data = generate_workload(config, query_machine_indexes(30))
        backend = MemoryBackend(workload_catalog(30))
        load_workload(backend, data)
        from repro.core.report import RecencyReporter

        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(paper_queries(30)["Q1"])
        assert len(report.relevant_source_ids) == 6
