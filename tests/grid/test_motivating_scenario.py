"""Section 1's motivating scenario, made executable.

A job ``j`` is submitted to machine ``m1``; the scheduler sends it to
``m2``. Depending on sniffer progress the central database shows one of
four states:

1. neither machine has reported anything about ``j``;
2. ``m1`` reported the submission/assignment, ``m2`` nothing yet;
3. ``m2`` reports running ``j`` while ``m1`` has reported nothing;
4. both sides are in.

Recency reporting is what lets a user tell these states apart.
"""

import pytest

from repro import MemoryBackend
from repro.core.report import RecencyReporter
from repro.grid.machine import Machine
from repro.grid.simulator import monitoring_catalog
from repro.grid.sniffer import Sniffer, SnifferConfig


@pytest.fixture
def setup():
    backend = MemoryBackend(monitoring_catalog(["m1", "m2"]))
    m1, m2 = Machine("m1"), Machine("m2")
    s1 = Sniffer(m1, backend, SnifferConfig(lag=0.0))
    s2 = Sniffer(m2, backend, SnifferConfig(lag=0.0))

    # The ground truth: m1 logs submission + assignment at t=1/2; m2 logs
    # the start at t=3.
    m1.log_job_submitted(1.0, "j", "alice")
    m1.log_job_scheduled(2.0, "j", "m2")
    m2.start_job(3.0, "j")
    return backend, s1, s2


def db_state(backend):
    sched = backend.execute(
        "SELECT job_id FROM sched_jobs WHERE sched_machine_id = 'm1'"
    ).rows
    run = backend.execute(
        "SELECT job_id FROM run_jobs WHERE running_machine_id = 'm2'"
    ).rows
    return bool(sched), bool(run)


class TestFourStates:
    def test_state1_neither_reported(self, setup):
        backend, s1, s2 = setup
        assert db_state(backend) == (False, False)

    def test_state2_only_m1_reported(self, setup):
        backend, s1, s2 = setup
        s1.poll(10.0)
        assert db_state(backend) == (True, False)

    def test_state3_only_m2_reported(self, setup):
        """The 'inconsistent' state the paper highlights: the job appears to
        be running despite never having been submitted."""
        backend, s1, s2 = setup
        s2.poll(10.0)
        assert db_state(backend) == (False, True)

    def test_state4_both_reported(self, setup):
        backend, s1, s2 = setup
        s1.poll(10.0)
        s2.poll(10.0)
        assert db_state(backend) == (True, True)


class TestRecencyDisambiguates:
    def test_state3_report_shows_m1_stale(self, setup):
        """In state 3 a user sees j running with no submission record; the
        recency report reveals that m2 reported in more recently than m1."""
        backend, s1, s2 = setup
        # m1's sniffer loaded only a very early heartbeat; m2 is current.
        backend.upsert_heartbeat("m1", 0.5)
        s2.poll(10.0)

        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(
            "SELECT R.running_machine_id FROM run_jobs R WHERE R.job_id = 'j'"
        )
        assert report.result.rows == [("m2",)]
        recency = {s.source_id: s.recency for s in report.normal_sources}
        recency.update({s.source_id: s.recency for s in report.exceptional_sources})
        assert recency["m2"] > recency["m1"]

    def test_min_recency_gives_consistent_prefix(self, setup):
        """Events before the minimum recency timestamp are guaranteed to
        have been reported by every relevant source (Section 4.3)."""
        backend, s1, s2 = setup
        s1.poll(10.0)
        s2.poll(10.0)
        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(
            "SELECT R.running_machine_id FROM run_jobs R WHERE R.job_id = 'j'"
        )
        minimum = report.statistics.least_recent.recency
        # Every log record at or before `minimum` is in the database.
        for machine, sniffer in (("m1", s1), ("m2", s2)):
            for event in sniffer.machine.log:
                if event.timestamp <= minimum:
                    assert sniffer.offset >= 1
