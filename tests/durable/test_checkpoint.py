"""Checkpoints: atomic writes, fall-back on corruption, artifact pruning."""

import json
import os

import pytest

from repro.durable.checkpoint import (
    checkpoint_path,
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_artifacts,
    write_checkpoint,
)
from repro.durable.wal import wal_path
from repro.errors import DurabilityError


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path)
        path = write_checkpoint(directory, 3, {"now": 42.0})
        payload = load_checkpoint(path)
        assert payload["epoch"] == 3 and payload["state"] == {"now": 42.0}

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_checkpoint(str(tmp_path), 1, {"a": 1})
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DurabilityError):
            load_checkpoint(str(tmp_path / "absent.json"))

    def test_junk_json_raises(self, tmp_path):
        path = str(tmp_path / "checkpoint-00000001.json")
        open(path, "w").write("{ not json")
        with pytest.raises(DurabilityError):
            load_checkpoint(path)

    def test_wrong_format_marker_raises(self, tmp_path):
        path = str(tmp_path / "checkpoint-00000001.json")
        json.dump({"format": "other", "epoch": 1, "state": {}}, open(path, "w"))
        with pytest.raises(DurabilityError):
            load_checkpoint(path)


class TestLatestValid:
    def test_newest_valid_wins(self, tmp_path):
        directory = str(tmp_path)
        write_checkpoint(directory, 1, {"n": 1})
        write_checkpoint(directory, 2, {"n": 2})
        epoch, state, invalid = latest_valid_checkpoint(directory)
        assert epoch == 2 and state == {"n": 2} and invalid == []

    def test_corrupt_newest_falls_back(self, tmp_path):
        directory = str(tmp_path)
        write_checkpoint(directory, 1, {"n": 1})
        newest = write_checkpoint(directory, 2, {"n": 2})
        open(newest, "w").write("torn!")
        epoch, state, invalid = latest_valid_checkpoint(directory)
        assert epoch == 1 and state == {"n": 1}
        assert invalid == [newest]

    def test_empty_directory(self, tmp_path):
        epoch, state, invalid = latest_valid_checkpoint(str(tmp_path))
        assert epoch is None and state is None and invalid == []

    def test_listing_ascends(self, tmp_path):
        directory = str(tmp_path)
        for epoch in (5, 2, 9):
            write_checkpoint(directory, epoch, {})
        assert [e for e, _ in list_checkpoints(directory)] == [2, 5, 9]


class TestPrune:
    def test_keeps_newest_chain_and_its_wal(self, tmp_path):
        directory = str(tmp_path)
        for epoch in (1, 2, 3):
            write_checkpoint(directory, epoch, {})
            open(wal_path(directory, epoch), "wb").close()
        removed = prune_artifacts(directory, keep=2)
        assert sorted(os.path.basename(p) for p in removed) == [
            os.path.basename(checkpoint_path(directory, 1)),
            os.path.basename(wal_path(directory, 1)),
        ]
        assert [e for e, _ in list_checkpoints(directory)] == [2, 3]

    def test_nothing_pruned_at_or_below_keep(self, tmp_path):
        directory = str(tmp_path)
        for epoch in (1, 2):
            write_checkpoint(directory, epoch, {})
        assert prune_artifacts(directory, keep=2) == []

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(DurabilityError):
            prune_artifacts(str(tmp_path), keep=0)
