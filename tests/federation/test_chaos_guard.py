"""Tier-1 acceptance: the federation chaos proof must pass.

Runs ``tools/check_federation_degrades.py`` as a subprocess (tools/ is not
a package) with a reduced topology and short phases to keep the suite
fast: 2 shards, 1 killed, ~2s of chaos per phase. The tool asserts the
coordinator never hangs, answers inside its deadline with exactly the dead
shards in ``missing_shards``, and returns to full completeness after
restart and rejoin. Deselect with ``-m "not federation"`` when iterating.
"""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
TOOL = os.path.join(REPO_ROOT, "tools", "check_federation_degrades.py")


@pytest.mark.federation
def test_federation_degrades_not_fails(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    out = tmp_path / "federation_chaos.json"
    completed = subprocess.run(
        [
            sys.executable,
            TOOL,
            "--shards", "2",
            "--kill", "1",
            "--machines", "2",
            "--warmup", "1.0",
            "--chaos", "1.5",
            "--json", str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "OK" in completed.stdout
    doc = json.loads(out.read_text())
    assert doc["failures"] == []
    assert {"healthy", "sigkill", "rejoin", "sigstop", "thaw"} <= set(doc["phases"])
    assert doc["leaked_threads"] <= 0
    assert all(code == 0 for code in doc["shutdown_exit_codes"].values())
