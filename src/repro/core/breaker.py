"""The shared three-state circuit breaker.

Extracted from ``repro.grid.supervisor`` so the sniffer supervision ladder
and the shard-federation coordinator (``repro.federation``) trip the same
breaker: ``threshold`` consecutive failures open it, calls are refused
until ``reset_timeout`` elapses, then a single half-open probe decides
between closing it again and re-opening. The breaker is driven entirely by
an external clock passed to :meth:`CircuitBreaker.allow` — simulation time
for supervisors, wall time for federation RPCs — which keeps it trivially
testable and free of hidden ``time.time()`` calls.
"""

from __future__ import annotations


class CircuitBreaker:
    """The classic three-state breaker, driven by an external clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = ("threshold", "reset_timeout", "state", "consecutive_failures", "opened_at")

    def __init__(self, threshold: int, reset_timeout: float) -> None:
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = float("-inf")

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at ``now`` (may move open→half-open)."""
        if self.state == self.OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or self.consecutive_failures >= self.threshold:
            self.state = self.OPEN
            self.opened_at = now

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, failures={self.consecutive_failures})"
