"""End-to-end integration: recency reports over simulated grid databases.

For several seeds, run the simulator (with lag, failures, partial drains),
then check the reporting guarantees against the brute-force oracle on the
resulting — realistically messy — database state.
"""

import pytest

from repro.core.bruteforce import brute_force_relevant_sources
from repro.core.report import RecencyReporter
from repro.grid import GridSimulator, SimulationConfig
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve

#: Queries over activity/routing only (their columns all carry finite
#: domains, so the oracle is exact).
QUERIES = [
    "SELECT mach_id FROM activity WHERE value = 'idle'",
    "SELECT mach_id FROM activity WHERE mach_id IN ('m1', 'm3') AND value = 'busy'",
    "SELECT mach_id FROM routing WHERE neighbor = 'm2'",
    "SELECT A.mach_id FROM routing R, activity A "
    "WHERE R.mach_id = 'm1' AND R.neighbor = A.mach_id",
    "SELECT A.mach_id FROM routing R, activity A "
    "WHERE R.neighbor = A.mach_id AND A.value = 'idle'",
    "SELECT COUNT(*) FROM activity A WHERE A.mach_id NOT IN ('m2')",
]


@pytest.fixture(params=[11, 22, 33])
def messy_sim(request):
    sim = GridSimulator(
        SimulationConfig(
            num_machines=6,
            seed=request.param,
            job_submit_probability=0.2,
            sniffer_lag_range=(2.0, 12.0),
            machine_failure_probability=0.005,
            machine_recover_probability=0.02,
        )
    )
    sim.run(400)  # deliberately NOT drained: DB lags reality
    return sim


class TestGuaranteesOnSimulatedState:
    def test_completeness_and_minimality(self, messy_sim):
        backend = messy_sim.backend
        reporter = RecencyReporter(backend, create_temp_tables=False)
        for sql in QUERIES:
            resolved = resolve(parse_query(sql), backend.catalog)
            exact = brute_force_relevant_sources(backend.db, resolved)
            report = reporter.report(sql)
            assert report.relevant_source_ids >= exact, sql
            if report.minimal:
                assert report.relevant_source_ids == exact, sql

    def test_report_rows_match_plain_execution(self, messy_sim):
        backend = messy_sim.backend
        reporter = RecencyReporter(backend, create_temp_tables=False)
        for sql in QUERIES:
            report = reporter.report(sql)
            assert sorted(map(tuple, report.result.rows)) == sorted(
                map(tuple, backend.execute(sql).rows)
            ), sql

    def test_recency_values_come_from_heartbeat(self, messy_sim):
        backend = messy_sim.backend
        heartbeats = dict(backend.heartbeat_rows())
        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(QUERIES[0])
        for source in report.normal_sources + report.exceptional_sources:
            assert heartbeats[source.source_id] == source.recency

    def test_min_recency_is_consistent_prefix(self, messy_sim):
        """Section 4.3: every event at or before the minimum recency of the
        relevant sources has been loaded into the database."""
        backend = messy_sim.backend
        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report("SELECT mach_id FROM activity")
        stats = report.statistics
        if stats.least_recent is None:
            pytest.skip("no sources reported yet")
        minimum = stats.least_recent.recency
        for machine_id, sniffer in messy_sim.sniffers.items():
            if machine_id not in report.relevant_source_ids:
                continue
            log_events = list(messy_sim.machines[machine_id].log)
            for position, event in enumerate(log_events):
                if event.timestamp <= minimum:
                    assert position < sniffer.offset, (
                        f"{machine_id}: event at t={event.timestamp} <= "
                        f"min recency {minimum} not yet loaded"
                    )


class TestAggregateQueries:
    """Relevance is a property of FROM/WHERE; aggregates and grouping in
    the select list must not change the relevant set."""

    def test_count_and_plain_agree(self, messy_sim):
        backend = messy_sim.backend
        reporter = RecencyReporter(backend, create_temp_tables=False)
        plain = reporter.report("SELECT mach_id FROM activity WHERE value = 'idle'")
        counted = reporter.report("SELECT COUNT(*) FROM activity A WHERE A.value = 'idle'")
        assert plain.relevant_source_ids == counted.relevant_source_ids

    def test_group_by_report(self, messy_sim):
        backend = messy_sim.backend
        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(
            "SELECT value, COUNT(*) FROM activity GROUP BY value"
        )
        assert report.minimal
        assert report.relevant_source_ids == set(messy_sim.machine_ids)

    def test_order_by_report(self, messy_sim):
        backend = messy_sim.backend
        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(
            "SELECT mach_id FROM activity WHERE value = 'idle' ORDER BY mach_id DESC"
        )
        ids = [r[0] for r in report.result.rows]
        assert ids == sorted(ids, reverse=True)
