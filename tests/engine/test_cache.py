"""Resolved-query cache tests: LRU behaviour and generation invalidation."""

from repro.catalog import Catalog, Column, TableSchema
from repro.engine import Database, execute_sql
from repro.engine.cache import ResolvedQueryCache, configure, get_cache
from repro.obs import instrument as obs
from repro.obs.instrument import QUERY_CACHE_HITS, QUERY_CACHE_MISSES, Telemetry


def schema(name="t"):
    return TableSchema(
        name, [Column("a", "TEXT"), Column("b", "INTEGER")], source_column="a"
    )


Q = "SELECT t.a FROM t WHERE t.b = 1"


class TestResolvedQueryCache:
    def test_miss_then_hit(self):
        cache = ResolvedQueryCache(maxsize=4)
        catalog = Catalog([schema()])
        first = cache.resolve(Q, catalog)
        second = cache.resolve(Q, catalog)
        assert second is first  # the identical resolved object
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1, "maxsize": 4}

    def test_unrelated_table_change_keeps_entry(self):
        cache = ResolvedQueryCache(maxsize=4)
        catalog = Catalog([schema()])
        first = cache.resolve(Q, catalog)
        catalog.add(schema("extra"))  # bumps catalog.generation, not t's
        second = cache.resolve(Q, catalog)
        assert second is first
        assert cache.hits == 1

    def test_referenced_table_change_invalidates(self):
        cache = ResolvedQueryCache(maxsize=4)
        catalog = Catalog([schema()])
        first = cache.resolve(Q, catalog)
        catalog.replace(schema("t"))  # t's schema generation changes
        second = cache.resolve(Q, catalog)
        assert second is not first
        assert cache.misses == 2
        assert len(cache) == 1  # the stale entry was dropped, not kept

    def test_distinct_catalogs_never_collide(self):
        cache = ResolvedQueryCache(maxsize=4)
        a = Catalog([schema()])
        b = Catalog([schema()])  # same tables, different catalog object
        ra = cache.resolve(Q, a)
        rb = cache.resolve(Q, b)
        assert ra is not rb
        assert cache.hits == 0

    def test_lru_eviction_order(self):
        cache = ResolvedQueryCache(maxsize=2)
        catalog = Catalog([schema()])
        q1, q2, q3 = (f"SELECT t.a FROM t WHERE t.b = {i}" for i in (1, 2, 3))
        cache.resolve(q1, catalog)
        cache.resolve(q2, catalog)
        cache.resolve(q1, catalog)  # refresh q1; q2 is now oldest
        cache.resolve(q3, catalog)  # evicts q2
        hits_before = cache.hits
        cache.resolve(q1, catalog)
        cache.resolve(q3, catalog)
        assert cache.hits == hits_before + 2
        misses_before = cache.misses
        cache.resolve(q2, catalog)  # was evicted
        assert cache.misses == misses_before + 1

    def test_maxsize_zero_disables(self):
        cache = ResolvedQueryCache(maxsize=0)
        catalog = Catalog([schema()])
        first = cache.resolve(Q, catalog)
        second = cache.resolve(Q, catalog)
        assert second is not first
        assert len(cache) == 0

    def test_clear_resets_counters(self):
        cache = ResolvedQueryCache(maxsize=4)
        catalog = Catalog([schema()])
        cache.resolve(Q, catalog)
        cache.resolve(Q, catalog)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "size": 0, "maxsize": 4}

    def test_telemetry_counters(self):
        cache = ResolvedQueryCache(maxsize=4)
        catalog = Catalog([schema()])
        tel = Telemetry()
        cache.resolve(Q, catalog, tel)
        cache.resolve(Q, catalog, tel)
        assert tel.metrics.counter(QUERY_CACHE_MISSES).value == 1
        assert tel.metrics.counter(QUERY_CACHE_HITS).value == 1

    def test_disabled_telemetry_not_recorded(self):
        cache = ResolvedQueryCache(maxsize=4)
        catalog = Catalog([schema()])
        cache.resolve(Q, catalog, obs.NULL_TELEMETRY)
        assert cache.misses == 1  # internal counter still works


class TestGlobalCache:
    def test_execute_sql_goes_through_global_cache(self):
        db = Database(Catalog([schema()]))
        db.insert("t", ("x", 1))
        cache = get_cache()
        before = cache.stats()
        execute_sql(db, Q)
        execute_sql(db, Q)
        after = cache.stats()
        assert after["hits"] >= before["hits"] + 1

    def test_configure_replaces_cache(self):
        original = get_cache()
        try:
            fresh = configure(8)
            assert get_cache() is fresh
            assert fresh.maxsize == 8
            assert len(fresh) == 0
        finally:
            configure(original.maxsize)

    def test_cached_execution_matches_uncached(self):
        db = Database(Catalog([schema()]))
        db.insert_many("t", [("x", 1), ("y", 2)])
        cached = execute_sql(db, Q)  # second call hits the cache
        again = execute_sql(db, Q)
        uncached = execute_sql(db, Q, cache=False)
        assert cached.rows == again.rows == uncached.rows == [("x",)]
