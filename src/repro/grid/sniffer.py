"""Log sniffers: the monitoring processes that load logs into the DBMS.

Each sniffer tails exactly one machine's log. On each poll it reads every
record flushed before its visibility horizon (``now - lag``), transforms the
records into rows of the monitoring schema, applies them to the backend and
finally advances the machine's Heartbeat entry to the newest event timestamp
it loaded — the simple recency protocol of Section 3.1 ("maintain for each
data source the timestamp of the most recent event reported by that
source"). HEARTBEAT records carry no data but still advance recency, which
is the paper's fix for sources that have nothing to report.

Because each sniffer has its own lag and poll interval, the database is
inconsistent across sources in exactly the way the paper describes.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.backends.base import Backend
from repro.errors import SimulationError
from repro.grid.events import EventKind, LogEvent
from repro.grid.machine import Machine
from repro.obs import instrument as obs

#: Monitoring-schema table names.
ACTIVITY_TABLE = "activity"
ROUTING_TABLE = "routing"
SCHED_TABLE = "sched_jobs"
RUN_TABLE = "run_jobs"


def apply_event(backend: Backend, event: LogEvent) -> None:
    """Transform one log event into monitoring-schema rows on ``backend``.

    Shared by the live sniffer path and WAL replay
    (:mod:`repro.durable.recover`): every operation is a keyed upsert or
    delete, so applying the same event again converges to the same rows.
    """
    source = event.source
    ts = event.timestamp
    if event.kind is EventKind.MACHINE_STATE:
        backend.upsert_rows(
            ACTIVITY_TABLE, ("mach_id",), [(source, event.value("value"), ts)]
        )
    elif event.kind is EventKind.NEIGHBOR_ADDED:
        backend.upsert_rows(
            ROUTING_TABLE,
            ("mach_id", "neighbor"),
            [(source, event.value("neighbor"), ts)],
        )
    elif event.kind is EventKind.JOB_SUBMITTED:
        backend.upsert_rows(
            SCHED_TABLE,
            ("sched_machine_id", "job_id"),
            [(source, event.value("job_id"), None, ts)],
        )
    elif event.kind is EventKind.JOB_SCHEDULED:
        backend.upsert_rows(
            SCHED_TABLE,
            ("sched_machine_id", "job_id"),
            [(source, event.value("job_id"), event.value("remote_machine"), ts)],
        )
    elif event.kind is EventKind.JOB_STARTED:
        backend.upsert_rows(
            RUN_TABLE,
            ("running_machine_id", "job_id"),
            [(source, event.value("job_id"), ts)],
        )
    elif event.kind in (EventKind.JOB_COMPLETED, EventKind.JOB_SUSPENDED):
        backend.delete_rows(
            RUN_TABLE,
            ("running_machine_id", "job_id"),
            [(source, event.value("job_id"))],
        )
    elif event.kind is EventKind.HEARTBEAT:
        pass  # advances recency only
    else:  # pragma: no cover - exhaustiveness guard
        raise SimulationError(f"unknown event kind {event.kind!r}")


class SnifferConfig:
    """Tuning knobs for one sniffer.

    Parameters
    ----------
    poll_interval:
        Seconds between polls of the log.
    lag:
        Propagation delay: a record written at time ``t`` becomes visible to
        the sniffer at ``t + lag``.
    batch_size:
        Maximum records applied per poll (``None`` = unbounded). A small
        batch makes a chatty machine's sniffer fall progressively behind —
        another natural source of staleness.
    recency_protocol:
        How the Heartbeat timestamp is maintained (the two options of
        Section 3.1):

        * ``"last_event"`` (default) — the timestamp of the most recent
          event reported. Requires no cooperation from the application but
          makes a quiet source look out of date (the application's periodic
          HEARTBEAT records compensate).
        * ``"horizon"`` — after a fully drained poll, recency advances to
          the visibility horizon (``now - lag``) even with nothing to
          report. Sound only under this module's write model (events are
          logged immediately with monotone timestamps over reliable
          storage): then no event with a timestamp below the horizon can
          ever appear later. Note it cannot distinguish "alive and quiet"
          from "dead" — a crashed machine's recency keeps advancing, which
          is precisely the risk the paper's heartbeat discussion warns
          about.
    """

    __slots__ = ("poll_interval", "lag", "batch_size", "recency_protocol")

    PROTOCOLS = ("last_event", "horizon")

    def __init__(
        self,
        poll_interval: float = 5.0,
        lag: float = 2.0,
        batch_size: Optional[int] = None,
        recency_protocol: str = "last_event",
    ) -> None:
        if not isinstance(poll_interval, (int, float)) or not math.isfinite(poll_interval):
            raise SimulationError(
                f"poll_interval must be a finite number, got {poll_interval!r}"
            )
        if poll_interval <= 0:
            raise SimulationError(f"poll_interval must be positive, got {poll_interval!r}")
        if not isinstance(lag, (int, float)) or not math.isfinite(lag):
            raise SimulationError(f"lag must be a finite number, got {lag!r}")
        if lag < 0:
            raise SimulationError(f"lag cannot be negative, got {lag!r}")
        if batch_size is not None and batch_size <= 0:
            raise SimulationError("batch_size must be positive when given")
        if recency_protocol not in self.PROTOCOLS:
            raise SimulationError(
                f"unknown recency protocol {recency_protocol!r}; "
                f"expected one of {self.PROTOCOLS}"
            )
        self.poll_interval = poll_interval
        self.lag = lag
        self.batch_size = batch_size
        self.recency_protocol = recency_protocol

    def __repr__(self) -> str:
        return (
            f"SnifferConfig(poll={self.poll_interval}, lag={self.lag}, "
            f"batch={self.batch_size}, protocol={self.recency_protocol})"
        )


class Sniffer:
    """Tails one machine's log into the monitoring database."""

    def __init__(self, machine: Machine, backend: Backend, config: Optional[SnifferConfig] = None) -> None:
        self.machine = machine
        self.backend = backend
        self.config = config or SnifferConfig()
        self.offset = 0
        self.last_poll = float("-inf")
        self.last_loaded_timestamp: Optional[float] = None
        self.failed = False
        self.records_loaded = 0
        self._reported_recency = float("-inf")
        #: Optional durability sink (a ``DurabilityManager``): applied
        #: batches and acknowledged heartbeats are journaled through it
        #: *before* they touch the backend, so recovery can replay them.
        self.journal = None

    def maybe_poll(self, now: float) -> int:
        """Poll if the interval elapsed. Returns records applied."""
        if self.failed:
            return 0
        if now - self.last_poll < self.config.poll_interval:
            return 0
        return self.poll(now)

    def poll(self, now: float) -> int:
        """Read newly visible records and apply them to the database."""
        if self.failed:
            return 0
        self.last_poll = now
        if self.offset > len(self.machine.log):
            # Durable resume: the recovered offset can run ahead of a log
            # that deterministic re-simulation is still regrowing. Nothing
            # new can be visible until the log catches up.
            return 0
        horizon = now - self.config.lag
        events, new_offset = self.machine.log.read_from(self.offset, horizon)
        truncated = False
        if self.config.batch_size is not None and len(events) > self.config.batch_size:
            events = events[: self.config.batch_size]
            new_offset = self.offset + len(events)
            truncated = True
        if self.journal is not None and events:
            self.journal.journal_events(
                self.machine.machine_id, self.offset, new_offset, events, now
            )
        for event in events:
            self._apply(event)
        self.offset = new_offset
        if events:
            self.last_loaded_timestamp = events[-1].timestamp
            self.records_loaded += len(events)

        tel = self.backend._tel()
        if tel.enabled:
            if events:
                # End-to-end sniff->DB lag per event: simulated "now" minus
                # the moment the source logged it.
                obs.record_sniffer_batch(
                    tel,
                    self.machine.machine_id,
                    len(events),
                    now,
                    (event.timestamp for event in events),
                )
            obs.record_sniffer_backlog(tel, self.machine.machine_id, self.backlog)

        recency: Optional[float] = None
        if self.config.recency_protocol == "horizon" and not truncated:
            # Fully drained up to the horizon: everything at or before it
            # that will ever exist has been reported (see SnifferConfig).
            recency = horizon
        elif self.last_loaded_timestamp is not None:
            # The newest loaded event — this batch's, or an earlier batch's
            # whose heartbeat upsert failed mid-poll: publication retries on
            # every poll until the database acknowledges it.
            recency = self.last_loaded_timestamp
        if recency is not None and recency > self._reported_recency:
            if self.journal is not None:
                self.journal.journal_heartbeat(self.machine.machine_id, recency, now)
            self.backend.upsert_heartbeat(self.machine.machine_id, recency)
            self._reported_recency = recency
        return len(events)

    # -- record transformation ------------------------------------------------

    def _apply(self, event: LogEvent) -> None:
        apply_event(self.backend, event)

    # -- failure injection --------------------------------------------------------

    def fail(self) -> None:
        """The sniffer process dies: the source's recency freezes."""
        self.failed = True

    def recover(self) -> None:
        """Restart: resumes from the durable offset (no records lost)."""
        self.failed = False

    @property
    def backlog(self) -> int:
        """Records written to the log but not yet loaded.

        Clamped at zero: after a durable resume the recovered offset can
        briefly exceed the length of a log still being regrown."""
        return max(0, len(self.machine.log) - self.offset)

    def __repr__(self) -> str:
        status = "FAILED" if self.failed else "ok"
        return (
            f"Sniffer({self.machine.machine_id!r}, {status}, "
            f"loaded={self.records_loaded}, backlog={self.backlog})"
        )
