"""Text serialization of log events.

The real systems the paper monitors (Condor daemons) write plain-text event
logs that the quill/sniffer processes parse. This module defines this
repository's on-disk format — one event per line::

    <timestamp> <source> <KIND> key=value key=value ...

e.g. ::

    1142431205.000000 m1 MACHINE_STATE value=idle
    1142431265.000000 m1 JOB_SCHEDULED job_id=j17 remote_machine=m4

Values are percent-encoded so they may contain spaces, ``=`` and newlines;
keys are bare identifiers. Lines starting with ``#`` are comments. The
format round-trips exactly (``parse_line(format_line(e)) == e``), which the
property tests enforce.
"""

from __future__ import annotations

from typing import Iterable, List
from urllib.parse import quote, unquote

from repro.errors import SimulationError
from repro.grid.events import EventKind, LogEvent

_KIND_BY_NAME = {kind.name: kind for kind in EventKind}


def format_line(event: LogEvent) -> str:
    """Serialize one event to its text line (no trailing newline)."""
    parts = [f"{event.timestamp:.6f}", _encode(event.source), event.kind.name]
    for key in sorted(event.payload):
        value = event.payload[key]
        if not isinstance(value, str):
            raise SimulationError(
                f"payload {key!r} of {event.kind.name} is {type(value).__name__}; "
                "the text log format carries strings only"
            )
        parts.append(f"{key}={_encode(value)}")
    return " ".join(parts)


def parse_line(line: str, line_number: int = 0) -> LogEvent:
    """Parse one text line back into a :class:`LogEvent`.

    Raises
    ------
    SimulationError
        For malformed lines, unknown event kinds or bad payload syntax.
    """
    fields = line.strip().split(" ")
    if len(fields) < 3:
        raise SimulationError(f"line {line_number}: expected at least 3 fields: {line!r}")
    try:
        timestamp = float(fields[0])
    except ValueError as exc:
        raise SimulationError(f"line {line_number}: bad timestamp {fields[0]!r}") from exc
    source = _decode(fields[1])
    kind_name = fields[2]
    if kind_name not in _KIND_BY_NAME:
        raise SimulationError(f"line {line_number}: unknown event kind {kind_name!r}")
    payload = {}
    for field in fields[3:]:
        if not field:
            continue
        key, sep, raw = field.partition("=")
        if not sep or not key:
            raise SimulationError(f"line {line_number}: bad payload field {field!r}")
        payload[key] = _decode(raw)
    return LogEvent(timestamp, source, _KIND_BY_NAME[kind_name], payload)


def format_log(events: Iterable[LogEvent]) -> str:
    """Serialize a sequence of events, one line each, with a header."""
    lines = ["# trac-log v1"]
    lines.extend(format_line(event) for event in events)
    return "\n".join(lines) + "\n"


def parse_log(text: str) -> List[LogEvent]:
    """Parse a whole log document (skipping comments and blank lines)."""
    events: List[LogEvent] = []
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        events.append(parse_line(stripped, number))
    return events


def _encode(value: str) -> str:
    return quote(value, safe="")


def _decode(value: str) -> str:
    return unquote(value)
