"""Split-identity: federated report == single-process report over the union.

The acceptance criterion for the federation layer: over N healthy shards,
the coordinator's :class:`FederatedRecencyReport` must agree with a
single-process :class:`RecencyReporter` run against one backend holding the
union of the same rows — the same relevant-source set, the same
normal/exceptional split, the same bound of inconsistency. The guard-aware
fragment protocol makes this true by construction (plan once over the union
catalog, OR guard verdicts across shards, one global z-score split); this
test is the check that the construction holds.
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.report import RecencyReporter
from repro.federation import FederationCoordinator, ShardRegistry, ShardServer
from repro.grid.simulator import SimulationConfig, monitoring_catalog

QUERIES = [
    "SELECT * FROM activity WHERE value = 'busy'",
    "SELECT * FROM activity",
    "SELECT r.mach_id FROM routing r WHERE r.neighbor = 'm2'",
    (
        "SELECT s.job_id FROM sched_jobs s, run_jobs r "
        "WHERE s.job_id = r.job_id AND s.remote_machine_id = 'm3'"
    ),
    # Unsatisfiable: value is constrained to {'idle', 'busy'}.
    "SELECT * FROM activity WHERE value = 'on-fire'",
]


@pytest.fixture(scope="module")
def federation():
    """Three settled shards plus a union oracle backend mirroring their rows."""
    shards = []
    for k in range(3):
        config = SimulationConfig(
            num_machines=2, seed=11 + k, machine_id_start=k * 2 + 1
        )
        shard = ShardServer(f"s{k}", config)
        shard.server.start()
        with shard._lock:
            for _ in range(120):
                shard.sim.step()
        shards.append(shard)

    registry = ShardRegistry()
    for shard in shards:
        registry.register(shard.host, shard.port)

    union = MemoryBackend(monitoring_catalog(registry.machines()))
    for shard in shards:
        backend = shard.sim.backend
        with shard._lock:
            for schema in backend.catalog.monitored_tables():
                rows = backend.execute(f"SELECT * FROM {schema.name}").rows
                union.insert_rows(schema.name, rows)
            for source_id, recency in backend.heartbeat_rows():
                union.upsert_heartbeat(source_id, recency)

    try:
        yield registry, union
    finally:
        for shard in shards:
            shard.close()


@pytest.mark.parametrize("sql", QUERIES)
@pytest.mark.parametrize("method", ["focused", "naive"])
def test_federated_report_is_split_identical(federation, sql, method):
    registry, union = federation
    coordinator = FederationCoordinator(registry, deadline=5.0, attempt_timeout=2.0)
    oracle = RecencyReporter(union, create_temp_tables=False)

    fed = coordinator.report(sql, method=method)
    single = oracle.report(sql, method=method)

    assert fed.complete, f"healthy federation must be complete: {fed.missing_shards}"
    assert fed.relevant_source_ids == single.relevant_source_ids
    assert [s.source_id for s in fed.normal_sources] == [
        s.source_id for s in single.normal_sources
    ]
    assert [s.source_id for s in fed.exceptional_sources] == [
        s.source_id for s in single.exceptional_sources
    ]
    fed_recency = {
        s.source_id: s.recency for s in fed.normal_sources + fed.exceptional_sources
    }
    single_recency = {
        s.source_id: s.recency
        for s in single.normal_sources + single.exceptional_sources
    }
    assert set(fed_recency) == set(single_recency)
    for source_id, recency in single_recency.items():
        assert fed_recency[source_id] == pytest.approx(recency)
    if single.relevant_source_ids:
        assert fed.statistics.inconsistency_bound == pytest.approx(
            single.statistics.inconsistency_bound
        )
    else:
        assert fed.statistics.inconsistency_bound is None


def test_focused_plan_is_shipped_verbatim(federation):
    """The coordinator ships the union-catalog plan's SQL unmodified, so a
    shard executes exactly what the single-process engine would."""
    registry, union = federation
    coordinator = FederationCoordinator(registry, deadline=5.0, attempt_timeout=2.0)
    oracle = RecencyReporter(union, create_temp_tables=False)
    sql = QUERIES[0]
    fed_plan = coordinator.plan_for(sql)
    single_plan = oracle.plan_for(sql)
    assert fed_plan.mode == single_plan.mode
    assert [s.sql for s in fed_plan.subqueries] == [
        s.sql for s in single_plan.subqueries
    ]
    assert [list(s.guards) for s in fed_plan.subqueries] == [
        list(s.guards) for s in single_plan.subqueries
    ]
