"""A small in-memory relational engine.

This engine exists for three reasons:

* it backs the :class:`~repro.backends.memory.MemoryBackend`, so the whole
  TRAC pipeline runs with zero external dependencies;
* it is the ground-truth executor for the brute-force relevance oracle of
  Section 4.1/5.2 (which substitutes a relation by the cross product of its
  column domains — something no SQL backend can do directly); and
* property-based tests cross-check it against SQLite on random data.

It supports exactly the dialect of :mod:`repro.sqlparser`: conjunctive /
disjunctive SPJ queries with optional aggregates, DISTINCT and GROUP BY.
Plans are simple but not naive: single-relation predicates are pushed down,
equi-joins become hash joins, and everything else falls back to filtered
nested loops.
"""

from repro.engine.relation import Relation, Database
from repro.engine.evaluate import execute_query, execute_sql
from repro.engine.explain import explain_query
from repro.engine.cache import ResolvedQueryCache, get_cache, resolve_cached
from repro.engine.compile import compiled_default, set_compiled_default

__all__ = [
    "Relation",
    "Database",
    "execute_query",
    "execute_sql",
    "explain_query",
    "ResolvedQueryCache",
    "get_cache",
    "resolve_cached",
    "compiled_default",
    "set_compiled_default",
]
