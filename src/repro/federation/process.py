"""Launch shard servers as real OS processes (the chaos harness's lever).

In-process :class:`~repro.federation.shard.ShardServer` threads are enough
for most tests, but partial-failure proofs need processes you can SIGKILL
and SIGSTOP. :func:`launch_shard` spawns ``trac shard-serve`` as a
subprocess and parses its announce line::

    SHARD READY id=<shard_id> host=<host> port=<port> machines=<m1,m2,...>

which the CLI prints (and flushes) once the RPC socket is bound.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from typing import List, Optional

from repro.errors import TracError

#: The announce-line prefix ``trac shard-serve`` prints once it is serving.
READY_PREFIX = "SHARD READY "


def format_ready_line(shard_id: str, host: str, port: int, machines: List[str]) -> str:
    """The announce line the shard CLI prints (kept next to its parser)."""
    return (
        f"{READY_PREFIX}id={shard_id} host={host} port={port} "
        f"machines={','.join(machines)}"
    )


def parse_ready_line(line: str) -> dict:
    """Parse an announce line into ``{shard_id, host, port, machines}``."""
    stripped = line.strip()
    if not stripped.startswith(READY_PREFIX):
        raise TracError(f"not a shard announce line: {line!r}")
    fields = {}
    for token in stripped[len(READY_PREFIX):].split():
        if "=" not in token:
            raise TracError(f"malformed announce token {token!r} in {line!r}")
        key, _, value = token.partition("=")
        fields[key] = value
    try:
        return {
            "shard_id": fields["id"],
            "host": fields["host"],
            "port": int(fields["port"]),
            "machines": [m for m in fields["machines"].split(",") if m],
        }
    except (KeyError, ValueError) as exc:
        raise TracError(f"malformed announce line {line!r}: {exc}") from exc


class ShardProcess:
    """A ``trac shard-serve`` subprocess plus its parsed announce fields."""

    def __init__(self, process: subprocess.Popen, announce: dict, argv: List[str]) -> None:
        self.process = process
        self.shard_id: str = announce["shard_id"]
        self.host: str = announce["host"]
        self.port: int = announce["port"]
        self.machines: List[str] = list(announce["machines"])
        self.argv = list(argv)

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL: the crash the WAL exists for."""
        if self.alive():
            self.process.kill()
            self.process.wait(timeout=10.0)

    def freeze(self) -> None:
        """SIGSTOP: the process is alive but will never answer."""
        os.kill(self.process.pid, signal.SIGSTOP)

    def thaw(self) -> None:
        os.kill(self.process.pid, signal.SIGCONT)

    def terminate(self, timeout: float = 10.0) -> int:
        """SIGTERM and wait: exercises the graceful-shutdown path."""
        if self.alive():
            self.process.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=10.0)

    def __repr__(self) -> str:
        state = "alive" if self.alive() else f"exit={self.process.poll()}"
        return f"ShardProcess({self.shard_id!r}, pid={self.pid}, {state})"


def launch_shard(
    shard_id: str,
    machines: int,
    machine_id_start: int = 1,
    seed: int = 0,
    host: str = "127.0.0.1",
    port: int = 0,
    data_dir: Optional[str] = None,
    resume: bool = False,
    fsync: str = "always",
    faults: Optional[str] = None,
    extra_args: Optional[List[str]] = None,
    ready_timeout: float = 30.0,
    repo_src: Optional[str] = None,
) -> ShardProcess:
    """Spawn ``trac shard-serve`` and wait for its announce line.

    Runs ``sys.executable -m repro.cli shard-serve ...`` with ``PYTHONPATH``
    pointing at this checkout's ``src``, so it works from a source tree
    without installation. Raises :class:`TracError` if the shard exits or
    stays silent past ``ready_timeout``.
    """
    if repo_src is None:
        repo_src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "shard-serve",
        "--shard-id",
        shard_id,
        "--machines",
        str(machines),
        "--machine-id-start",
        str(machine_id_start),
        "--seed",
        str(seed),
        "--host",
        host,
        "--port",
        str(port),
        "--fsync",
        fsync,
    ]
    if data_dir is not None:
        argv += ["--data-dir", data_dir]
    if resume:
        argv.append("--resume")
    if faults is not None:
        argv += ["--faults", faults]
    if extra_args:
        argv += list(extra_args)

    env = dict(os.environ)
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + ready_timeout
    lines: List[str] = []
    while True:
        if time.monotonic() > deadline:
            process.kill()
            raise TracError(
                f"shard {shard_id} produced no announce line within "
                f"{ready_timeout:g}s; output so far: {lines!r}"
            )
        line = process.stdout.readline()
        if line == "" and process.poll() is not None:
            raise TracError(
                f"shard {shard_id} exited with {process.returncode} before "
                f"announcing; output: {lines!r}"
            )
        lines.append(line.rstrip("\n"))
        if line.startswith(READY_PREFIX):
            return ShardProcess(process, parse_ready_line(line), argv)
