#!/usr/bin/env python
"""Guard: the serving front end holds its latency SLO under open-loop load.

Two phases against an in-process ``POST /v1/query`` stack (memory backend,
CoW snapshots, real HTTP through :class:`~repro.obs.server.ObservatoryServer`):

1. **SLO phase** — open-loop load at ``--rate`` (default 200 req/s) for
   ``--duration`` (default 10 s); asserts p99 latency ≤ ``--p99-ms``
   (default 100 ms), zero 5xx, zero transport errors, and zero shed
   requests (the server must actually *serve* in-capacity load).
2. **Overload phase** — offered load far above an artificially small
   admission capacity (tight tenant quota + tiny queue); asserts the
   server sheds with 429s (``Retry-After`` present), never 5xx, and —
   the "never hangs" clause — every request resolves and the phase
   finishes within its schedule plus the request timeout.

In the style of the fast-path and incremental guards: prints an aligned
table, exits 0/1, ``--json`` writes the full latency document for the
``serve-load`` CI job to upload as an artifact.

Run: ``PYTHONPATH=src python tools/check_serve_latency.py``
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends.memory import MemoryBackend  # noqa: E402
from repro.obs import instrument as obs  # noqa: E402
from repro.obs.server import ObservatoryServer  # noqa: E402
from repro.serve import QueryService, ServeConfig  # noqa: E402
from repro.serve.loadgen import LoadgenConfig, run_load  # noqa: E402
from repro.workload import (  # noqa: E402
    WorkloadConfig,
    generate_workload,
    load_workload,
    paper_queries,
    query_machine_indexes,
    workload_catalog,
)


def build_backend(num_sources: int, data_ratio: int) -> MemoryBackend:
    backend = MemoryBackend(workload_catalog(num_sources))
    backend.create_tables()
    data = generate_workload(
        WorkloadConfig(num_sources=num_sources, data_ratio=data_ratio),
        query_machine_indexes(num_sources),
    )
    load_workload(backend, data)
    return backend


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate", type=float, default=200.0, help="SLO-phase req/s")
    parser.add_argument("--duration", type=float, default=10.0, help="SLO-phase seconds")
    parser.add_argument("--p99-ms", type=float, default=100.0, help="p99 bound (ms)")
    parser.add_argument("--sources", type=int, default=20, help="workload sources")
    parser.add_argument("--ratio", type=int, default=20, help="rows per source")
    parser.add_argument("--workers", type=int, default=8, help="SLO-phase workers")
    parser.add_argument("--senders", type=int, default=64, help="loadgen sender threads")
    parser.add_argument(
        "--overload-rate", type=float, default=400.0, help="overload-phase req/s"
    )
    parser.add_argument(
        "--overload-duration", type=float, default=3.0, help="overload-phase seconds"
    )
    parser.add_argument("--json", default=None, help="write both phase documents here")
    args = parser.parse_args()

    tel = obs.enable()
    backend = build_backend(args.sources, args.ratio)
    sql = paper_queries(args.sources)["Q1"]
    failures = []
    doc = {}

    # -- phase 1: hold the SLO at the stated rate ---------------------------
    slo_service = QueryService(
        backend,
        ServeConfig(
            workers=args.workers,
            queue_depth=max(64, int(args.rate)),
            # Quotas stay out of this phase's way: it measures latency.
            tenant_rate=args.rate * 4,
            tenant_burst=args.rate * 8,
            max_inflight=max(256, args.senders * 2),
        ),
        telemetry=tel,
    )
    with slo_service, ObservatoryServer(tel, query_service=slo_service) as server:
        result = run_load(
            LoadgenConfig(
                url=server.url + "/v1/query",
                sql=sql,
                rate=args.rate,
                duration=args.duration,
                senders=args.senders,
            )
        )
    slo = result.to_dict()
    doc["slo_phase"] = slo
    p99 = slo["latency_ms"]["p99"]

    if slo["ok"] != slo["requests"]:
        failures.append(
            f"SLO phase: only {slo['ok']}/{slo['requests']} requests served "
            f"(429={slo['rejected_429']}, 5xx={slo['server_errors']}, "
            f"refused={slo['refused']}, timeout={slo['timeouts']}, "
            f"other-transport={slo['transport_errors'] - slo['refused'] - slo['timeouts']})"
        )
    if slo["server_errors"]:
        failures.append(f"SLO phase: {slo['server_errors']} 5xx responses")
    if p99 is None or p99 > args.p99_ms:
        failures.append(f"SLO phase: p99 {p99} ms exceeds the {args.p99_ms:g} ms bound")

    # -- phase 2: overload must shed with 429, never hang -------------------
    overload_service = QueryService(
        backend,
        ServeConfig(
            workers=2,
            queue_depth=8,
            # Capacity is the quota: ~50 req/s admitted of the offered load.
            tenant_rate=50.0,
            tenant_burst=50.0,
            max_inflight=64,
        ),
        telemetry=tel,
    )
    timeout = 10.0
    with overload_service, ObservatoryServer(tel, query_service=overload_service) as server:
        result = run_load(
            LoadgenConfig(
                url=server.url + "/v1/query",
                sql=sql,
                rate=args.overload_rate,
                duration=args.overload_duration,
                senders=args.senders,
                timeout=timeout,
            )
        )
    over = result.to_dict()
    doc["overload_phase"] = over

    if over["rejected_429"] == 0:
        failures.append("overload phase: no 429s — admission control never shed")
    if over["server_errors"]:
        failures.append(f"overload phase: {over['server_errors']} 5xx responses")
    if over["transport_errors"]:
        # "shed" (refused/reset: the server turned the connection away)
        # vs "dead" (timeout: nobody answered) are different failures;
        # name them so a chaos run's verdict is actionable.
        failures.append(
            f"overload phase: {over['transport_errors']} requests never resolved "
            f"(shed/refused={over['refused']}, dead/timeout={over['timeouts']}, "
            f"other={over['transport_errors'] - over['refused'] - over['timeouts']})"
        )
    hang_bound = args.overload_duration + timeout + 5.0
    if over["wall_seconds"] > hang_bound:
        failures.append(
            f"overload phase: took {over['wall_seconds']:.1f}s "
            f"(> {hang_bound:.1f}s) — a shed request hung"
        )

    # -- report -------------------------------------------------------------
    rows = [
        ("phase", "offered", "ok", "429", "5xx", "refused", "timeout", "p50 ms", "p99 ms"),
        (
            "slo",
            f"{args.rate:g}/s x {args.duration:g}s",
            str(slo["ok"]),
            str(slo["rejected_429"]),
            str(slo["server_errors"]),
            str(slo["refused"]),
            str(slo["timeouts"]),
            f"{slo['latency_ms']['p50']:.2f}" if slo["latency_ms"]["p50"] else "-",
            f"{p99:.2f}" if p99 is not None else "-",
        ),
        (
            "overload",
            f"{args.overload_rate:g}/s x {args.overload_duration:g}s",
            str(over["ok"]),
            str(over["rejected_429"]),
            str(over["server_errors"]),
            str(over["refused"]),
            str(over["timeouts"]),
            "-",
            "-",
        ),
    ]
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())

    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"\nwrote {args.json}")

    if failures:
        print("\nFAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: p99 {p99:.2f} ms <= {args.p99_ms:g} ms at {args.rate:g} req/s; "
          f"overload shed {over['rejected_429']} requests with 429")
    return 0


if __name__ == "__main__":
    sys.exit(main())
