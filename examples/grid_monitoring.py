#!/usr/bin/env python
"""Grid monitoring end to end: simulate a grid, sniff its logs, query it.

Reproduces the paper's motivating setting (Section 1): a grid of machines
running jobs, each logging locally; sniffers loading those logs into a
central database with per-source lag; an administrator asking questions and
getting recency reports so the answers can be interpreted correctly.

Run:  python examples/grid_monitoring.py
"""

from repro.core import RecencyReporter
from repro.core.statistics import format_interval, format_timestamp
from repro.grid import GridSimulator, SimulationConfig


def main() -> None:
    config = SimulationConfig(
        num_machines=12,
        seed=2006,
        job_submit_probability=0.15,
        heartbeat_interval=20.0,
        sniffer_poll_interval_range=(3.0, 12.0),
        sniffer_lag_range=(1.0, 15.0),
        machine_failure_probability=0.002,
        machine_recover_probability=0.0,
    )
    sim = GridSimulator(config)

    print(f"Simulating {config.num_machines} machines for 10 minutes...")
    alice_job = sim.submit_job("alice", "m1", duration=90.0)
    sim.run(600)

    print(f"\nGround truth after {sim.now:.0f}s:")
    print(f"  jobs submitted : {len(sim.all_jobs)}")
    completed = sum(1 for job in sim.all_jobs if not job.is_active)
    print(f"  jobs completed : {completed}")
    failed = [m for m in sim.machines.values() if m.failed]
    print(f"  failed machines: {[m.machine_id for m in failed] or 'none'}")
    backlog = {s.machine.machine_id: s.backlog for s in sim.sniffers.values() if s.backlog}
    print(f"  sniffer backlog: {backlog or 'all caught up'}")

    reporter = RecencyReporter(sim.backend, create_temp_tables=False)

    print("\n--- Query 1: which machines are idle right now (per the DB)? ---")
    report = reporter.report("SELECT mach_id FROM activity WHERE value = 'idle'")
    print(f"  answer  : {sorted(r[0] for r in report.result.rows)}")
    stats = report.statistics
    if stats.least_recent is not None:
        print(
            f"  caveat  : least recent source is {stats.least_recent.source_id} "
            f"({format_timestamp(stats.least_recent.recency)}); "
            f"bound of inconsistency {format_interval(stats.inconsistency_bound)}"
        )
    if report.exceptional_sources:
        names = [s.source_id for s in report.exceptional_sources]
        print(f"  warning : exceptionally stale sources: {names}")

    print(f"\n--- Query 2: where is alice's job {alice_job.job_id}? ---")
    report = reporter.report(
        "SELECT R.running_machine_id FROM run_jobs R "
        f"WHERE R.job_id = '{alice_job.job_id}'"
    )
    if report.result.rows:
        print(f"  the DB says it is running on {report.result.rows[0][0]}")
    else:
        print("  the DB has no running record (finished, or not yet loaded)")
    print(f"  truth: state={alice_job.state.value}, ran on {alice_job.remote_machine}")
    print(f"  relevant sources: {len(report.relevant_source_ids)} (any machine could run it)")

    print("\n--- Query 3: jobs scheduled by m1 but not visibly running ---")
    report = reporter.report(
        "SELECT S.job_id, S.remote_machine_id FROM sched_jobs S "
        "WHERE S.sched_machine_id = 'm1'"
    )
    print(f"  m1 has scheduled {len(report.result.rows)} jobs (per the DB)")
    print(f"  relevant sources: {sorted(report.relevant_source_ids)}")
    print(f"  provably minimal: {report.minimal}")

    print("\n--- Query 4: what do m3's neighbors report? (join) ---")
    report = reporter.report(
        "SELECT A.mach_id, A.value FROM routing R, activity A "
        "WHERE R.mach_id = 'm3' AND R.neighbor = A.mach_id"
    )
    for mach, value in sorted(report.result.rows):
        print(f"  {mach}: {value}")
    print(f"  relevant sources: {sorted(report.relevant_source_ids)}")
    for sub in report.plan.subqueries:
        flavour = "minimal" if sub.minimal else "upper bound"
        print(f"    via {sub.binding_key} ({flavour}): {sub.sql}")

    print("\n--- The value of recency reporting ---")
    print("Without it, every one of these answers silently reflects whatever")
    print("fraction of the logs happened to be loaded. With it, each answer")
    print("carries exactly the sources whose lag could change it.")


if __name__ == "__main__":
    main()
