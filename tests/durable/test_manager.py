"""DurabilityManager integration: durable runs, crash-resume, checkpoints.

The heavyweight proof (SIGKILL at randomized points) lives in
``tools/crash_matrix.py`` / ``test_crash_matrix.py``; these tests cover
the same invariants in-process, where failures are easy to debug.
"""

import os

import pytest

from repro.backends.memory import MemoryBackend
from repro.durable import DurabilityManager, DurabilityPolicy, recover
from repro.durable.wal import wal_path
from repro.errors import DurabilityError
from repro.faults import FaultPlan
from repro.grid.simulator import GridSimulator, SimulationConfig, monitoring_catalog

SEED = 3
MACHINES = 4


def make_manager(directory, resume=False, checkpoint_interval=25.0, **kwargs):
    policy = DurabilityPolicy(fsync="always", checkpoint_interval=checkpoint_interval)
    return DurabilityManager(str(directory), policy=policy, resume=resume, **kwargs)


def make_sim(durability=None, machines=MACHINES, seed=SEED):
    return GridSimulator(
        SimulationConfig(num_machines=machines, seed=seed), durability=durability
    )


def database_state(backend, catalog):
    state = {
        schema.name: sorted(backend.execute(f"SELECT * FROM {schema.name}").rows)
        for schema in catalog.monitored_tables()
    }
    state["heartbeat"] = sorted(backend.heartbeat_rows())
    return state


def oracle_state(duration, machines=MACHINES, seed=SEED):
    sim = make_sim(machines=machines, seed=seed)
    sim.run(duration)
    return database_state(sim.backend, sim.catalog)


class TestDurableRun:
    def test_journaling_does_not_perturb_the_simulation(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(120.0)
        manager.close(sim.now)
        assert database_state(sim.backend, sim.catalog) == oracle_state(120.0)

    def test_recovery_rebuilds_the_live_database(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(120.0)
        manager.close(sim.now, final_checkpoint=False)
        fresh = MemoryBackend(monitoring_catalog(sim.machine_ids))
        recover(str(tmp_path), backend=fresh)
        assert database_state(fresh, sim.catalog) == database_state(
            sim.backend, sim.catalog
        )

    def test_acked_watermarks_under_fsync_always(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(60.0)
        acked = manager.acked()
        # Every journaled record was fsynced, so acked == journaled.
        assert acked["offsets"] == manager._journaled_offsets
        assert acked["recency"] == manager._journaled_recency
        assert sum(acked["offsets"].values()) > 0
        manager.close(sim.now)


class TestCrashResume:
    def crash_then_resume(self, tmp_path, crash_at, total, checkpoint_interval=25.0):
        manager = make_manager(tmp_path, checkpoint_interval=checkpoint_interval)
        sim = make_sim(durability=manager)
        sim.run(crash_at)
        # Crash: no close(), no final checkpoint. fsync="always" means the
        # WAL already holds everything, exactly as after a SIGKILL.
        del sim, manager
        resumed_manager = make_manager(
            tmp_path, resume=True, checkpoint_interval=checkpoint_interval
        )
        resumed = make_sim(durability=resumed_manager)
        resumed.run(total - resumed.now)
        resumed_manager.close(resumed.now)
        return resumed, resumed_manager

    def test_resume_after_checkpoint_matches_oracle(self, tmp_path):
        resumed, manager = self.crash_then_resume(tmp_path, crash_at=80.0, total=160.0)
        assert resumed.now == pytest.approx(160.0)
        assert manager.recovered is not None and manager.recovered.has_checkpoint
        assert database_state(resumed.backend, resumed.catalog) == oracle_state(160.0)

    def test_wal_only_resume_matches_oracle(self, tmp_path):
        # Crash before the first checkpoint: recovery has only the WAL and
        # the simulator deterministically regrows from t=0.
        resumed, manager = self.crash_then_resume(
            tmp_path, crash_at=40.0, total=120.0, checkpoint_interval=10_000.0
        )
        assert manager.recovered is not None and not manager.recovered.has_checkpoint
        assert database_state(resumed.backend, resumed.catalog) == oracle_state(120.0)

    def test_double_crash_matches_oracle(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(60.0)
        del sim, manager
        second = make_manager(tmp_path, resume=True)
        sim2 = make_sim(durability=second)
        sim2.run(110.0 - sim2.now)
        del sim2, second
        third = make_manager(tmp_path, resume=True)
        sim3 = make_sim(durability=third)
        sim3.run(180.0 - sim3.now)
        third.close(sim3.now)
        assert database_state(sim3.backend, sim3.catalog) == oracle_state(180.0)

    def test_machine_set_mismatch_refuses_resume(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(60.0)
        manager.close(sim.now)
        with pytest.raises(DurabilityError, match="covers machines"):
            make_sim(durability=make_manager(tmp_path, resume=True), machines=MACHINES + 2)

    def test_saved_config_round_trips(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(60.0)
        manager.close(sim.now)
        saved = make_manager(tmp_path, resume=True).saved_config()
        assert saved is not None
        assert SimulationConfig.from_dict(saved).to_dict() == sim.config.to_dict()

    def test_fresh_start_wipes_previous_artifacts(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(60.0)
        manager.close(sim.now)
        assert manager.epoch > 0
        second = make_manager(tmp_path)  # resume=False
        fresh_sim = make_sim(durability=second)
        names = sorted(
            n for n in os.listdir(tmp_path) if n.endswith((".wal", ".json"))
        )
        assert names == [os.path.basename(wal_path(str(tmp_path), 0))]
        fresh_sim.run(1.0)
        second.close(fresh_sim.now, final_checkpoint=False)


class TestCheckpointing:
    def test_maybe_checkpoint_cadence(self, tmp_path):
        manager = make_manager(tmp_path, checkpoint_interval=30.0)
        sim = make_sim(durability=manager)
        # GridSimulator drives maybe_checkpoint from step(); with a 30s
        # interval and the first call only baselining, 100s yields 2-3.
        sim.run(100.0)
        assert 2 <= manager.checkpoints_written <= 3
        assert manager.epoch == manager.checkpoints_written
        assert os.path.exists(wal_path(str(tmp_path), manager.epoch))
        manager.close(sim.now)

    def test_explicit_state_checkpoint_without_simulator(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        assert manager.checkpoint(10.0, state={"marker": 1}) is True
        assert manager.epoch == 1 and manager.checkpoints_written == 1
        recovered = recover(str(tmp_path))
        assert recovered.state == {"marker": 1}
        manager.close()

    def test_checkpoint_failure_is_survivable(self, tmp_path):
        plan = FaultPlan().durability_error(op="checkpoint", probability=1.0)
        manager = make_manager(tmp_path, fault_plan=plan)
        sim = make_sim(durability=manager)
        sim.run(100.0)
        assert manager.checkpoints_written == 0
        assert manager.checkpoint_failures >= 2
        assert manager.epoch == 0  # never rotated
        manager.close(sim.now, final_checkpoint=False)
        # The unrotated WAL still recovers the whole run.
        fresh = MemoryBackend(monitoring_catalog(sim.machine_ids))
        recover(str(tmp_path), backend=fresh)
        assert database_state(fresh, sim.catalog) == database_state(
            sim.backend, sim.catalog
        )

    def test_stats_shape(self, tmp_path):
        manager = make_manager(tmp_path)
        sim = make_sim(durability=manager)
        sim.run(60.0)
        manager.close(sim.now)
        stats = manager.stats()
        assert stats["wal_records"] > 0
        assert stats["wal_syncs"] > 0
        assert stats["checkpoints_written"] == stats["epoch"]
        assert "recovered" not in stats
