"""Acceptance: the kill-recovery matrix survives >= 10 randomized SIGKILLs.

This drives ``tools/crash_matrix.py`` for real — child simulators are
spawned as subprocesses and SIGKILLed mid-run — and asserts its three
durability invariants end-to-end: nothing fsync-acknowledged is lost,
watermarks never regress, and the survivor's database equals a
never-crashed oracle.
"""

import importlib.util
import os

import pytest

_TOOL = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "tools", "crash_matrix.py"
)


def load_tool():
    spec = importlib.util.spec_from_file_location("crash_matrix", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tool():
    return load_tool()


def test_survives_ten_randomized_sigkills(tool, tmp_path):
    argv = [
        "--kills", "10",
        "--seed", "2",
        "--machines", "5",
        "--duration", "180",
        "--data-dir", str(tmp_path),
    ]
    assert tool.main(argv) == 0


class TestInvariantCheckers:
    def test_merge_acked_rejects_offset_regression(self, tool):
        last = {"offsets": {"m1": 5}, "recency": {}}
        with pytest.raises(AssertionError, match="went backwards"):
            tool._merge_acked(last, {"offsets": {"m1": 4}, "recency": {}})

    def test_merge_acked_rejects_recency_regression(self, tool):
        last = {"offsets": {}, "recency": {"m1": 9.0}}
        with pytest.raises(AssertionError, match="went backwards"):
            tool._merge_acked(last, {"offsets": {}, "recency": {"m1": 8.0}})

    def test_merge_acked_folds_advances(self, tool):
        last = {"offsets": {"m1": 5}, "recency": {"m1": 9.0}}
        tool._merge_acked(last, {"offsets": {"m1": 7, "m2": 1}, "recency": {"m1": 11.0}})
        assert last == {"offsets": {"m1": 7, "m2": 1}, "recency": {"m1": 11.0}}

    def test_check_recovered_rejects_lost_events(self, tool):
        last = {"offsets": {"m1": 5}, "recency": {}}
        with pytest.raises(AssertionError, match="LOST acknowledged events"):
            tool._check_recovered(last, {"offsets": {"m1": 3}, "recency": {}})

    def test_check_recovered_rejects_lost_recency(self, tool):
        last = {"offsets": {}, "recency": {"m1": 9.0}}
        with pytest.raises(AssertionError, match="LOST acknowledged recency"):
            tool._check_recovered(last, {"offsets": {}, "recency": {}})

    def test_check_recovered_accepts_superset(self, tool):
        last = {"offsets": {"m1": 5}, "recency": {"m1": 9.0}}
        tool._check_recovered(
            last, {"offsets": {"m1": 6, "m2": 2}, "recency": {"m1": 9.0}}
        )
