"""Resolver tests: binding columns to catalog tables."""

import pytest

from repro.errors import ResolutionError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve


def _where_refs(resolved):
    return ast.column_refs(resolved.query.where)


class TestBindings:
    def test_single_table_binding(self, paper_catalog):
        resolved = resolve(parse_query("SELECT mach_id FROM activity"), paper_catalog)
        assert resolved.is_single_relation
        assert resolved.bindings[0].key == "activity"
        assert resolved.bindings[0].schema.name == "activity"

    def test_alias_binding(self, paper_catalog):
        resolved = resolve(parse_query("SELECT A.mach_id FROM activity A"), paper_catalog)
        assert resolved.bindings[0].key == "a"

    def test_binding_lookup_case_insensitive(self, paper_catalog):
        resolved = resolve(parse_query("SELECT A.mach_id FROM activity A"), paper_catalog)
        assert resolved.binding("A").schema.name == "activity"

    def test_unknown_table(self, paper_catalog):
        with pytest.raises(ResolutionError):
            resolve(parse_query("SELECT x FROM nope"), paper_catalog)

    def test_duplicate_binding_key(self, paper_catalog):
        with pytest.raises(ResolutionError, match="duplicate"):
            resolve(parse_query("SELECT mach_id FROM activity, activity"), paper_catalog)

    def test_self_join_with_aliases_allowed(self, paper_catalog):
        resolved = resolve(
            parse_query(
                "SELECT R1.mach_id FROM routing R1, routing R2 "
                "WHERE R1.neighbor = R2.mach_id"
            ),
            paper_catalog,
        )
        assert [b.key for b in resolved.bindings] == ["r1", "r2"]

    def test_heartbeat_is_resolvable(self, paper_catalog):
        resolved = resolve(
            parse_query("SELECT source_id FROM heartbeat"), paper_catalog
        )
        assert resolved.bindings[0].schema.source_column == "source_id" 


class TestColumnBinding:
    def test_qualified_reference(self, paper_catalog):
        resolved = resolve(
            parse_query("SELECT A.mach_id FROM activity A WHERE A.value = 'idle'"),
            paper_catalog,
        )
        ref = _where_refs(resolved)[0]
        assert ref.binding_key == "a"

    def test_unqualified_unique_reference(self, paper_catalog):
        resolved = resolve(
            parse_query("SELECT mach_id FROM activity WHERE value = 'idle'"),
            paper_catalog,
        )
        ref = _where_refs(resolved)[0]
        assert ref.binding_key == "activity"

    def test_ambiguous_unqualified_reference(self, paper_catalog):
        # mach_id exists in both activity and routing.
        with pytest.raises(ResolutionError, match="ambiguous"):
            resolve(
                parse_query(
                    "SELECT neighbor FROM routing, activity WHERE mach_id = 'm1'"
                ),
                paper_catalog,
            )

    def test_unknown_column(self, paper_catalog):
        with pytest.raises(ResolutionError):
            resolve(parse_query("SELECT nope FROM activity"), paper_catalog)

    def test_unknown_column_via_qualifier(self, paper_catalog):
        with pytest.raises(ResolutionError):
            resolve(parse_query("SELECT A.nope FROM activity A"), paper_catalog)

    def test_unknown_qualifier(self, paper_catalog):
        with pytest.raises(ResolutionError):
            resolve(parse_query("SELECT B.mach_id FROM activity A"), paper_catalog)


class TestSourceFlag:
    def test_source_column_flagged(self, paper_catalog):
        resolved = resolve(
            parse_query("SELECT mach_id FROM activity WHERE mach_id = 'm1'"),
            paper_catalog,
        )
        ref = _where_refs(resolved)[0]
        assert ref.is_source

    def test_regular_column_not_flagged(self, paper_catalog):
        resolved = resolve(
            parse_query("SELECT mach_id FROM activity WHERE value = 'idle'"),
            paper_catalog,
        )
        ref = _where_refs(resolved)[0]
        assert not ref.is_source

    def test_neighbor_is_regular_despite_machine_domain(self, paper_catalog):
        # routing.neighbor holds machine ids but is NOT the source column.
        resolved = resolve(
            parse_query("SELECT mach_id FROM routing WHERE neighbor = 'm3'"),
            paper_catalog,
        )
        ref = _where_refs(resolved)[0]
        assert not ref.is_source

    def test_source_flag_per_binding_in_join(self, paper_catalog):
        resolved = resolve(
            parse_query(
                "SELECT A.mach_id FROM routing R, activity A "
                "WHERE R.neighbor = A.mach_id"
            ),
            paper_catalog,
        )
        refs = {ref.display(): ref for ref in _where_refs(resolved)}
        assert not refs["R.neighbor"].is_source
        assert refs["A.mach_id"].is_source

    def test_select_list_also_resolved(self, paper_catalog):
        resolved = resolve(parse_query("SELECT A.mach_id FROM activity A"), paper_catalog)
        item_ref = resolved.query.select_items[0].expr
        assert item_ref.binding_key == "a"
        assert item_ref.is_source

    def test_equal_after_resolution_regardless_of_qualification(self, paper_catalog):
        r1 = resolve(
            parse_query("SELECT mach_id FROM activity WHERE value = 'idle'"),
            paper_catalog,
        )
        r2 = resolve(
            parse_query("SELECT activity.mach_id FROM activity WHERE activity.value = 'idle'"),
            paper_catalog,
        )
        assert r1.query.where == r2.query.where
