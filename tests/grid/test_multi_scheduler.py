"""Multi-scheduler grids (the P2P flavour of Section 4.1.2's example)."""

import pytest

from repro.core.report import RecencyReporter
from repro.grid import GridSimulator, SimulationConfig


@pytest.fixture
def sim():
    return GridSimulator(
        SimulationConfig(
            num_machines=6,
            seed=21,
            num_schedulers=3,
            job_submit_probability=0.0,
        )
    )


class TestMultipleSchedulers:
    def test_scheduler_machines_are_first_n(self, sim):
        assert set(sim.schedulers) == {"m1", "m2", "m3"}

    def test_submit_to_each_scheduler(self, sim):
        for machine in ("m1", "m2", "m3"):
            job = sim.submit_job("alice", machine, duration=5.0)
            assert job.submit_machine == machine
        sim.run(30)
        assert all(not job.is_active for job in sim.all_jobs)

    def test_random_scheduler_choice(self, sim):
        chosen = {sim.submit_job("bob").submit_machine for _ in range(20)}
        assert chosen <= {"m1", "m2", "m3"}
        assert len(chosen) > 1  # the seeded RNG spreads submissions

    def test_job_ids_unique_across_schedulers(self, sim):
        ids = [sim.submit_job("carol").job_id for _ in range(10)]
        assert len(set(ids)) == 10

    def test_find_job_across_schedulers(self, sim):
        jobs = [sim.submit_job("dave") for _ in range(6)]
        sim.run(10)
        for job in jobs:
            assert sim._find_job(job.job_id) is job

    def test_sched_rows_tagged_by_owning_scheduler(self, sim):
        for machine in ("m1", "m2", "m3"):
            sim.submit_job("erin", machine, duration=5.0)
        sim.run(20)
        sim.drain()
        rows = sim.backend.execute(
            "SELECT sched_machine_id, job_id FROM sched_jobs"
        ).rows
        owners = {owner for owner, _ in rows}
        assert owners == {"m1", "m2", "m3"}

    def test_per_scheduler_query_relevance(self, sim):
        """'What has scheduler m2 scheduled?' is relevant to m2 only."""
        sim.submit_job("frank", "m2", duration=5.0)
        sim.run(20)
        sim.drain()
        reporter = RecencyReporter(sim.backend, create_temp_tables=False)
        report = reporter.report(
            "SELECT S.job_id FROM sched_jobs S WHERE S.sched_machine_id = 'm2'"
        )
        assert report.relevant_source_ids == {"m2"}
        assert report.minimal
