"""Relevance planning for multi-relation queries (Theorem 4, Corollaries
4–6) — including the paper's Section 4.1.2 worked example."""

from repro.core.relevance import build_relevance_plan
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve

Q2 = (
    "SELECT A.mach_id FROM routing R, activity A "
    "WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id"
)


def plan_for(sql, catalog, **kwargs):
    return build_relevance_plan(resolve(parse_query(sql), catalog), **kwargs)


class TestPaperQ2Example:
    def test_one_subquery_per_relation(self, paper_catalog):
        plan = plan_for(Q2, paper_catalog)
        assert plan.mode == "focused"
        assert {s.binding_key for s in plan.subqueries} == {"r", "a"}

    def test_via_routing_is_upper_bound(self, paper_catalog):
        """S(Q2, R): Jrm present, so only Corollary 5's bound applies."""
        plan = plan_for(Q2, paper_catalog)
        via_r = next(s for s in plan.subqueries if s.binding_key == "r")
        assert not via_r.minimal
        assert "regular-column join" in via_r.notes
        # Ps' lands in the main subquery; the A-side Po becomes a guard
        # because nothing links Heartbeat to A once Jrm is dropped.
        assert "trac_h.source_id = 'm1'" in via_r.sql
        assert len(via_r.guards) == 1
        assert "idle" in via_r.guards[0]

    def test_via_activity_is_minimal(self, paper_catalog):
        """S(Q2, A): Pm/Jrm NULL and Pr satisfiable — Theorem 4's semijoin."""
        plan = plan_for(Q2, paper_catalog)
        via_a = next(s for s in plan.subqueries if s.binding_key == "a")
        assert via_a.minimal
        assert "routing r" in via_a.sql
        assert "r.neighbor = trac_h.source_id" in via_a.sql
        assert "r.mach_id = 'm1'" in via_a.sql
        assert via_a.guards == []

    def test_q2_results_match_paper(self, paper_backend):
        """On Table 1/Table 2 data the paper derives S(Q2,R) = {m1} and
        S(Q2,A) = {m3}."""
        from repro.core.report import RecencyReporter

        reporter = RecencyReporter(paper_backend, create_temp_tables=False)
        report = reporter.report(Q2)
        assert report.relevant_source_ids == {"m1", "m3"}
        assert report.result.rows == [("m3",)]


class TestGuards:
    def test_unreferenced_relation_becomes_bare_guard(self, paper_catalog):
        plan = plan_for(
            "SELECT A.mach_id FROM activity A, routing R WHERE A.mach_id = 'm1'",
            paper_catalog,
        )
        via_a = next(s for s in plan.subqueries if s.binding_key == "a")
        assert via_a.guards == ["SELECT 1 FROM routing r LIMIT 1"]

    def test_guard_blocks_when_other_relation_empty(self, paper_catalog):
        """Definition 2 needs an existing tuple in every other relation: with
        Routing empty, nothing is relevant via Activity."""
        from repro import MemoryBackend
        from repro.core.report import RecencyReporter

        backend = MemoryBackend(paper_catalog)
        backend.insert_rows("activity", [("m1", "idle", 1.0)])
        backend.upsert_heartbeat("m1", 10.0)
        backend.upsert_heartbeat("m2", 20.0)
        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(
            "SELECT A.mach_id FROM activity A, routing R WHERE A.mach_id = 'm1'"
        )
        # Via A: guard on routing fails. Via R: Heartbeat x Activity with no
        # retained predicate linking them -> activity guard passes, all
        # sources relevant via R... but R itself projects every heartbeat
        # row filtered by nothing, with activity guard satisfied.
        via_a = next(s for s in report.plan.subqueries if s.binding_key == "a")
        assert any("routing" in g for g in via_a.guards)
        # The via-R subquery has an activity guard that passes, so all
        # heartbeat sources are reported via R.
        assert report.relevant_source_ids == {"m1", "m2"}

    def test_guard_failure_empties_relevant_set(self, paper_catalog):
        from repro import MemoryBackend
        from repro.core.report import RecencyReporter

        backend = MemoryBackend(paper_catalog)
        # Both tables empty; heartbeats exist.
        backend.upsert_heartbeat("m1", 10.0)
        reporter = RecencyReporter(backend, create_temp_tables=False)
        report = reporter.report(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE A.mach_id = 'm1' AND R.neighbor = 'm2'"
        )
        assert report.relevant_source_ids == set()


class TestJsHandling:
    def test_source_to_source_join_is_retained_everywhere(self, paper_catalog):
        plan = plan_for(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE R.mach_id = A.mach_id AND A.value = 'idle'",
            paper_catalog,
        )
        via_a = next(s for s in plan.subqueries if s.binding_key == "a")
        via_r = next(s for s in plan.subqueries if s.binding_key == "r")
        assert via_a.minimal
        assert "r.mach_id = trac_h.source_id" in via_a.sql
        # Via R, A.value='idle' is Po and A.mach_id joins to Heartbeat.
        assert via_r.minimal
        assert "a.mach_id" in via_r.sql and "idle" in via_r.sql

    def test_three_relation_query(self, paper_catalog):
        from repro.catalog import Column, FiniteDomain, TableSchema

        paper_catalog.add(
            TableSchema(
                "load",
                [
                    Column("mach_id", "TEXT", FiniteDomain({"m1", "m2", "m3"})),
                    Column("cpu", "REAL"),
                ],
                source_column="mach_id",
            )
        )
        plan = plan_for(
            "SELECT A.mach_id FROM activity A, routing R, load L "
            "WHERE R.neighbor = A.mach_id AND L.mach_id = A.mach_id "
            "AND L.cpu > 0.5",
            paper_catalog,
        )
        assert {s.binding_key for s in plan.subqueries} == {"a", "r", "l"}
        via_a = next(s for s in plan.subqueries if s.binding_key == "a")
        # Both join predicates keep A's source column: Js twice -> minimal.
        assert via_a.minimal


class TestCorollary6:
    def test_unsat_conjunct_prunes_all_relations(self, paper_catalog):
        plan = plan_for(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE A.value = 'neither' AND R.neighbor = A.mach_id",
            paper_catalog,
        )
        assert plan.mode == "empty"

    def test_pr_unsat_for_one_relation_prunes_conjunct(self, paper_catalog):
        # A.value='idle' AND A.value='busy' is Pr-unsat via A; the whole
        # conjunct can never be satisfied so nothing is relevant via R
        # either.
        plan = plan_for(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE A.value = 'idle' AND A.value = 'busy' "
            "AND R.neighbor = A.mach_id",
            paper_catalog,
        )
        assert plan.mode == "empty"
