"""Staleness SLO tracking: windows, burn rates, breach detection."""

import pytest

from repro.core.slo import LagWindow, StalenessSLO
from repro.errors import TracError


class TestLagWindow:
    def test_running_violation_count_tracks_evictions(self):
        win = LagWindow("m1", threshold=10.0, capacity=3)
        win.record(1.0, 20.0)  # violating
        win.record(2.0, 5.0)
        win.record(3.0, 5.0)
        assert win.violation_fraction == pytest.approx(1 / 3)
        win.record(4.0, 5.0)  # evicts the violating sample
        assert win.violation_fraction == 0.0
        win.record(5.0, 30.0)
        win.record(6.0, 30.0)
        assert win.violation_fraction == pytest.approx(2 / 3)

    def test_latest_and_series(self):
        win = LagWindow("m1", threshold=10.0, capacity=4)
        assert win.latest is None
        for t in range(6):
            win.record(float(t), float(t) * 2)
        assert win.latest == 10.0
        assert win.series() == [(2.0, 4.0), (3.0, 6.0), (4.0, 8.0), (5.0, 10.0)]
        assert win.series(limit=2) == [(4.0, 8.0), (5.0, 10.0)]


class TestStalenessSLO:
    def test_validation(self):
        with pytest.raises(TracError):
            StalenessSLO(target_p95=0.0)
        with pytest.raises(TracError):
            StalenessSLO(target_p95=float("inf"))
        with pytest.raises(TracError):
            StalenessSLO(budget=0.0)
        with pytest.raises(TracError):
            StalenessSLO(budget=1.0)
        with pytest.raises(TracError):
            StalenessSLO(window=0)

    def test_all_within_target_is_ok(self):
        slo = StalenessSLO(target_p95=60.0, budget=0.05, window=100)
        for t in range(50):
            slo.record("m1", float(t), 5.0)
        status = slo.status()
        assert status.ok
        assert status.breached == []
        assert status.worst_burn == 0.0
        source = status.sources[0]
        assert source.source_id == "m1"
        assert source.p95 == pytest.approx(5.0)
        assert not source.breached

    def test_breach_when_budget_spent(self):
        slo = StalenessSLO(target_p95=10.0, budget=0.1, window=100)
        for t in range(90):
            slo.record("m1", float(t), 1.0)
        for t in range(90, 100):
            slo.record("m1", float(t), 50.0)  # 10% violating == budget
        status = slo.status_of("m1")
        assert status.violation_fraction == pytest.approx(0.1)
        assert status.burn == pytest.approx(1.0)
        assert status.breached
        assert slo.breached_sources() == ["m1"]

    def test_burn_below_one_is_not_breached(self):
        slo = StalenessSLO(target_p95=10.0, budget=0.2, window=100)
        for t in range(95):
            slo.record("m1", float(t), 1.0)
        for t in range(95, 100):
            slo.record("m1", float(t), 50.0)  # 5% violating, 20% budget
        status = slo.status_of("m1")
        assert status.burn == pytest.approx(0.25)
        assert not status.breached
        assert slo.breached_sources() == []

    def test_window_eviction_recovers(self):
        slo = StalenessSLO(target_p95=10.0, budget=0.05, window=20)
        for t in range(20):
            slo.record("m1", float(t), 99.0)
        assert slo.breached_sources() == ["m1"]
        for t in range(20, 40):
            slo.record("m1", float(t), 1.0)  # window now all-healthy
        assert slo.breached_sources() == []

    def test_status_of_unknown_source(self):
        assert StalenessSLO().status_of("nope") is None

    def test_multiple_sources_sorted(self):
        slo = StalenessSLO(target_p95=10.0, budget=0.05, window=10)
        slo.record("m2", 0.0, 1.0)
        slo.record("m1", 0.0, 99.0)
        status = slo.status()
        assert [s.source_id for s in status.sources] == ["m1", "m2"]
        assert status.breached == ["m1"]
        assert slo.sources() == ["m1", "m2"]

    def test_series_and_lag_series(self):
        slo = StalenessSLO(window=8)
        slo.record("m1", 1.0, 2.0)
        slo.record("m1", 2.0, 3.0)
        assert slo.series("m1") == [(1.0, 2.0), (2.0, 3.0)]
        assert slo.series("missing") == []
        assert slo.lag_series() == {"m1": [(1.0, 2.0), (2.0, 3.0)]}

    def test_to_dict_is_json_friendly(self):
        import json

        slo = StalenessSLO(target_p95=10.0, budget=0.05, window=4)
        slo.record("m1", 0.0, 99.0)
        doc = slo.status().to_dict()
        json.dumps(doc)  # must not raise
        assert doc["breached"] == ["m1"]
        assert doc["sources"][0]["source"] == "m1"
        assert doc["sources"][0]["breached"] is True
