"""Predicate and projection compilation for the mini engine.

The interpreted evaluator (:mod:`repro.predicates.evaluate`) walks the AST
for every row, re-dispatching on node types and allocating a fresh lookup
closure per tuple. This module lowers a *resolved* expression once per
query into closed-over Python lambdas: column references become captured
``(binding_key, column_index)`` pairs (or a bare row index on the
single-relation push-down path), literals become captured constants, and
the boolean connectives become small closures implementing the same SQL
three-valued logic. Per row, evaluation is then just nested calls — no AST
walk, no dict-of-lookup allocation.

Semantics are intentionally *shared* with the interpreter: the comparison,
LIKE and three-valued helpers are imported from
:mod:`repro.predicates.evaluate` rather than re-implemented, so the
compiled path cannot drift on NULL or mixed-type behaviour. The
interpreter stays as the executable oracle; ``tools/fuzz_engine.py``
differentially checks the two paths (and SQLite) on random queries.

The compiled path is on by default. Set ``TRAC_INTERPRETED=1`` (read at
import) or call :func:`set_compiled_default` to fall back to the
interpreter globally; per-call overrides go through
``execute_query(..., compiled=...)``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.predicates.evaluate import _and3, _compare, _like_regex, _negate3
from repro.sqlparser import ast

#: An intermediate tuple: binding key -> source row (matches evaluate._Env).
Env = Dict[str, Tuple[object, ...]]

#: Maps (binding key, lower-cased column name) -> column index.
IndexMap = Dict[Tuple[str, str], int]

_TruthValue = Optional[bool]

# -- global default ----------------------------------------------------------


def _env_interpreted() -> bool:
    return os.environ.get("TRAC_INTERPRETED", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


_compiled_default = not _env_interpreted()


def compiled_default() -> bool:
    """Whether the executor uses the compiled path when not overridden."""
    return _compiled_default


def set_compiled_default(flag: bool) -> bool:
    """Set the process-wide compiled/interpreted default; returns the old
    value (so callers can restore it)."""
    global _compiled_default
    previous = _compiled_default
    _compiled_default = bool(flag)
    return previous


# -- reference lowering ------------------------------------------------------
#
# A "ref maker" turns a resolved ColumnRef into a value getter over some
# carrier. Two carriers exist: the env dict used by the join pipeline, and a
# bare row tuple used by single-relation push-down scans.


def _env_ref_maker(index_of: IndexMap) -> Callable[[ast.ColumnRef], Callable[[Env], object]]:
    def make(ref: ast.ColumnRef) -> Callable[[Env], object]:
        key = ref.binding_key
        if key is None:
            raise EngineError(f"unresolved column {ref.display()!r}")
        index = index_of[(key, ref.name.lower())]
        return lambda env: env[key][index]

    return make


def _row_ref_maker(
    binding_key: str, index_of: IndexMap
) -> Callable[[ast.ColumnRef], Callable[[Tuple[object, ...]], object]]:
    def make(ref: ast.ColumnRef) -> Callable[[Tuple[object, ...]], object]:
        key = ref.binding_key
        if key is None:
            raise EngineError(f"unresolved column {ref.display()!r}")
        if key != binding_key:
            raise EngineError(
                f"column {ref.display()!r} binds to {key!r}, not the scanned "
                f"relation {binding_key!r}"
            )
        index = index_of[(key, ref.name.lower())]
        return lambda row: row[index]

    return make


# -- scalar compilation ------------------------------------------------------


def _compile_scalar(expr: ast.Expr, ref_maker) -> Callable:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda carrier: value
    if isinstance(expr, ast.ColumnRef):
        return ref_maker(expr)
    raise EngineError(f"cannot evaluate scalar expression {expr!r}")


# -- truth compilation (SQL three-valued logic) ------------------------------


def _in_list_generic(value, literal_values, negated) -> _TruthValue:
    """The interpreter's IN loop for a non-NULL ``value`` (3VL over
    possibly-NULL or boolean literals)."""
    saw_unknown = False
    for literal in literal_values:
        truth = _compare("=", value, literal)
        if truth is True:
            return False if negated else True
        if truth is None:
            saw_unknown = True
    if saw_unknown:
        return None
    return True if negated else False


def _compile_truth(expr: ast.Expr, ref_maker) -> Callable:
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None:
            return lambda carrier: None
        if isinstance(value, bool):
            return lambda carrier: value
        raise EngineError(f"non-boolean literal {value!r} used as a predicate")
    if isinstance(expr, ast.And):
        items = [_compile_truth(item, ref_maker) for item in expr.items]

        def conj(carrier) -> _TruthValue:
            saw_unknown = False
            for item in items:
                truth = item(carrier)
                if truth is False:
                    return False
                if truth is None:
                    saw_unknown = True
            return None if saw_unknown else True

        return conj
    if isinstance(expr, ast.Or):
        items = [_compile_truth(item, ref_maker) for item in expr.items]

        def disj(carrier) -> _TruthValue:
            saw_unknown = False
            for item in items:
                truth = item(carrier)
                if truth is True:
                    return True
                if truth is None:
                    saw_unknown = True
            return None if saw_unknown else False

        return disj
    if isinstance(expr, ast.Not):
        inner = _compile_truth(expr.expr, ref_maker)

        def negation(carrier) -> _TruthValue:
            truth = inner(carrier)
            if truth is None:
                return None
            return not truth

        return negation
    if isinstance(expr, ast.Comparison):
        op = expr.op
        left = _compile_scalar(expr.left, ref_maker)
        right = _compile_scalar(expr.right, ref_maker)
        return lambda carrier: _compare(op, left(carrier), right(carrier))
    if isinstance(expr, ast.InList):
        value_fn = _compile_scalar(expr.expr, ref_maker)
        literal_values = [literal.value for literal in expr.values]
        negated = expr.negated

        if all(v is not None and not isinstance(v, bool) for v in literal_values):
            # Common case: no NULL/boolean literals. ``_compare("=")`` then
            # reduces to Python equality (numbers compare numerically and
            # hash consistently; mixed number/string is plain inequality),
            # so per-row evaluation is one set membership test. Boolean
            # *values* still need the generic loop (True == 1 in Python but
            # not in SQL), hence the isinstance guard below.
            members = frozenset(literal_values)

            def in_set(carrier) -> _TruthValue:
                value = value_fn(carrier)
                if value is None:
                    return None
                if isinstance(value, bool):
                    return _in_list_generic(value, literal_values, negated)
                found = value in members
                return (not found) if negated else found

            return in_set

        def in_list(carrier) -> _TruthValue:
            value = value_fn(carrier)
            if value is None:
                return None
            return _in_list_generic(value, literal_values, negated)

        return in_list
    if isinstance(expr, ast.Between):
        value_fn = _compile_scalar(expr.expr, ref_maker)
        low_fn = _compile_scalar(expr.low, ref_maker)
        high_fn = _compile_scalar(expr.high, ref_maker)
        negated = expr.negated

        def between(carrier) -> _TruthValue:
            value = value_fn(carrier)
            truth = _and3(
                _compare(">=", value, low_fn(carrier)),
                _compare("<=", value, high_fn(carrier)),
            )
            return _negate3(truth) if negated else truth

        return between
    if isinstance(expr, ast.Like):
        value_fn = _compile_scalar(expr.expr, ref_maker)
        regex = _like_regex(expr.pattern)
        negated = expr.negated

        def like(carrier) -> _TruthValue:
            value = value_fn(carrier)
            if value is None or not isinstance(value, str):
                return None
            matched = regex.fullmatch(value) is not None
            return (not matched) if negated else matched

        return like
    if isinstance(expr, ast.IsNull):
        value_fn = _compile_scalar(expr.expr, ref_maker)
        negated = expr.negated

        def is_null(carrier) -> _TruthValue:
            null = value_fn(carrier) is None
            return (not null) if negated else null

        return is_null
    raise EngineError(f"cannot evaluate expression {expr!r} as a predicate")


# -- public entry points -----------------------------------------------------


def compile_scalar(expr: ast.Expr, index_of: IndexMap) -> Callable[[Env], object]:
    """Lower a scalar (literal or resolved column ref) to ``f(env) -> value``."""
    return _compile_scalar(expr, _env_ref_maker(index_of))


def compile_truth(expr: ast.Expr, index_of: IndexMap) -> Callable[[Env], _TruthValue]:
    """Lower a predicate to ``f(env) -> True | False | None`` (SQL 3VL)."""
    return _compile_truth(expr, _env_ref_maker(index_of))


def compile_predicate(expr: ast.Expr, index_of: IndexMap) -> Callable[[Env], bool]:
    """Lower a predicate to ``f(env) -> bool`` with WHERE semantics
    (UNKNOWN collapses to False)."""
    truth = _compile_truth(expr, _env_ref_maker(index_of))
    return lambda env: truth(env) is True


def compile_row_predicate(
    expr: ast.Expr, binding_key: str, index_of: IndexMap
) -> Callable[[Tuple[object, ...]], bool]:
    """Lower a single-relation predicate to ``f(row) -> bool``.

    Used by the push-down scan: every column reference must bind to
    ``binding_key``, so the carrier is the bare row tuple and per-row env
    dict allocation disappears entirely.
    """
    truth = _compile_truth(expr, _row_ref_maker(binding_key, index_of))
    return lambda row: truth(row) is True


def compile_projection(
    exprs: Sequence[ast.Expr], index_of: IndexMap
) -> Callable[[Env], Tuple[object, ...]]:
    """Lower a list of scalar select expressions to ``f(env) -> row``."""
    getters: List[Callable[[Env], object]] = [
        compile_scalar(expr, index_of) for expr in exprs
    ]
    if len(getters) == 1:
        only = getters[0]
        return lambda env: (only(env),)
    return lambda env: tuple(getter(env) for getter in getters)


__all__ = [
    "compiled_default",
    "set_compiled_default",
    "compile_scalar",
    "compile_truth",
    "compile_predicate",
    "compile_row_predicate",
    "compile_projection",
]
