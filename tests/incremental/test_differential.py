"""Differential oracle: incremental reports are byte-identical to from-scratch.

The property drives a randomized interleaving of heartbeats, heartbeat row
inserts, deletes, table clears and recency reports against one backend,
with two reporters attached:

* the *maintained* reporter serves eligible queries through an
  :class:`~repro.incremental.IncrementalMaintainer` with
  ``incremental_verify=True`` (every hit re-runs the from-scratch path in
  the same snapshot and raises on any divergence);
* the *oracle* reporter has no maintainer and always computes from
  scratch.

After every query step — and once more for every query at the end — the
two reports' normal/exceptional splits must compare equal, which for
:class:`~repro.core.statistics.SourceRecency` means exact float equality:
byte-identical, not approximately close.

``tools/fuzz_relevance.py`` runs the same property as a campaign with a
much larger example budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Catalog, Column, FiniteDomain, MemoryBackend, TableSchema
from repro.core.report import RecencyReporter
from repro.incremental import IncrementalMaintainer

MACHINES = tuple(f"m{i}" for i in range(1, 6))

QUERIES = (
    # Streamable: membership is a pure function of the source id.
    "SELECT mach_id FROM activity WHERE mach_id = 'm1'",
    "SELECT mach_id FROM activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'",
    "SELECT mach_id FROM activity WHERE mach_id <> 'm3'",
    "SELECT mach_id FROM activity WHERE mach_id NOT IN ('m2', 'm4')",
    "SELECT mach_id FROM activity WHERE value = 'idle' OR mach_id = 'm2'",
    "SELECT mach_id FROM activity WHERE mach_id LIKE 'm_'",
    "SELECT mach_id FROM activity WHERE mach_id BETWEEN 'm1' AND 'm3'",
    "SELECT mach_id FROM activity",
    # Bypass: joins / join predicates keep the from-scratch path.
    "SELECT a.mach_id FROM activity a, routing r WHERE a.mach_id = r.neighbor",
    "SELECT a.mach_id FROM activity a, routing r "
    "WHERE a.mach_id = r.mach_id AND r.neighbor = 'm2'",
)


def catalog():
    return Catalog(
        [
            TableSchema(
                "activity",
                [
                    Column("mach_id", "TEXT", FiniteDomain(MACHINES)),
                    Column("value", "TEXT", FiniteDomain({"idle", "busy"})),
                ],
                source_column="mach_id",
            ),
            TableSchema(
                "routing",
                [
                    Column("mach_id", "TEXT", FiniteDomain(MACHINES)),
                    Column("neighbor", "TEXT", FiniteDomain(MACHINES)),
                ],
                source_column="mach_id",
            ),
        ]
    )


_sid = st.sampled_from(MACHINES)
_recency = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)

_op = st.one_of(
    st.tuples(st.just("hb"), _sid, _recency),
    st.tuples(st.just("insert"), _sid, _recency),
    st.tuples(st.just("delete"), _sid),
    st.tuples(st.just("query"), st.sampled_from(range(len(QUERIES)))),
    st.tuples(st.just("clear")),
)


def _assert_identical(maintained, oracle, sql):
    assert maintained.split.normal == oracle.split.normal, sql
    assert maintained.split.exceptional == oracle.split.exceptional, sql
    assert maintained.statistics.least_recent == oracle.statistics.least_recent, sql
    assert maintained.statistics.most_recent == oracle.statistics.most_recent, sql


@settings(deadline=None, max_examples=40)
@given(ops=st.lists(_op, max_size=30))
def test_incremental_report_matches_from_scratch_oracle(ops):
    backend = MemoryBackend(catalog())
    backend.insert_rows("activity", [("m1", "idle"), ("m2", "busy"), ("m3", "idle")])
    backend.insert_rows("routing", [("m1", "m2"), ("m3", "m1")])
    maintainer = IncrementalMaintainer(backend)
    maintained = RecencyReporter(
        backend,
        create_temp_tables=False,
        plan_cache_size=32,
        incremental=maintainer,
        incremental_verify=True,
    )
    oracle = RecencyReporter(backend, create_temp_tables=False, plan_cache_size=32)

    for op in ops:
        if op[0] == "hb":
            backend.upsert_heartbeat(op[1], op[2])
        elif op[0] == "insert":
            backend.insert_rows("heartbeat", [(op[1], op[2])])
        elif op[0] == "delete":
            backend.delete_rows("heartbeat", ["source_id"], [(op[1],)])
        elif op[0] == "clear":
            backend.delete_all("heartbeat")
        else:
            sql = QUERIES[op[1]]
            _assert_identical(maintained.report(sql), oracle.report(sql), sql)

    for sql in QUERIES:
        _assert_identical(maintained.report(sql), oracle.report(sql), sql)
