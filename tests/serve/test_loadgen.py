"""The open-loop load generator: schedule math, aggregation, a real run."""

import pytest

from repro.errors import TracError
from repro.obs import Telemetry
from repro.obs.server import ObservatoryServer
from repro.serve import LoadgenConfig, LoadResult, QueryService, ServeConfig, run_load
from repro.serve.loadgen import (
    STATUS_REFUSED,
    STATUS_TIMEOUT,
    _classify_transport,
    percentile,
)

SQL = "SELECT mach_id FROM activity"


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 1.0) == 4.0

    def test_single_observation(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_validation(self):
        with pytest.raises(TracError):
            percentile([], 0.5)
        with pytest.raises(TracError):
            percentile([1.0], 1.5)


class TestLoadgenConfig:
    def test_total_requests(self):
        config = LoadgenConfig("http://x/v1/query", SQL, rate=50.0, duration=2.0)
        assert config.total_requests == 100

    def test_validation(self):
        with pytest.raises(TracError):
            LoadgenConfig("http://x", SQL, rate=0.0)
        with pytest.raises(TracError):
            LoadgenConfig("http://x", SQL, duration=-1.0)
        with pytest.raises(TracError):
            LoadgenConfig("http://x", SQL, senders=0)
        with pytest.raises(TracError):
            LoadgenConfig("http://x", SQL, tenants=())


class TestLoadResult:
    def make(self, statuses, latencies, wall=2.0):
        config = LoadgenConfig("http://x/v1/query", SQL, rate=5.0, duration=2.0)
        return LoadResult(config, statuses, latencies, wall)

    def test_status_classification(self):
        result = self.make([200, 200, 429, 500, 0], [0.01, 0.02])
        assert result.requests == 5
        assert result.ok == 2
        assert result.rejected == 1
        assert result.server_errors == 1
        assert result.transport_errors == 1
        assert result.achieved_rate == pytest.approx(1.0)

    def test_to_dict_shape(self):
        result = self.make([200, 429], [0.010])
        doc = result.to_dict()
        assert doc["ok"] == 1
        assert doc["rejected_429"] == 1
        assert doc["status_counts"] == {"200": 1, "429": 1}
        assert doc["latency_ms"]["p99"] == pytest.approx(10.0)
        assert doc["config"]["rate"] == 5.0

    def test_no_successes_yields_null_latency(self):
        result = self.make([429, 429], [])
        assert result.latency_ms(0.99) is None
        assert result.to_dict()["latency_ms"]["p50"] is None

    def test_shed_vs_dead_are_separate_counts(self):
        # Refused connections (shedding under overload) and timeouts (a
        # dead or wedged server) are different diagnoses; both still roll
        # up into transport_errors for older consumers.
        result = self.make(
            [200, STATUS_REFUSED, STATUS_REFUSED, STATUS_TIMEOUT, 0], [0.01]
        )
        assert result.refused == 2
        assert result.timeouts == 1
        assert result.transport_errors == 4

    def test_to_dict_labels_the_sentinels(self):
        doc = self.make([STATUS_REFUSED, STATUS_TIMEOUT, 0], []).to_dict()
        assert doc["refused"] == 1
        assert doc["timeouts"] == 1
        assert doc["status_counts"] == {
            "refused": 1,
            "timeout": 1,
            "transport_error": 1,
        }


class TestClassifyTransport:
    def test_refused_and_reset_map_to_refused(self):
        import urllib.error

        assert _classify_transport(ConnectionRefusedError()) == STATUS_REFUSED
        assert _classify_transport(ConnectionResetError()) == STATUS_REFUSED
        assert _classify_transport(BrokenPipeError()) == STATUS_REFUSED
        # urllib wraps the real cause in URLError.reason.
        wrapped = urllib.error.URLError(ConnectionRefusedError())
        assert _classify_transport(wrapped) == STATUS_REFUSED

    def test_timeouts_map_to_timeout(self):
        import socket
        import urllib.error

        assert _classify_transport(socket.timeout()) == STATUS_TIMEOUT
        assert _classify_transport(TimeoutError()) == STATUS_TIMEOUT
        wrapped = urllib.error.URLError(socket.timeout())
        assert _classify_transport(wrapped) == STATUS_TIMEOUT

    def test_everything_else_is_generic_transport(self):
        assert _classify_transport(OSError("no route to host")) == 0

    def test_real_refused_connection_is_classified(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        result = run_load(
            LoadgenConfig(
                url=f"http://127.0.0.1:{port}/v1/query",
                sql=SQL,
                rate=10.0,
                duration=0.3,
                timeout=0.5,
            )
        )
        assert result.refused == result.requests
        assert result.timeouts == 0
        assert result.ok == 0


class TestRunLoad:
    def test_against_a_live_server(self, paper_memory_backend):
        tel = Telemetry()
        config = ServeConfig(workers=4, queue_depth=128, tenant_rate=10_000.0,
                             tenant_burst=10_000.0, max_inflight=128)
        with QueryService(paper_memory_backend, config, telemetry=tel) as svc:
            with ObservatoryServer(tel, query_service=svc) as server:
                result = run_load(
                    LoadgenConfig(
                        url=server.url + "/v1/query",
                        sql=SQL,
                        rate=40.0,
                        duration=1.0,
                        tenants=("a", "b"),
                        senders=8,
                    )
                )
            counts = svc.counts()
        assert result.requests == 40
        assert result.ok == 40
        assert result.server_errors == 0
        assert result.transport_errors == 0
        assert counts["ok"] == 40
        assert result.latency_ms(0.99) > 0
        # Both tenants took traffic (round-robin across the schedule).
        status = svc.serving_status()
        assert set(status["tenants"]) == {"a", "b"}

    def test_rejections_are_counted_not_raised(self, paper_memory_backend):
        config = ServeConfig(workers=1, tenant_rate=0.0, tenant_burst=3.0)
        tel = Telemetry()
        with QueryService(paper_memory_backend, config, telemetry=tel) as svc:
            with ObservatoryServer(tel, query_service=svc) as server:
                result = run_load(
                    LoadgenConfig(
                        url=server.url + "/v1/query",
                        sql=SQL,
                        rate=20.0,
                        duration=0.5,
                        senders=4,
                    )
                )
        assert result.ok == 3  # the burst
        assert result.rejected == 7
        assert result.server_errors == 0
