#!/usr/bin/env python
"""Kill-recovery matrix: SIGKILL a durable simulator at random points.

The parent process runs a child simulator (this same file with
``--child``) under ``fsync="always"``, SIGKILLs it after a randomized
number of acknowledged steps, restarts it with ``--resume``, and repeats
for at least ``--kills`` crash points before letting the final incarnation
run to completion.  The protocol is line-oriented on the child's stdout:

* ``TRAC-ACK {json}``       — after every simulation step: the per-source
  offset/recency watermarks the WAL has fsync-acknowledged (what a crash
  is guaranteed not to lose);
* ``TRAC-RECOVERED {json}`` — once per resumed incarnation, after
  recovery: the watermarks the journal actually restored;
* ``TRAC-FINAL {digest}``   — the completed run's database digest.

Checked invariants, per the durability contract (docs/ROBUSTNESS.md):

1. nothing acknowledged is lost — every recovered watermark >= the last
   acked watermark seen before the kill;
2. per-source recency is monotonically non-decreasing across every ack of
   every incarnation;
3. nothing is applied twice and nothing is invented — the final database
   digest equals a never-crashed oracle run of the same seed.

Usage::

    python tools/crash_matrix.py [--kills 10] [--seed 0] [--duration 240]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, SRC)

ACK = "TRAC-ACK "
RECOVERED = "TRAC-RECOVERED "
FINAL = "TRAC-FINAL "


def database_digest(sim) -> str:
    """Stable hash of every monitored table plus the heartbeats."""
    rows = {}
    for schema in sim.catalog.monitored_tables():
        result = sim.backend.execute(f"SELECT * FROM {schema.name}")
        rows[schema.name] = sorted([str(v) for v in row] for row in result.rows)
    rows["heartbeat"] = sorted(
        [sid, f"{recency:.6f}"] for sid, recency in sim.backend.heartbeat_rows()
    )
    blob = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Child: one simulator incarnation that narrates its acknowledged state
# ---------------------------------------------------------------------------


def child_main(args: argparse.Namespace) -> int:
    from repro.durable import DurabilityManager, DurabilityPolicy
    from repro.grid.simulator import GridSimulator, SimulationConfig

    manager = DurabilityManager(
        args.data_dir,
        policy=DurabilityPolicy(
            fsync="always", checkpoint_interval=args.checkpoint_interval
        ),
        resume=args.resume,
    )
    sim = GridSimulator(
        SimulationConfig(num_machines=args.machines, seed=args.seed),
        durability=manager,
    )
    if args.resume:
        _say(RECOVERED + json.dumps(manager.acked(), sort_keys=True))
    while sim.now < args.duration:
        sim.step()
        _say(ACK + json.dumps(manager.acked(), sort_keys=True))
    manager.close(sim.now)
    _say(FINAL + database_digest(sim))
    return 0


def _say(line: str) -> None:
    sys.stdout.write(line + "\n")
    sys.stdout.flush()


# ---------------------------------------------------------------------------
# Parent: the kill matrix
# ---------------------------------------------------------------------------


def _merge_acked(last: dict, acked: dict) -> None:
    """Fold an ack into the running watermarks, asserting monotonicity."""
    for source, offset in acked.get("offsets", {}).items():
        previous = last["offsets"].get(source, 0)
        if offset < previous:
            raise AssertionError(
                f"acked offset went backwards for {source}: {previous} -> {offset}"
            )
        last["offsets"][source] = offset
    for source, recency in acked.get("recency", {}).items():
        previous = last["recency"].get(source)
        if previous is not None and recency < previous:
            raise AssertionError(
                f"acked recency went backwards for {source}: {previous} -> {recency}"
            )
        last["recency"][source] = recency


def _check_recovered(last: dict, recovered: dict) -> None:
    """Invariant 1: recovery restores at least everything acknowledged."""
    for source, offset in last["offsets"].items():
        got = recovered.get("offsets", {}).get(source, 0)
        if got < offset:
            raise AssertionError(
                f"LOST acknowledged events for {source}: acked offset {offset}, "
                f"recovered {got}"
            )
    for source, recency in last["recency"].items():
        got = recovered.get("recency", {}).get(source)
        if got is None or got < recency:
            raise AssertionError(
                f"LOST acknowledged recency for {source}: acked {recency}, "
                f"recovered {got}"
            )


def _spawn(args: argparse.Namespace, data_dir: str, resume: bool) -> subprocess.Popen:
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--child",
        "--data-dir",
        data_dir,
        "--seed",
        str(args.seed),
        "--machines",
        str(args.machines),
        "--duration",
        str(args.duration),
        "--checkpoint-interval",
        str(args.checkpoint_interval),
    ]
    if resume:
        command.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )


def parent_main(args: argparse.Namespace) -> int:
    import random

    rng = random.Random(args.seed * 7919 + 11)
    data_dir = args.data_dir or tempfile.mkdtemp(prefix="crash-matrix-")
    last = {"offsets": {}, "recency": {}}
    kills = 0
    final_digest = None

    incarnation = 0
    while final_digest is None:
        incarnation += 1
        resume = incarnation > 1
        process = _spawn(args, data_dir, resume)
        kill_after = rng.randint(3, 15) if kills < args.kills else None
        acks_seen = 0
        try:
            for line in process.stdout:
                line = line.rstrip("\n")
                if line.startswith(RECOVERED):
                    _check_recovered(last, json.loads(line[len(RECOVERED):]))
                elif line.startswith(ACK):
                    acks_seen += 1
                    _merge_acked(last, json.loads(line[len(ACK):]))
                    if kill_after is not None and acks_seen >= kill_after:
                        os.kill(process.pid, signal.SIGKILL)
                        kills += 1
                        print(
                            f"incarnation {incarnation}: SIGKILL after "
                            f"{acks_seen} acks ({kills}/{args.kills} kills)"
                        )
                        break
                elif line.startswith(FINAL):
                    final_digest = line[len(FINAL):]
        finally:
            process.stdout.close()
            stderr = process.stderr.read()
            process.stderr.close()
            returncode = process.wait()
        if kill_after is None and final_digest is None:
            raise AssertionError(
                f"incarnation {incarnation} exited with {returncode} before "
                f"TRAC-FINAL; stderr:\n{stderr}"
            )
        if incarnation > args.kills + 20:
            raise AssertionError("kill matrix failed to converge")

    print(f"final digest after {kills} kills: {final_digest}")

    # Invariant 3: the oracle never crashed, yet ends identical.
    from repro.grid.simulator import GridSimulator, SimulationConfig

    oracle = GridSimulator(SimulationConfig(num_machines=args.machines, seed=args.seed))
    oracle.run(args.duration)
    oracle_digest = database_digest(oracle)
    if final_digest != oracle_digest:
        raise AssertionError(
            f"survivor diverged from the oracle: {final_digest} != {oracle_digest}"
        )
    print(f"oracle digest matches; {kills} crash points survived")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--data-dir", default=None)
    parser.add_argument("--resume", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--machines", type=int, default=6)
    parser.add_argument("--duration", type=float, default=240.0)
    parser.add_argument("--checkpoint-interval", type=float, default=25.0)
    parser.add_argument("--kills", type=int, default=10)
    args = parser.parse_args(argv)
    if args.child:
        if not args.data_dir:
            parser.error("--child requires --data-dir")
        return child_main(args)
    return parent_main(args)


if __name__ == "__main__":
    sys.exit(main())
