"""Property tests: a damaged journal always yields a prefix, never raises.

The durability contract for :func:`repro.durable.wal.scan_frames` is that
*any* suffix damage — truncation at an arbitrary byte, or a flipped byte
anywhere in the file — shortens the recovered prefix but never corrupts
or reorders it, and never raises.  These are exactly the failure modes a
SIGKILL or a torn page can produce.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durable.wal import FrameWriter, repair_torn_tail, scan_frames

payload_lists = st.lists(
    st.binary(min_size=0, max_size=64), min_size=0, max_size=8
)


def write_journal(path, payloads):
    with FrameWriter(path, fsync="never") as writer:
        for payload in payloads:
            writer.append(payload)


@settings(max_examples=120, deadline=None)
@given(payloads=payload_lists, cut=st.integers(min_value=0, max_value=10_000))
def test_truncation_always_yields_a_prefix(tmp_path_factory, payloads, cut):
    path = str(tmp_path_factory.mktemp("wal") / "j.wal")
    write_journal(path, payloads)
    size = os.path.getsize(path)
    with open(path, "rb+") as fp:
        fp.truncate(min(cut, size))
    scan = scan_frames(path)  # must not raise
    assert scan.payloads == payloads[: len(scan.payloads)]
    if cut >= size:
        assert scan.payloads == payloads and scan.torn is None


@settings(max_examples=120, deadline=None)
@given(
    payloads=payload_lists.filter(bool),
    position=st.integers(min_value=0, max_value=10_000),
    flip=st.integers(min_value=1, max_value=255),
)
def test_single_byte_corruption_always_yields_a_prefix(
    tmp_path_factory, payloads, position, flip
):
    path = str(tmp_path_factory.mktemp("wal") / "j.wal")
    write_journal(path, payloads)
    data = bytearray(open(path, "rb").read())
    position %= len(data)
    data[position] ^= flip
    open(path, "wb").write(bytes(data))
    scan = scan_frames(path)  # must not raise
    assert scan.payloads == payloads[: len(scan.payloads)]


@settings(max_examples=60, deadline=None)
@given(payloads=payload_lists, cut=st.integers(min_value=0, max_value=10_000))
def test_repair_then_append_recovers_cleanly(tmp_path_factory, payloads, cut):
    path = str(tmp_path_factory.mktemp("wal") / "j.wal")
    write_journal(path, payloads)
    with open(path, "rb+") as fp:
        fp.truncate(min(cut, os.path.getsize(path)))
    before = scan_frames(path)
    repair_torn_tail(path, before)
    write_journal(path, [b"appended-after-repair"])
    after = scan_frames(path)
    assert after.torn is None
    assert after.payloads == before.payloads + [b"appended-after-repair"]
