"""Distributed trace context: W3C traceparent inject/extract.

Satellite contract: ``extract_context`` NEVER raises — arbitrary garbage
headers yield ``None`` — and every valid context survives an
inject→extract round trip bit-for-bit. Both are hypothesis properties;
the example-based tests pin the W3C framing details (version field,
zero-id rejection, case-insensitive header lookup) and the tracer's
parent-precedence rules.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import (
    TRACEPARENT_HEADER,
    SpanContext,
    Tracer,
    extract_context,
    inject_context,
)

trace_ids = st.integers(min_value=1, max_value=(1 << 128) - 1)
span_ids = st.integers(min_value=1, max_value=(1 << 64) - 1)


class TestSpanContext:
    def test_traceparent_format(self):
        ctx = SpanContext(trace_id=0xAB, span_id=0xCD, sampled=True)
        assert ctx.to_traceparent() == (
            "00-000000000000000000000000000000ab-00000000000000cd-01"
        )

    def test_unsampled_flag(self):
        ctx = SpanContext(trace_id=1, span_id=1, sampled=False)
        assert ctx.to_traceparent().endswith("-00")
        parsed = SpanContext.from_traceparent(ctx.to_traceparent())
        assert parsed is not None and not parsed.sampled

    def test_rejects_zero_ids(self):
        zero_trace = "00-" + "0" * 32 + "-00000000000000cd-01"
        zero_span = "00-" + "a" * 32 + "-" + "0" * 16 + "-01"
        assert SpanContext.from_traceparent(zero_trace) is None
        assert SpanContext.from_traceparent(zero_span) is None

    def test_rejects_version_ff(self):
        header = "ff-" + "a" * 32 + "-" + "b" * 16 + "-01"
        assert SpanContext.from_traceparent(header) is None

    def test_accepts_future_versions(self):
        header = "cc-" + "a" * 32 + "-" + "b" * 16 + "-01"
        parsed = SpanContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id_hex == "a" * 32


class TestCarriers:
    def test_inject_extract_round_trip(self):
        ctx = SpanContext(trace_id=0xDEADBEEF, span_id=0x1234)
        carrier = {}
        inject_context(ctx, carrier)
        assert TRACEPARENT_HEADER in carrier
        assert extract_context(carrier) == ctx

    def test_extract_is_case_insensitive(self):
        ctx = SpanContext(trace_id=7, span_id=9)
        for key in ("Traceparent", "TRACEPARENT", "traceparent"):
            assert extract_context({key: ctx.to_traceparent()}) == ctx

    def test_extract_from_empty_or_none_carrier(self):
        assert extract_context({}) is None
        assert extract_context(None) is None


@settings(max_examples=200, deadline=None)
@given(trace_id=trace_ids, span_id=span_ids, sampled=st.booleans())
def test_valid_context_survives_round_trip(trace_id, span_id, sampled):
    ctx = SpanContext(trace_id=trace_id, span_id=span_id, sampled=sampled)
    carrier = {}
    inject_context(ctx, carrier)
    back = extract_context(carrier)
    assert back is not None
    assert back.trace_id == trace_id
    assert back.span_id == span_id
    assert back.sampled == sampled


@settings(max_examples=300, deadline=None)
@given(header=st.text(max_size=80))
def test_extract_never_raises_on_garbage(header):
    result = extract_context({TRACEPARENT_HEADER: header})
    assert result is None or isinstance(result, SpanContext)


@settings(max_examples=200, deadline=None)
@given(
    carrier=st.dictionaries(
        st.text(max_size=20), st.one_of(st.none(), st.text(max_size=60)), max_size=4
    )
)
def test_extract_never_raises_on_arbitrary_carriers(carrier):
    result = extract_context(carrier)
    assert result is None or isinstance(result, SpanContext)


class TestTracerPropagation:
    def test_root_span_gets_fresh_trace_id(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != 0 and b.trace_id != 0
        assert a.trace_id != b.trace_id

    def test_children_inherit_the_trace(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.trace_id == root.trace_id
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id == child.span_id

    def test_remote_parent_joins_the_callers_trace(self):
        caller, callee = Tracer(), Tracer()
        with caller.span("client") as client:
            carrier = {}
            caller.inject(carrier)
        remote = callee.extract(carrier)
        assert remote == client.context
        with callee.span("server", parent=remote) as server:
            with callee.span("inner") as inner:
                pass
        assert server.trace_id == client.trace_id
        assert server.parent_id == client.span_id
        assert inner.trace_id == client.trace_id

    def test_explicit_parent_beats_stack_top(self):
        tracer = Tracer()
        remote = SpanContext(trace_id=0x42, span_id=0x7)
        with tracer.span("outer") as outer:
            with tracer.span("adopted", parent=remote) as adopted:
                pass
        assert adopted.trace_id == 0x42
        assert adopted.parent_id == 0x7
        assert outer.trace_id != 0x42

    def test_spans_for_trace_accepts_int_and_hex(self):
        tracer = Tracer()
        with tracer.span("x") as x:
            pass
        by_int = tracer.spans_for_trace(x.trace_id)
        by_hex = tracer.spans_for_trace(x.trace_id_hex)
        assert [s.span_id for s in by_int] == [x.span_id]
        assert [s.span_id for s in by_hex] == [x.span_id]
        assert tracer.spans_for_trace("not-hex") == []

    def test_concurrent_spans_get_unique_ids_and_traces(self):
        tracer = Tracer(max_spans=10_000)
        errors = []

        def work():
            try:
                for _ in range(50):
                    with tracer.span("outer"):
                        with tracer.span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        finished = tracer.finished_spans()
        assert len(finished) == 8 * 50 * 2
        span_ids = [s.span_id for s in finished]
        assert len(set(span_ids)) == len(span_ids)
        # Each thread's outer spans are roots: all distinct traces, and
        # every inner span shares its outer's trace.
        inners = [s for s in finished if s.name == "inner"]
        by_id = {s.span_id: s for s in finished}
        for inner in inners:
            assert inner.trace_id == by_id[inner.parent_id].trace_id

    def test_span_to_dict_carries_trace_fields(self):
        tracer = Tracer()
        with tracer.span("x") as x:
            pass
        doc = x.to_dict()
        assert doc["trace_id"] == x.trace_id_hex
        assert doc["traceparent"] == x.context.to_traceparent()
