"""Fault-tolerant shard federation: partial-failure-safe recency reports.

The grid is split into N shards, each a :class:`ShardServer` wrapping a
:class:`~repro.grid.simulator.GridSimulator` over a disjoint machine-id
slice (crash-safe via :mod:`repro.durable`), serving recency-report
fragments over a length-prefixed JSON socket RPC (:mod:`.rpc`). A
:class:`FederationCoordinator` fans out with per-shard deadlines, bounded
retries, hedged requests and circuit breakers, and merges fragments into a
:class:`FederatedRecencyReport` that states its own completeness
(``shards_ok`` / ``missing_shards`` / stale-cache ages) the way TRAC's
NOTICE lines state recency. See ``docs/ROBUSTNESS.md``.
"""

from repro.federation.rpc import (
    MAX_FRAME_BYTES,
    RPCError,
    RPCServer,
    call,
    recv_frame,
    send_frame,
)
from repro.federation.shard import ShardServer
from repro.federation.coordinator import (
    FederatedRecencyReport,
    FederationCoordinator,
    ShardInfo,
    ShardRegistry,
)
from repro.federation.process import ShardProcess, launch_shard

__all__ = [
    "MAX_FRAME_BYTES",
    "RPCError",
    "RPCServer",
    "call",
    "recv_frame",
    "send_frame",
    "ShardServer",
    "ShardInfo",
    "ShardRegistry",
    "FederationCoordinator",
    "FederatedRecencyReport",
    "ShardProcess",
    "launch_shard",
]
