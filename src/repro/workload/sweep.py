"""Parameter sweeps: ``data_ratio x num_sources = total_rows``.

The paper fixed the product at 10,000,000 and swept the ratio from 10 to
1,000,000 by factors of ten. ``sweep_points`` produces the analogous series
for any total, dropping points whose ratio or source count would fall below
the minimum of 10 the paper used.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TracError
from repro.workload.generator import WorkloadConfig


class SweepConfig:
    """One sweep: a fixed Activity row total and the ratios to visit."""

    def __init__(
        self,
        total_rows: int = 200_000,
        min_ratio: int = 10,
        min_sources: int = 10,
        factor: int = 10,
        seed: int = 0,
        exceptional_fraction: float = 0.0,
    ) -> None:
        if total_rows < min_ratio * min_sources:
            raise TracError(
                f"total_rows={total_rows} too small for min_ratio={min_ratio} "
                f"x min_sources={min_sources}"
            )
        self.total_rows = total_rows
        self.min_ratio = min_ratio
        self.min_sources = min_sources
        self.factor = factor
        self.seed = seed
        self.exceptional_fraction = exceptional_fraction

    def __repr__(self) -> str:
        return f"SweepConfig(total_rows={self.total_rows})"


def sweep_points(config: SweepConfig) -> List[WorkloadConfig]:
    """The workload configurations of one sweep, in increasing-ratio order."""
    out: List[WorkloadConfig] = []
    ratio = config.min_ratio
    while True:
        num_sources = config.total_rows // ratio
        if num_sources < config.min_sources:
            break
        exceptional: Tuple[int, ...] = ()
        if config.exceptional_fraction > 0:
            count = max(1, int(num_sources * config.exceptional_fraction))
            exceptional = tuple(range(1, count + 1))
        out.append(
            WorkloadConfig(
                num_sources=num_sources,
                data_ratio=ratio,
                seed=config.seed,
                exceptional_sources=exceptional,
            )
        )
        ratio *= config.factor
    return out
