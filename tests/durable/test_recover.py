"""Recovery: checkpoint restore plus exactly-once, monotonic WAL replay."""

import os

import pytest

from repro.backends.memory import MemoryBackend
from repro.durable.checkpoint import write_checkpoint
from repro.durable.recover import recover, restore_database
from repro.durable.wal import (
    FrameWriter,
    encode_batch,
    encode_event,
    encode_heartbeat,
    wal_path,
)
from repro.errors import DurabilityError
from repro.grid.simulator import monitoring_catalog


def line(ts, source="m1", value="idle"):
    return f"{ts:.6f} {source} MACHINE_STATE value={value}"


def write_wal(directory, epoch, payloads):
    with FrameWriter(wal_path(directory, epoch), fsync="never") as writer:
        for payload in payloads:
            writer.append(payload)


def backend_for(*machines):
    return MemoryBackend(monitoring_catalog(list(machines)))


def activity_rows(backend):
    return sorted(backend.execute("SELECT * FROM activity").rows)


class TestEmpty:
    def test_missing_directory(self, tmp_path):
        recovered = recover(str(tmp_path / "absent"))
        assert recovered.empty and recovered.epoch == 0

    def test_empty_directory(self, tmp_path):
        recovered = recover(str(tmp_path))
        assert recovered.empty
        assert recovered.offsets == {} and recovered.recency == {}


class TestWalOnlyReplay:
    def test_events_and_heartbeats_apply(self, tmp_path):
        directory = str(tmp_path)
        write_wal(
            directory,
            0,
            [
                encode_event("m1", 0, line(5.0, value="idle")),
                encode_event("m1", 1, line(8.0, value="busy")),
                encode_heartbeat("m1", 9.0),
            ],
        )
        backend = backend_for("m1")
        recovered = recover(directory, backend=backend)
        assert recovered.offsets == {"m1": 2}
        assert recovered.recency == {"m1": 9.0}
        assert recovered.last_loaded == {"m1": 8.0}
        assert recovered.replayed_events == 2
        assert recovered.replayed_heartbeats == 1
        assert not recovered.has_checkpoint
        assert activity_rows(backend) == [("m1", "busy", 8.0)]
        assert dict(backend.heartbeat_rows()) == {"m1": 9.0}

    def test_duplicate_offsets_skipped_not_reapplied(self, tmp_path):
        directory = str(tmp_path)
        write_wal(
            directory,
            0,
            [
                encode_event("m1", 0, line(5.0)),
                encode_event("m1", 1, line(8.0, value="busy")),
                encode_event("m1", 1, line(8.0, value="busy")),
            ],
        )
        recovered = recover(directory, backend=backend_for("m1"))
        assert recovered.offsets == {"m1": 2}
        assert recovered.replayed_events == 2
        assert recovered.skipped_records == 1

    def test_offset_gap_is_fatal(self, tmp_path):
        directory = str(tmp_path)
        write_wal(
            directory,
            0,
            [encode_event("m1", 0, line(5.0)), encode_event("m1", 5, line(9.0))],
        )
        with pytest.raises(DurabilityError, match="gap"):
            recover(directory, backend=backend_for("m1"))

    def test_batch_records_replay_and_dedupe(self, tmp_path):
        directory = str(tmp_path)
        lines = [line(5.0), line(6.0, value="busy"), line(7.0, value="idle")]
        write_wal(
            directory,
            0,
            [encode_batch("m1", 0, 3, lines), encode_batch("m1", 0, 3, lines)],
        )
        recovered = recover(directory, backend=backend_for("m1"))
        assert recovered.offsets == {"m1": 3}
        assert recovered.replayed_events == 3
        assert recovered.skipped_records == 1

    def test_batch_gap_is_fatal(self, tmp_path):
        directory = str(tmp_path)
        write_wal(directory, 0, [encode_batch("m1", 4, 6, [line(5.0), line(6.0)])])
        with pytest.raises(DurabilityError, match="gap"):
            recover(directory)

    def test_heartbeats_stay_monotonic(self, tmp_path):
        directory = str(tmp_path)
        write_wal(
            directory,
            0,
            [encode_heartbeat("m1", 10.0), encode_heartbeat("m1", 5.0)],
        )
        backend = backend_for("m1")
        recovered = recover(directory, backend=backend)
        assert recovered.recency == {"m1": 10.0}
        assert recovered.replayed_heartbeats == 1
        assert recovered.skipped_records == 1
        assert dict(backend.heartbeat_rows()) == {"m1": 10.0}

    def test_torn_tail_is_counted_and_repaired(self, tmp_path):
        directory = str(tmp_path)
        write_wal(directory, 0, [encode_event("m1", 0, line(5.0)), b"oops"])
        path = wal_path(directory, 0)
        with open(path, "rb+") as fp:
            fp.truncate(os.path.getsize(path) - 2)
        recovered = recover(directory, backend=backend_for("m1"))
        assert recovered.torn_segments == [path]
        assert recovered.replayed_events == 1
        # repair=True truncated the tail in place: a rescan is now clean.
        assert recover(directory).torn_segments == []


class TestCheckpointRestore:
    def checkpointed_dir(self, tmp_path):
        directory = str(tmp_path)
        write_checkpoint(
            directory,
            2,
            {
                "database": {
                    "tables": {"activity": [["m1", "idle", 5.0]]},
                    "heartbeats": [["m1", 5.0]],
                },
                "ingest": {
                    "offsets": {"m1": 3},
                    "recency": {"m1": 5.0},
                    "last_loaded": {"m1": 5.0},
                },
            },
        )
        return directory

    def test_snapshot_restored_then_tail_replayed(self, tmp_path):
        directory = self.checkpointed_dir(tmp_path)
        write_wal(directory, 1, [encode_event("m1", 99, line(1.0))])  # stale epoch
        write_wal(directory, 2, [encode_event("m1", 3, line(7.0, value="busy"))])
        backend = backend_for("m1")
        recovered = recover(directory, backend=backend)
        assert recovered.epoch == 2 and recovered.has_checkpoint
        assert recovered.segments == [wal_path(directory, 2)]
        assert recovered.offsets == {"m1": 4}
        assert activity_rows(backend) == [("m1", "busy", 7.0)]

    def test_checkpoint_alone_restores_watermarks(self, tmp_path):
        directory = self.checkpointed_dir(tmp_path)
        backend = backend_for("m1")
        recovered = recover(directory, backend=backend)
        assert recovered.offsets == {"m1": 3}
        assert recovered.recency == {"m1": 5.0}
        assert activity_rows(backend) == [("m1", "idle", 5.0)]
        assert dict(backend.heartbeat_rows()) == {"m1": 5.0}

    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path):
        directory = self.checkpointed_dir(tmp_path)
        bad = write_checkpoint(directory, 3, {"ingest": {"offsets": {"m1": 9}}})
        open(bad, "w").write("torn!")
        recovered = recover(directory)
        assert recovered.epoch == 2
        assert recovered.invalid_checkpoints == [bad]
        assert recovered.offsets == {"m1": 3}


class TestRestoreDatabase:
    def test_clears_preexisting_rows(self):
        backend = backend_for("m1", "m2")
        backend.insert_rows("activity", [("m2", "busy", 1.0)])
        backend.upsert_heartbeat("m2", 1.0)
        restore_database(
            backend,
            {
                "tables": {"activity": [["m1", "idle", 5.0]]},
                "heartbeats": [["m1", 5.0]],
            },
        )
        assert activity_rows(backend) == [("m1", "idle", 5.0)]
        assert dict(backend.heartbeat_rows()) == {"m1": 5.0}
