"""The ``recencyReport`` table function (Section 5.1), as a library call.

:class:`RecencyReporter` runs a user query together with its system-generated
recency query inside one backend snapshot (Section 3.2's consistency
requirement), computes the relevant sources' recency timestamps, splits them
into normal/exceptional by z-score, derives the descriptive statistics and
materializes the two session temp tables.

Three methods are supported, matching the experimental setup of Section 5.2:

* ``"focused"`` — parse the user query and auto-generate the recency query
  (the paper's technique; parse/generation time is part of the overhead);
* ``"focused_hardcoded"`` — run a pre-built plan (no parse/generation cost;
  isolates execution overhead);
* ``"naive"`` — report every data source in the Heartbeat table.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Set

from repro.backends.base import Backend, Snapshot
from repro.core.health import SourceHealth
from repro.core.quality import ProvenanceRecord, QualityModel, QualitySummary
from repro.core.recency_query import build_all_sources_query, subquery_sql
from repro.core.relevance import RelevancePlan, build_naive_plan, build_relevance_plan
from repro.core.session import Session, TempTablePair
from repro.core.statistics import (
    DEFAULT_Z_THRESHOLD,
    RecencySplit,
    RecencyStatistics,
    SourceRecency,
    describe,
    format_interval,
    format_timestamp,
    zscore_split,
)
from repro.engine.cache import resolve_cached
from repro.engine.evaluate import QueryResult
from repro.errors import TracError
from repro.obs import instrument as obs
from repro.obs.events import EVT_QUERY_SLOW, EVT_REPORT_EXCEPTIONAL
from repro.obs.instrument import PhaseTimer, slow_query_threshold

_METHODS = ("focused", "focused_hardcoded", "naive")

#: Span names for the report phases (children of ``trac.report``).
SPAN_REPORT = "trac.report"
SPAN_PARSE = "report.parse_generate"
SPAN_USER = "report.user_query"
SPAN_RECENCY = "report.recency_query"
SPAN_STATS = "report.statistics"


class ReportTimings:
    """Wall-clock breakdown of one report, in seconds.

    Mirrors the decomposition of Section 5.2: parse + recency-query
    generation; user query execution; recency query execution; statistics
    (z-score split, min/max/range, temp-table creation).

    This is a thin view over the report's phase spans: the reporter times
    each phase with :class:`~repro.obs.instrument.PhaseTimer` and copies
    the measured durations here, so the numbers equal the span durations
    exported by :mod:`repro.obs` when telemetry is enabled.
    """

    __slots__ = ("parse_generate", "user_query", "recency_query", "statistics", "total")

    def __init__(
        self,
        parse_generate: float,
        user_query: float,
        recency_query: float,
        statistics: float,
        total: float,
    ) -> None:
        self.parse_generate = parse_generate
        self.user_query = user_query
        self.recency_query = recency_query
        self.statistics = statistics
        self.total = total

    def to_dict(self) -> Dict[str, float]:
        """Phase durations keyed by phase name (JSON exporter friendly)."""
        return {
            "parse_generate": self.parse_generate,
            "user_query": self.user_query,
            "recency_query": self.recency_query,
            "statistics": self.statistics,
            "total": self.total,
        }

    def __repr__(self) -> str:
        return (
            f"ReportTimings(parse={self.parse_generate:.6f}s, user={self.user_query:.6f}s, "
            f"recency={self.recency_query:.6f}s, stats={self.statistics:.6f}s, "
            f"total={self.total:.6f}s)"
        )


class RecencyReport:
    """Everything the recency report returns for one user query.

    ``telemetry`` is the report's root :class:`~repro.obs.trace.Span`
    (``trac.report``) when the producing reporter had telemetry enabled,
    else ``None``. Its children are the four phase spans; walk them via
    the reporter's ``telemetry.tracer`` or export them with
    :func:`repro.obs.spans_to_jsonl`.

    ``degraded_sources`` carries the supervision layer's known outages
    (sources a :class:`~repro.grid.supervisor.SnifferSupervisor` quarantined)
    when the producing reporter was given a
    :class:`~repro.core.health.SourceHealth` registry; empty otherwise.
    Unlike ``exceptional_sources`` — which the z-score *infers* from the
    Heartbeat data — degraded sources are positively known to be down, so
    a source can be degraded yet absent from the heartbeat-derived split
    (e.g. it died before ever reporting).
    """

    def __init__(
        self,
        sql: str,
        method: str,
        result: QueryResult,
        split: RecencySplit,
        statistics: RecencyStatistics,
        plan: RelevancePlan,
        temp_tables: Optional[TempTablePair],
        timings: ReportTimings,
        telemetry: Optional[object] = None,
        degraded_sources: Optional[List[str]] = None,
        slo_status: Optional[object] = None,
        profile: Optional[object] = None,
        incremental: Optional[str] = None,
        row_provenance: Optional[List[List[str]]] = None,
        quality_summary: Optional[QualitySummary] = None,
    ) -> None:
        self.sql = sql
        self.method = method
        self.result = result
        self.split = split
        self.statistics = statistics
        self.plan = plan
        self.temp_tables = temp_tables
        self.timings = timings
        self.telemetry = telemetry
        self.degraded_sources = list(degraded_sources or [])
        self.slo_status = slo_status
        #: The user query's per-operator
        #: :class:`~repro.engine.profile.QueryProfile` when the producing
        #: reporter had telemetry enabled and the backend profiles queries
        #: (the memory backend does); ``None`` otherwise.
        self.profile = profile
        #: Incremental-maintenance verdict: ``"hit"`` (relevant sources
        #: served from a materialized set), ``"miss"`` (computed from
        #: scratch, now registered) or ``"bypass"`` (plan ineligible);
        #: ``None`` when the reporter has no maintainer.
        self.incremental = incremental
        #: Per-row provenance: one sorted source-id list per result row
        #: when the producing reporter ran with ``lineage=True`` and the
        #: backend can attribute rows; ``None`` otherwise.
        self.row_provenance = row_provenance
        #: The :class:`~repro.core.quality.QualitySummary` rollup (worst
        #: row score, per-source contribution counts, rows touched by
        #: exceptional/degraded sources); ``None`` without lineage.
        self.quality_summary = quality_summary

    @property
    def trace_id(self) -> Optional[str]:
        """The report's 32-hex trace id (from its root span), if traced."""
        span = self.telemetry
        if span is None or not getattr(span, "trace_id", 0):
            return None
        return f"{span.trace_id:032x}"

    @property
    def normal_sources(self) -> List[SourceRecency]:
        return self.split.normal

    @property
    def exceptional_sources(self) -> List[SourceRecency]:
        return self.split.exceptional

    @property
    def relevant_source_ids(self) -> Set[str]:
        """All reported relevant sources (normal plus exceptional)."""
        return {s.source_id for s in self.split.normal} | {
            s.source_id for s in self.split.exceptional
        }

    @property
    def minimal(self) -> bool:
        """Whether the relevant set is provably the minimum (Theorems 3/4)."""
        return self.plan.minimal

    @property
    def suspect_sources(self) -> Set[str]:
        """Sources the report says not to trust: the z-score-exceptional
        ones plus the supervisor-degraded ones."""
        return {s.source_id for s in self.split.exceptional} | set(self.degraded_sources)

    def is_degraded(self, source_id: str) -> bool:
        return source_id in self.degraded_sources

    def notices(self) -> List[str]:
        """The NOTICE lines of the prototype's interactive session."""
        lines: List[str] = []
        if self.exceptional_sources and self.temp_tables is not None:
            lines.append(
                "NOTICE: Exceptional relevant data sources and timestamps "
                f"are in the temporary table: {self.temp_tables.exceptional}"
            )
        if self.degraded_sources:
            lines.append(
                "NOTICE: Degraded data sources (supervisor-quarantined, not "
                f"merely stale): {', '.join(self.degraded_sources)}"
            )
        quality = self.quality_summary
        if quality is not None and (
            quality.rows_from_exceptional or quality.rows_from_degraded
        ):
            worst = (
                f"{quality.worst_row_quality:.3f}"
                if quality.worst_row_quality is not None
                else "unknown"
            )
            lines.append(
                f"NOTICE: {quality.rows_from_exceptional} result row(s) cite "
                f"exceptional sources and {quality.rows_from_degraded} cite "
                f"degraded sources (worst row quality: {worst})"
            )
        slo = self.slo_status
        if slo is not None and getattr(slo, "breached", None):
            lines.append(
                "NOTICE: Staleness SLO breached "
                f"(p95 lag target {slo.target_p95:g}s, budget {slo.budget:g}): "
                f"{', '.join(slo.breached)}"
            )
        stats = self.statistics
        if stats.least_recent is not None and stats.most_recent is not None:
            lines.append(
                "NOTICE: The least recent data source: "
                f"{stats.least_recent.source_id}, {format_timestamp(stats.least_recent.recency)}"
            )
            lines.append(
                "NOTICE: The most recent data source: "
                f"{stats.most_recent.source_id}, {format_timestamp(stats.most_recent.recency)}"
            )
            lines.append(
                "NOTICE: Bound of inconsistency: "
                f"{format_interval(stats.inconsistency_bound or 0.0)}"
            )
        else:
            lines.append("NOTICE: No relevant data sources have reported in")
        if self.temp_tables is not None:
            lines.append(
                'NOTICE: All "normal" relevant data sources and timestamps '
                f"are in the temporary table: {self.temp_tables.normal}"
            )
        return lines

    def __repr__(self) -> str:
        return (
            f"RecencyReport(method={self.method!r}, rows={len(self.result.rows)}, "
            f"relevant={len(self.relevant_source_ids)}, minimal={self.minimal})"
        )


class RecencyReporter:
    """Produces :class:`RecencyReport` objects for user queries.

    Parameters
    ----------
    backend:
        The storage backend holding the monitored tables and Heartbeat.
    z_threshold:
        |z| cutoff for exceptional sources (Section 4.3; default 3).
    max_conjuncts:
        DNF blow-up budget forwarded to the planner.
    check_satisfiability:
        Ablation switch for the satisfiability-based pruning.
    create_temp_tables:
        When False, skip temp-table materialization (useful in tight
        benchmark loops where thousands of reports would otherwise pile up
        temp tables).
    use_constraints:
        Conjoin schema CHECK constraints onto queries before relevance
        analysis (``Q -> Q'``, Section 3.4).
    plan_cache_size:
        When positive, keep an LRU cache of relevance plans keyed by the
        SQL text. Repeated queries then pay parse/generation only once —
        the paper's "hardcoded" method, automated. Safe because plans
        depend only on the catalog (fixed per reporter), never on data.
    source_health:
        An optional :class:`~repro.core.health.SourceHealth` registry (the
        one the sniffer supervisors write into). When given, every report
        carries the currently degraded sources and flags them in its
        NOTICE lines — the deployment's known outages, cross-checkable
        against the z-score's inferred exceptional sources.
    slo:
        An optional :class:`~repro.core.slo.StalenessSLO` tracker. When
        given, every report carries its point-in-time
        :class:`~repro.core.slo.SLOStatus` (``report.slo_status``) and a
        breached SLO adds a NOTICE line.
    telemetry:
        An explicit :class:`~repro.obs.Telemetry` for this reporter's spans
        and counters. ``None`` (default) follows the process-wide default,
        which is a no-op unless enabled via ``repro.obs.enable()`` or
        ``TRAC_TELEMETRY=1``.
    slow_query_seconds:
        Reports slower than this (end-to-end wall seconds) emit a
        ``query.slow`` event carrying the report's trace id — a flight
        recorder configured with that trigger then dumps the full span
        tree and query profile. ``None`` (default) follows the
        ``TRAC_SLOW_QUERY_SECONDS`` environment variable; ``0`` disables.
    incremental:
        An optional :class:`~repro.incremental.IncrementalMaintainer`
        attached to this reporter's backend. Eligible plans then serve
        their relevant-source set from the materialized entries (verdict
        ``"hit"``); a first sighting computes from scratch and registers
        the entry (``"miss"``); ineligible plans fall through unchanged
        (``"bypass"``). The verdict lands on the report, the user query's
        profile and the telemetry counters.
    incremental_verify:
        When True, every incremental hit *also* runs the from-scratch path
        in the same snapshot and raises :class:`~repro.errors.TracError`
        on any divergence — the differential oracle used by the tests.
        Leave False in production use; it removes the speedup.
    lineage:
        When True, the user query runs with row-level lineage enabled and
        every report carries ``row_provenance`` (per-row source sets) and
        ``quality_summary`` (staleness-derived per-row quality, see
        :mod:`repro.core.quality`). Strictly opt-in: the default path
        never touches the lineage machinery. Backends that cannot
        attribute rows (SQLite) degrade to ``row_provenance=None``.
    quality_model:
        The :class:`~repro.core.quality.QualityModel` scoring contributing
        sources when ``lineage`` is on. ``None`` builds one from the
        reporter's SLO tracker (half-life = the SLO's p95 target) or the
        defaults.
    """

    def __init__(
        self,
        backend: Backend,
        z_threshold: float = DEFAULT_Z_THRESHOLD,
        max_conjuncts: int = 4096,
        check_satisfiability: bool = True,
        create_temp_tables: bool = True,
        use_constraints: bool = True,
        plan_cache_size: int = 0,
        telemetry: Optional[object] = None,
        source_health: Optional[SourceHealth] = None,
        slo: Optional[object] = None,
        slow_query_seconds: Optional[float] = None,
        incremental: Optional[object] = None,
        incremental_verify: bool = False,
        lineage: bool = False,
        quality_model: Optional[QualityModel] = None,
    ) -> None:
        self.backend = backend
        self.z_threshold = z_threshold
        self.max_conjuncts = max_conjuncts
        self.check_satisfiability = check_satisfiability
        self.create_temp_tables = create_temp_tables
        self.use_constraints = use_constraints
        self.plan_cache_size = plan_cache_size
        self.telemetry = telemetry
        self.source_health = source_health
        self.slo = slo
        self.slow_query_seconds = slow_query_seconds
        self.incremental = incremental
        self.incremental_verify = incremental_verify
        self.lineage = lineage
        self.quality_model = quality_model
        self._plan_cache: "OrderedDict[str, RelevancePlan]" = OrderedDict()
        # The serving layer gives each worker its own reporter, but a
        # shared reporter must not corrupt its LRU under concurrent use.
        self._plan_cache_lock = threading.Lock()
        self.plan_cache_hits = 0
        self.session = Session(backend)

    def _tel(self):
        tel = self.telemetry
        return tel if tel is not None else obs.get_default()

    # -- planning -----------------------------------------------------------

    def plan_for(self, sql: str) -> RelevancePlan:
        """Parse + resolve + plan (through the LRU cache when enabled)."""
        if self.plan_cache_size > 0:
            with self._plan_cache_lock:
                cached = self._plan_cache.get(sql)
                if cached is not None:
                    self._plan_cache.move_to_end(sql)
                    self.plan_cache_hits += 1
            if cached is not None:
                tel = self._tel()
                if tel.enabled:
                    obs.record_plan_cache_hit(tel)
                return cached
        tel = self._tel()
        resolved = resolve_cached(
            sql, self.backend.catalog, tel if tel.enabled else None
        )
        plan = build_relevance_plan(
            resolved,
            max_conjuncts=self.max_conjuncts,
            check_satisfiability=self.check_satisfiability,
            use_constraints=self.use_constraints,
        )
        if self.plan_cache_size > 0:
            with self._plan_cache_lock:
                self._plan_cache[sql] = plan
                while len(self._plan_cache) > self.plan_cache_size:
                    self._plan_cache.popitem(last=False)
        return plan

    # -- reporting ------------------------------------------------------------

    def report(
        self,
        sql: str,
        method: str = "focused",
        plan: Optional[RelevancePlan] = None,
    ) -> RecencyReport:
        """Run ``sql`` and produce its recency and consistency report.

        ``method="focused_hardcoded"`` requires ``plan`` (obtain one via
        :meth:`plan_for`); the other methods ignore it.
        """
        if method not in _METHODS:
            raise TracError(f"unknown method {method!r}; expected one of {_METHODS}")

        tel = self._tel()
        with PhaseTimer(tel, SPAN_REPORT, method=method, sql=sql) as root:
            parse_phase = PhaseTimer(tel, SPAN_PARSE)
            if method == "focused":
                with parse_phase:
                    plan = self.plan_for(sql)
            elif method == "focused_hardcoded":
                if plan is None:
                    raise TracError("focused_hardcoded requires a pre-built plan")
            else:  # naive
                plan = build_naive_plan()

            with self.backend.snapshot() as snapshot:
                with PhaseTimer(tel, SPAN_USER) as user_phase:
                    if self.lineage:
                        result = snapshot.execute(sql, lineage=True)
                    else:
                        result = snapshot.execute(sql)
                    user_phase.set_attribute("rows", len(result.rows))
                # The engine records a QueryProfile into tel.profiles for
                # every telemetry-enabled execution; grab the user query's
                # before the recency subqueries push it down the ring.
                user_profile = None
                if tel.enabled:
                    candidate = tel.profiles.last()
                    if candidate is not None and candidate.sql == sql:
                        user_profile = candidate

                with PhaseTimer(tel, SPAN_RECENCY) as recency_phase:
                    verdict: Optional[str] = None
                    sources: Optional[List[SourceRecency]] = None
                    if self.incremental is not None:
                        verdict, sources = self.incremental.fetch(plan)
                        if verdict == "hit" and self.incremental_verify:
                            self._verify_incremental(snapshot, plan, sources)
                        elif verdict == "miss":
                            sources = self._relevant_sources(snapshot, plan)
                            self.incremental.register(plan, sources)
                    if sources is None:
                        sources = self._relevant_sources(snapshot, plan)
                    recency_phase.set_attribute("relevant", len(sources))
                    if verdict is not None:
                        recency_phase.set_attribute("incremental", verdict)
                if user_profile is not None and verdict is not None:
                    user_profile.incremental = verdict

                with PhaseTimer(tel, SPAN_STATS) as stats_phase:
                    split = zscore_split(sources, self.z_threshold)
                    if tel.enabled and split.exceptional:
                        for exc_source in split.exceptional:
                            tel.emit(
                                EVT_REPORT_EXCEPTIONAL,
                                source=exc_source.source_id,
                                severity="warning",
                                recency=exc_source.recency,
                                threshold=self.z_threshold,
                            )
                    stats = describe(split.normal)
                    temp_tables: Optional[TempTablePair] = None
                    if self.create_temp_tables:
                        temp_tables = self.session.next_table_names()
                        self.session.materialize(
                            snapshot, temp_tables, split.normal, split.exceptional
                        )

        timings = ReportTimings(
            parse_phase.duration,
            user_phase.duration,
            recency_phase.duration,
            stats_phase.duration,
            root.duration,
        )
        root_span = root.span if tel.enabled else None
        degraded: List[str] = []
        if self.source_health is not None:
            degraded = self.source_health.degraded_sources()

        row_provenance: Optional[List[List[str]]] = None
        quality_summary: Optional[QualitySummary] = None
        if self.lineage and getattr(result, "lineage", None) is not None:
            row_provenance = [sorted(lin) for lin in result.lineage]
            model = self.quality_model
            if model is None:
                model = (
                    QualityModel.from_slo(self.slo)
                    if self.slo is not None
                    else QualityModel()
                )
            scores = model.score_sources(
                sources,
                exceptional={s.source_id for s in split.exceptional},
                degraded=set(degraded),
            )
            quality_summary = model.summarize(result.lineage, scores)

        if tel.enabled:
            trace_id = root_span.trace_id_hex if root_span is not None else None
            obs.record_report(tel, method, root.duration, trace_id=trace_id)
            if quality_summary is not None:
                obs.record_row_quality(tel, method, quality_summary.row_quality)
                obs.record_rows_from_exceptional(
                    tel, method, quality_summary.rows_from_exceptional
                )
                tel.provenance.record(
                    ProvenanceRecord(
                        sql, trace_id, method, result.lineage, quality_summary
                    )
                )
            threshold = (
                self.slow_query_seconds
                if self.slow_query_seconds is not None
                else slow_query_threshold()
            )
            if threshold > 0 and root.duration >= threshold:
                obs.record_slow_query(tel, method)
                # A slow dump should answer "was the answer trustworthy?"
                # without a second query, so attach the quality rollup.
                slow_attrs: Dict[str, object] = {}
                if quality_summary is not None:
                    slow_attrs["worst_row_quality"] = quality_summary.worst_row_quality
                    slow_attrs["top_sources"] = [
                        [source_id, count]
                        for source_id, count in quality_summary.top_sources(3)
                    ]
                # Correlate with the (already finished) root span so the
                # flight recorder's dump carries the whole span tree.
                tel.emit(
                    EVT_QUERY_SLOW,
                    severity="warning",
                    span=root_span,
                    sql=sql,
                    method=method,
                    seconds=root.duration,
                    threshold=threshold,
                    **slow_attrs,
                )
        return RecencyReport(
            sql,
            method,
            result,
            split,
            stats,
            plan,
            temp_tables,
            timings,
            root_span,
            degraded_sources=degraded,
            slo_status=self.slo.status() if self.slo is not None else None,
            profile=user_profile,
            incremental=verdict,
            row_provenance=row_provenance,
            quality_summary=quality_summary,
        )

    def run_plain(self, sql: str) -> QueryResult:
        """Run a user query with no recency reporting (the baseline
        ``t1(Q)`` of the overhead metric)."""
        with self.backend.snapshot() as snapshot:
            return snapshot.execute(sql)

    # -- internals ----------------------------------------------------------------

    def _relevant_sources(
        self, snapshot: Snapshot, plan: RelevancePlan
    ) -> List[SourceRecency]:
        if plan.mode == "empty":
            return []
        if plan.mode == "all":
            rows = snapshot.execute(subquery_sql(build_all_sources_query())).rows
            return [SourceRecency(str(sid), float(rec)) for sid, rec in rows]

        found: Dict[str, float] = {}
        guard_cache: Dict[str, bool] = {}
        for sub in plan.subqueries:
            skip = False
            for guard in sub.guards:
                if guard not in guard_cache:
                    guard_cache[guard] = bool(snapshot.execute(guard).rows)
                if not guard_cache[guard]:
                    skip = True
                    break
            if skip:
                continue
            for sid, recency in snapshot.execute(sub.sql).rows:
                if sid is not None:
                    found[str(sid)] = float(recency)
        return [SourceRecency(sid, rec) for sid, rec in sorted(found.items())]

    def _verify_incremental(
        self,
        snapshot: Snapshot,
        plan: RelevancePlan,
        materialized: List[SourceRecency],
    ) -> None:
        """Differential oracle: the materialized set must equal the
        from-scratch computation in the same snapshot, byte for byte."""
        oracle = self._relevant_sources(snapshot, plan)
        if oracle != materialized:
            raise TracError(
                "incremental maintenance diverged from the from-scratch "
                f"oracle: materialized {materialized!r} != oracle {oracle!r}"
            )

    def close(self) -> None:
        """End the reporter's session (drops its temp tables)."""
        self.session.close()

    def __enter__(self) -> "RecencyReporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def recency_report(
    backend: Backend,
    sql: str,
    method: str = "focused",
    z_threshold: float = DEFAULT_Z_THRESHOLD,
) -> RecencyReport:
    """One-shot convenience wrapper around :class:`RecencyReporter`."""
    reporter = RecencyReporter(backend, z_threshold=z_threshold)
    return reporter.report(sql, method=method)
