"""Per-operator query profiles: EXPLAIN ANALYZE as structured data."""

import json

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.engine import Database
from repro.engine.explain import explain_query
from repro.engine.profile import (
    OP_AGGREGATE,
    OP_FILTER,
    OP_JOIN,
    OP_LIMIT,
    OP_PROJECT,
    OP_SCAN,
    OP_SORT,
    QueryProfile,
    profile_query,
)


@pytest.fixture()
def db():
    catalog = Catalog()
    catalog.add(
        TableSchema(
            "activity",
            [Column("mach_id", "TEXT"), Column("state", "TEXT"), Column("t", "REAL")],
        )
    )
    catalog.add(
        TableSchema("routing", [Column("mach_id", "TEXT"), Column("neighbor", "TEXT")])
    )
    database = Database(catalog)
    database.insert_many(
        "activity",
        [(f"m{i % 4 + 1}", "busy" if i % 3 else "idle", float(i)) for i in range(24)],
    )
    database.insert_many(
        "routing", [(f"m{i % 4 + 1}", f"m{(i + 1) % 4 + 1}") for i in range(8)]
    )
    return database


class TestOperators:
    def test_scan_records_pushdown_selectivity(self, db):
        profile = profile_query(db, "SELECT mach_id FROM activity WHERE state = 'idle'")
        scans = [op for op in profile.operators if op.op == OP_SCAN]
        assert len(scans) == 1
        scan = scans[0]
        assert scan.target == "activity"
        assert scan.rows_in == 24
        assert 0 < scan.rows_out < 24
        assert scan.selectivity == scan.rows_out / scan.rows_in
        assert "pushed predicate" in scan.detail

    def test_join_and_projection_operators(self, db):
        profile = profile_query(
            db,
            "SELECT a.mach_id, r.neighbor FROM activity a, routing r "
            "WHERE a.mach_id = r.mach_id",
        )
        ops = [op.op for op in profile.operators]
        assert OP_SCAN in ops and OP_JOIN in ops and OP_PROJECT in ops
        join = next(op for op in profile.operators if op.op == OP_JOIN)
        assert join.rows_out > 0
        assert "build side" in join.detail

    def test_sort_and_limit_operators(self, db):
        profile = profile_query(
            db, "SELECT mach_id, t FROM activity ORDER BY t DESC LIMIT 5"
        )
        ops = [op.op for op in profile.operators]
        assert OP_SORT in ops and OP_LIMIT in ops
        limit = next(op for op in profile.operators if op.op == OP_LIMIT)
        assert limit.rows_out == 5
        assert profile.rows == 5

    def test_aggregate_operator(self, db):
        profile = profile_query(
            db, "SELECT state, COUNT(*) FROM activity GROUP BY state"
        )
        agg = next(op for op in profile.operators if op.op == OP_AGGREGATE)
        assert agg.rows_in == 24
        assert agg.rows_out == profile.rows

    def test_residual_filter_operator(self, db):
        profile = profile_query(
            db,
            "SELECT a.mach_id FROM activity a, routing r "
            "WHERE a.mach_id = r.mach_id AND a.mach_id <> r.neighbor",
        )
        assert any(op.op == OP_FILTER for op in profile.operators)


class TestProfileShape:
    def test_totals_and_serialization(self, db):
        profile = profile_query(db, "SELECT mach_id FROM activity")
        assert profile.rows == 24
        assert profile.columns == ["mach_id"]
        assert profile.total_seconds > 0
        doc = profile.to_dict()
        json.dumps(doc)  # must be JSON-serializable as-is
        assert doc["sql"] == "SELECT mach_id FROM activity"
        assert len(doc["operators"]) == len(profile.operators)
        for op_doc in doc["operators"]:
            assert set(op_doc) == {
                "op", "target", "rows_in", "rows_out", "seconds",
                "selectivity", "detail",
            }

    def test_operator_seconds_sum_close_to_total(self, db):
        profile = profile_query(
            db, "SELECT state, COUNT(*) FROM activity GROUP BY state ORDER BY state"
        )
        assert sum(op.seconds for op in profile.operators) <= profile.total_seconds * 1.5

    def test_render_is_aligned_text(self, db):
        text = profile_query(db, "SELECT mach_id FROM activity LIMIT 3").render()
        lines = text.splitlines()
        assert lines[0].startswith("profile:")
        assert "operator" in lines[1] and "rows_in" in lines[1]
        assert lines[-1].lstrip().startswith("total: 3 row(s)")

    def test_selectivity_none_when_no_input(self):
        profile = QueryProfile("SELECT 1")
        op = profile.add(OP_FILTER, "constant", 0, 0, 0.0)
        assert op.selectivity is None


class TestExplainAnalyze:
    def test_explain_analyze_returns_profile_render(self, db):
        text = explain_query(db, "SELECT mach_id FROM activity LIMIT 2", analyze=True)
        assert text.startswith("profile:")
        assert "scan" in text

    def test_plain_explain_unchanged(self, db):
        text = explain_query(db, "SELECT mach_id FROM activity LIMIT 2")
        assert text.startswith("explain:")
        assert "result: 2 row(s)" in text


class TestTelemetryCapture:
    def test_execute_sql_records_profile_when_enabled(self, db):
        from repro.engine.evaluate import execute_sql
        from repro.obs.instrument import Telemetry

        tel = Telemetry()
        execute_sql(db, "SELECT mach_id FROM activity", telemetry=tel)
        assert len(tel.profiles) == 1
        profile = tel.profiles.last()
        assert profile.sql == "SELECT mach_id FROM activity"
        assert profile.cache_hit is False
        execute_sql(db, "SELECT mach_id FROM activity", telemetry=tel)
        assert tel.profiles.last().cache_hit is True

    def test_no_profiling_work_without_telemetry(self, db):
        from repro.engine.evaluate import execute_sql

        result = execute_sql(db, "SELECT mach_id FROM activity")
        assert len(result.rows) == 24

    def test_profile_log_is_bounded(self):
        from repro.obs.instrument import ProfileLog

        log = ProfileLog(capacity=4)
        for i in range(10):
            profile = QueryProfile(f"q{i}")
            log.record(profile)
        assert len(log) == 4
        assert log.total == 10
        assert [p.sql for p in log.snapshot()] == ["q6", "q7", "q8", "q9"]
