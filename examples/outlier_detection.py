#!/usr/bin/env python
"""Exceptional-source detection under failure injection (Section 4.3).

Runs the grid simulator with machine failures enabled, then shows how the
z-score split isolates the dead machines so the descriptive statistics stay
meaningful for the live ones — and how the bound of inconsistency would be
uselessly wide without the split.

Run:  python examples/outlier_detection.py
"""

from repro.core import RecencyReporter
from repro.core.statistics import (
    SourceRecency,
    describe,
    format_interval,
    zscore_split,
)
from repro.grid import GridSimulator, SimulationConfig


def main() -> None:
    config = SimulationConfig(
        num_machines=40,
        seed=7,
        job_submit_probability=0.05,
        heartbeat_interval=15.0,
        machine_failure_probability=0.0,  # we fail machines by hand
        machine_recover_probability=0.0,
    )
    sim = GridSimulator(config)

    # Let everything warm up, then kill two machines. Note the fraction
    # matters: Chebyshev's theorem caps the |z| of a fraction p of points
    # at 1/sqrt(p), so the paper's |z| >= 3 rule can only ever flag fewer
    # than 1/9 of the sources. Two of forty (5%) is comfortably inside.
    sim.run(120)
    victims = ["m4", "m11"]
    for victim in victims:
        sim.machines[victim].fail()
    print(f"t={sim.now:.0f}s: machines {victims} fail silently")

    # Run for another hour of simulated time.
    sim.run(3600)
    sim.drain()
    print(f"t={sim.now:.0f}s: querying the monitoring database\n")

    reporter = RecencyReporter(sim.backend, create_temp_tables=False)
    report = reporter.report("SELECT mach_id, value FROM activity")

    print("Exceptional (z-score >= 3) sources found by the report:")
    for source in report.exceptional_sources:
        age = sim.now - source.recency
        print(f"  {source.source_id}: last heard {format_interval(age)} ago")

    detected = {s.source_id for s in report.exceptional_sources}
    print(f"\nInjected failures: {sorted(victims)}")
    print(f"Detected outliers: {sorted(detected)}")

    stats = report.statistics
    print("\nStatistics over the NORMAL sources only:")
    print(f"  least recent       : {stats.least_recent.source_id}")
    print(f"  most recent        : {stats.most_recent.source_id}")
    print(f"  bound of inconsist.: {format_interval(stats.inconsistency_bound)}")

    # What the bound would look like without outlier removal.
    everything = report.normal_sources + report.exceptional_sources
    raw = describe(everything)
    print("\nWithout the z-score split the bound would be:")
    print(f"  bound of inconsist.: {format_interval(raw.inconsistency_bound)}")
    print("  ...dominated entirely by the dead machines.")

    # Threshold sweep: how sensitive is detection to the cutoff?
    print("\nThreshold sweep (|z| cutoff -> #exceptional):")
    data = [SourceRecency(s.source_id, s.recency) for s in everything]
    for threshold in (1.0, 1.5, 2.0, 2.5, 3.0, 4.0):
        split = zscore_split(data, threshold)
        print(f"  |z| >= {threshold:<4}: {len(split.exceptional)} sources")


if __name__ == "__main__":
    main()
