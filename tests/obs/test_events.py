"""The structured event log: emission, retention, listeners, JSONL."""

import io
import threading

import pytest

from repro.errors import TracError
from repro.obs import Telemetry
from repro.obs.events import (
    EVT_SOURCE_DEGRADED,
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    events_from_jsonl,
    events_to_jsonl,
    write_events_jsonl,
)


class TestEventLog:
    def test_emit_returns_the_event(self):
        log = EventLog()
        event = log.emit("sniffer.retry", t=12.0, source="m3", severity="warning", attempt=2)
        assert event.name == "sniffer.retry"
        assert event.t == 12.0
        assert event.source == "m3"
        assert event.severity == "warning"
        assert event.attributes == {"attempt": 2}
        assert event.seq == 1
        assert event.wall > 0

    def test_sequence_numbers_are_monotonic(self):
        log = EventLog()
        seqs = [log.emit("e").seq for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_unknown_severity_rejected(self):
        log = EventLog()
        with pytest.raises(TracError, match="severity"):
            log.emit("e", severity="catastrophic")

    def test_ring_retention_and_dropped_count(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("e", index=i)
        assert len(log) == 3
        assert log.total == 5
        assert log.dropped == 2
        assert [e.attributes["index"] for e in log.snapshot()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(TracError):
            EventLog(capacity=0)

    def test_tail(self):
        log = EventLog()
        for i in range(10):
            log.emit("e", index=i)
        assert [e.attributes["index"] for e in log.tail(3)] == [7, 8, 9]
        assert log.tail(0) == []
        assert len(log.tail(99)) == 10

    def test_counts_by_name(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert log.counts_by_name() == {"a": 2, "b": 1}

    def test_clear_keeps_sequence_counter(self):
        log = EventLog()
        log.emit("e")
        log.clear()
        assert len(log) == 0
        assert log.emit("e").seq == 2

    def test_listeners_receive_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.emit("b")
        assert [e.name for e in seen] == ["a", "b"]

    def test_unsubscribe_stops_delivery(self):
        log = EventLog()
        seen = []
        listener = seen.append
        log.subscribe(listener)
        log.emit("a")
        log.unsubscribe(listener)
        log.emit("b")
        assert [e.name for e in seen] == ["a"]

    def test_raising_listener_does_not_break_emission(self):
        log = EventLog()

        def bad(event):
            raise RuntimeError("boom")

        seen = []
        log.subscribe(bad)
        log.subscribe(seen.append)
        event = log.emit("a")
        assert event is not None
        assert len(seen) == 1

    def test_listener_may_read_the_log(self):
        """Listeners run outside the buffer lock (no deadlock)."""
        log = EventLog()
        lengths = []
        log.subscribe(lambda e: lengths.append(len(log)))
        log.emit("a")
        assert lengths == [1]

    def test_thread_safety(self):
        log = EventLog(capacity=10_000)

        def worker():
            for _ in range(500):
                log.emit("e")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.total == 2000
        seqs = [e.seq for e in log.snapshot()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestNullEventLog:
    def test_is_inert(self):
        assert NULL_EVENT_LOG.emit("e", source="m1", extra=1) is None
        assert NULL_EVENT_LOG.snapshot() == []
        assert NULL_EVENT_LOG.tail(5) == []
        assert len(NULL_EVENT_LOG) == 0
        assert NULL_EVENT_LOG.total == 0
        assert NULL_EVENT_LOG.dropped == 0
        NULL_EVENT_LOG.subscribe(lambda e: None)
        NULL_EVENT_LOG.clear()

    def test_shared_singleton(self):
        assert isinstance(NULL_EVENT_LOG, NullEventLog)


class TestTelemetryEmit:
    def test_emit_counts_and_correlates_spans(self):
        tel = Telemetry()
        with tel.tracer.span("outer") as span:
            event = tel.emit("sniffer.retry", source="m1", severity="warning")
        assert event.span_id == span.span_id
        counters = {
            (i.name, dict(i.labels).get("event")): i.value
            for i in tel.metrics.collect()
        }
        assert counters[("trac_events_emitted_total", "sniffer.retry")] == 1

    def test_emit_without_open_span(self):
        tel = Telemetry()
        assert tel.emit("e").span_id is None

    def test_reset_clears_events(self):
        tel = Telemetry()
        tel.emit("e")
        tel.reset()
        assert len(tel.events) == 0


class TestJsonl:
    def test_round_trip(self):
        log = EventLog()
        log.emit(EVT_SOURCE_DEGRADED, t=5.0, source="m2", severity="error", reason="silent")
        log.emit("other", payload={"nested": [1, 2]})
        text = events_to_jsonl(log.snapshot())
        assert not text.endswith("\n")
        records = events_from_jsonl(text)
        assert len(records) == 2
        assert records[0]["name"] == EVT_SOURCE_DEGRADED
        assert records[0]["source"] == "m2"
        assert records[0]["attributes"] == {"reason": "silent"}
        assert records[1]["attributes"] == {"payload": {"nested": [1, 2]}}

    def test_write_events_jsonl_streams(self):
        log = EventLog()
        for i in range(3):
            log.emit("e", index=i)
        buffer = io.StringIO()
        assert write_events_jsonl(log.snapshot(), buffer) == 3
        text = buffer.getvalue()
        assert text.endswith("\n")
        assert len(text.splitlines()) == 3

    def test_malformed_jsonl_rejected(self):
        with pytest.raises(TracError, match="line 2"):
            events_from_jsonl('{"name": "a"}\nnot json')
        with pytest.raises(TracError, match="not an object"):
            events_from_jsonl("[1, 2]")

    def test_blank_lines_skipped(self):
        assert events_from_jsonl("\n\n") == []
