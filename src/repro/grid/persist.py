"""File-backed logs: write machine logs to disk and sniff them back.

Makes the paper's data path literal: each machine's events live in a text
file (:mod:`repro.grid.logformat`), and a sniffer tails the *file* — so a
monitoring database can be rebuilt offline from a directory of logs, or fed
by processes in other languages that write the same format.

* :class:`FileLogWriter` — append events to a machine's log file;
* :class:`FileLog` — read-side adapter exposing the same
  ``read_from(offset, up_to_time)`` interface as the in-memory
  :class:`~repro.grid.logfile.LogFile`, so the standard
  :class:`~repro.grid.sniffer.Sniffer` can tail it unchanged;
* :func:`archive_simulation` — dump every machine's in-memory log to a
  directory;
* :func:`replay_directory` — load a directory of log files into a backend
  through real sniffers, reproducing the database a live deployment would
  have built.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.backends.base import Backend
from repro.errors import SimulationError
from repro.grid.events import LogEvent
from repro.grid.logformat import format_line, parse_line
from repro.grid.sniffer import Sniffer, SnifferConfig

#: File name pattern for one machine's log.
LOG_SUFFIX = ".log"


def log_path(directory: str, machine_id: str) -> str:
    return os.path.join(directory, f"{machine_id}{LOG_SUFFIX}")


class FileLogWriter:
    """Append-only writer for one machine's on-disk log.

    Events must arrive in non-decreasing timestamp order, mirroring the
    in-memory :class:`LogFile` contract. Each event is flushed immediately
    (the paper assumes reliable storage; a crash loses nothing that was
    reported)."""

    def __init__(self, path: str, owner: str) -> None:
        self.path = path
        self.owner = owner
        self._last_timestamp = float("-inf")
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if not os.path.exists(path):
            with open(path, "w") as handle:
                handle.write("# trac-log v1\n")

    def append(self, event: LogEvent) -> None:
        if event.source != self.owner:
            raise SimulationError(
                f"event from {event.source!r} appended to log of {self.owner!r}"
            )
        if event.timestamp < self._last_timestamp:
            raise SimulationError(
                f"log {self.path!r}: timestamp {event.timestamp} is before "
                f"the last written record"
            )
        with open(self.path, "a") as handle:
            handle.write(format_line(event) + "\n")
            handle.flush()
        self._last_timestamp = event.timestamp


class FileLog:
    """Read-side view of an on-disk log, duck-typed like ``LogFile``.

    ``read_from`` offsets are *event indexes* (comments and blank lines are
    not counted), so a sniffer's durable offset stays valid as the file
    grows."""

    def __init__(self, path: str, owner: str) -> None:
        self.path = path
        self.owner = owner

    def _events(self) -> List[LogEvent]:
        if not os.path.exists(self.path):
            return []
        with open(self.path) as handle:
            text = handle.read()
        events: List[LogEvent] = []
        for number, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            event = parse_line(stripped, number)
            if event.source != self.owner:
                raise SimulationError(
                    f"log {self.path!r} owned by {self.owner!r} contains an "
                    f"event from {event.source!r}"
                )
            events.append(event)
        return events

    def read_from(self, offset: int, up_to_time: float) -> Tuple[List[LogEvent], int]:
        events = self._events()
        if offset < 0 or offset > len(events):
            raise SimulationError(f"invalid log offset {offset}")
        out: List[LogEvent] = []
        position = offset
        while position < len(events) and events[position].timestamp <= up_to_time:
            out.append(events[position])
            position += 1
        return out, position

    @property
    def last_timestamp(self) -> float:
        events = self._events()
        if not events:
            return float("-inf")
        return events[-1].timestamp

    def __len__(self) -> int:
        return len(self._events())


class FileSource:
    """Adapter pairing a machine id with its :class:`FileLog`, shaped the
    way :class:`~repro.grid.sniffer.Sniffer` expects a machine to look."""

    def __init__(self, machine_id: str, log: FileLog) -> None:
        self.machine_id = machine_id
        self.log = log

    def __repr__(self) -> str:
        return f"FileSource({self.machine_id!r}, {self.log.path!r})"


def archive_simulation(sim, directory: str) -> List[str]:
    """Write every machine's in-memory log to ``directory``.

    Returns the file paths written. Payload values are stringified where
    needed (the text format carries strings)."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for machine_id, machine in sorted(sim.machines.items()):
        path = log_path(directory, machine_id)
        writer = FileLogWriter(path, machine_id)
        for event in machine.log:
            payload = {k: str(v) for k, v in event.payload.items()}
            writer.append(LogEvent(event.timestamp, event.source, event.kind, payload))
        paths.append(path)
    return paths


def discover_logs(directory: str) -> Dict[str, str]:
    """Map machine id -> log path for every ``*.log`` file in a directory."""
    out: Dict[str, str] = {}
    for name in sorted(os.listdir(directory)):
        if name.endswith(LOG_SUFFIX):
            out[name[: -len(LOG_SUFFIX)]] = os.path.join(directory, name)
    return out


def replay_directory(
    backend: Backend,
    directory: str,
    up_to_time: Optional[float] = None,
    config: Optional[SnifferConfig] = None,
) -> Dict[str, Sniffer]:
    """Load a directory of log files into ``backend`` through sniffers.

    One sniffer per log file, drained completely up to ``up_to_time``
    (default: everything). Returns the sniffers, whose offsets/backlogs can
    be inspected, so callers can also continue polling as files grow.
    """
    sniffers: Dict[str, Sniffer] = {}
    horizon = float("inf") if up_to_time is None else up_to_time
    for machine_id, path in discover_logs(directory).items():
        source = FileSource(machine_id, FileLog(path, machine_id))
        sniffer = Sniffer(source, backend, config or SnifferConfig(lag=0.0))  # type: ignore[arg-type]
        sniffer.poll(horizon)
        sniffers[machine_id] = sniffer
    return sniffers
