"""Every example script must run clean and produce its headline output."""

import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Focused method" in out
        assert "NOTICE: Bound of inconsistency" in out
        assert "relevant sources  : ['m1', 'm2']" in out

    def test_grid_monitoring(self):
        out = run_example("grid_monitoring.py")
        assert "Ground truth" in out
        assert "relevant sources" in out
        assert "The value of recency reporting" in out

    def test_query_semantics(self):
        out = run_example("query_semantics.py")
        assert "State 0" in out and "State 2" in out
        assert "Q3 relevant sources: 8" in out
        assert "Q4 relevant sources: 2" in out

    def test_paper_session(self):
        out = run_example("paper_session.py")
        # The Section 5.1 transcript, verbatim details.
        assert "NOTICE: The least recent data source: m1, 2006-03-15 14:20:05" in out
        assert "NOTICE: The most recent data source: m3, 2006-03-15 14:40:05" in out
        assert "NOTICE: Bound of inconsistency: 00:20:00" in out
        assert "m2  | 2006-02-13 17:23:00" in out
        assert "(10 rows)" in out

    def test_outlier_detection(self):
        out = run_example("outlier_detection.py")
        assert "Detected outliers: ['m11', 'm4']" in out
        assert "Threshold sweep" in out

    def test_watch_rules(self):
        out = run_example("watch_rules.py")
        assert "all rules pass" in out
        assert "[exceptional]" in out
        assert "Alert history" in out

    def test_telemetry_tour(self):
        out = run_example("telemetry_tour.py")
        assert "trac.report" in out and "report.user_query" in out
        assert "ReportTimings is a thin view over those spans" in out
        assert "sniff->DB lag" in out
        assert "trac_monitor_trips_total{rule=idle-pool} = 1" in out
        assert 'trac_reports_total{method="focused"} 2' in out
        assert "counters and gauges:" in out
        assert "trac_sniff_lag_seconds" in out

    def test_sensor_network(self):
        out = run_example("sensor_network.py")
        assert "cold room" in out
        assert "ALERT [exceptional]" in out
        assert "sensor07" in out
        assert "minimal relevant set: {'sensor12'}" in out

    def test_observatory_tour(self):
        out = run_example("observatory_tour.py")
        assert "observatory serving on http://" in out
        assert "scraped /metrics" in out
        assert "degraded=['m2']" in out
        assert "trac top" in out
        assert "flight dump: trigger=watchdog.silence source=m2" in out
        assert "staleness SLO (p95 < 25s): BREACHED" in out

    def test_profiling_tour(self):
        out = run_example("profiling_tour.py")
        assert "report trace_id:" in out
        assert "profile: SELECT state, COUNT(*)" in out
        assert "injected  trace_id: 1badb0021badb0021badb0021badb002" in out
        assert "report's  trace_id: 1badb0021badb0021badb0021badb002" in out
        assert "'http.request'" in out and "'trac.report'" in out
        assert '# {trace_id="' in out
        assert "query.slow events: 1" in out
        assert "done: every query is traceable from caller to operator" in out

    def test_provenance_tour(self):
        out = run_example("provenance_tour.py")
        assert "from ['m1']  quality 1.000" in out
        assert "from ['m3', 'registry']  quality 0.500" in out
        assert "fanin" in out
        assert "monotone: 0.500 > 0.125 > 0.000" in out
        assert "row_sources=[['m1'], ['m2'], ['m3']]" in out
        assert "1 record(s) under this trace" in out
        assert 'trac_row_quality_count{method="focused"}' in out
        assert "every row's trust is explainable" in out

    def test_serving_tour(self):
        out = run_example("serving_tour.py")
        assert "POST /v1/query -> 200" in out
        assert "NOTICE: Bound of inconsistency" in out
        assert "trace_id:" in out
        assert "429 Too Many Requests (Retry-After:" in out
        assert "admission control is exact" in out
        assert "serve:" in out and "p99=" in out

    def test_federation_tour(self):
        out = run_example("federation_tour.py")
        assert "union of machines: ['m1', 'm2', 'm3', 'm4', 'm5', 'm6']" in out
        assert "shards: 3/3 ok  complete=True" in out
        assert "shards: 2/3 ok  complete=False  missing=['s2']" in out
        assert "NOTICE: Degraded federated report: 2 of 3 shard(s) reporting" in out
        assert "NOTICE: Stale cached fragment(s) served for: s2 (age" in out
        assert "s2 breaker after the failures: open" in out
        assert "s2 breaker after the rejoin: closed" in out
        assert "partial failure is a degraded report, not a failed one" in out

    def test_durability_tour(self):
        out = run_example("durability_tour.py")
        assert "crash and resume" in out
        assert "recovered epoch" in out
        assert "survivor equals a never-crashed oracle: True" in out
        assert "offline recovery equals the live database: True" in out
        assert "torn: 'truncated frame payload'" in out
