"""MemoryBackend change-listener tests: every mutation announces itself."""

import pytest

from repro import Catalog, Column, MemoryBackend, TableSchema


class RecordingListener:
    def __init__(self):
        self.events = []

    def heartbeat_upserted(self, source_id, recency):
        self.events.append(("upserted", source_id, recency))

    def heartbeat_rows_inserted(self, rows):
        self.events.append(("inserted", list(rows)))

    def heartbeat_rows_upserted(self, key_columns, rows):
        self.events.append(("rows_upserted", tuple(key_columns), list(rows)))

    def heartbeat_rows_deleted(self, key_columns, keys):
        self.events.append(("deleted", tuple(key_columns), list(keys)))

    def heartbeat_cleared(self):
        self.events.append(("cleared",))

    def table_changed(self, table):
        self.events.append(("table_changed", table))


@pytest.fixture
def backend():
    catalog = Catalog(
        [
            TableSchema(
                "activity",
                [Column("mach_id", "TEXT"), Column("value", "TEXT")],
                source_column="mach_id",
            )
        ]
    )
    return MemoryBackend(catalog)


@pytest.fixture
def listener(backend):
    recorder = RecordingListener()
    backend.add_change_listener(recorder)
    return recorder


class TestHeartbeatEvents:
    def test_upsert_heartbeat_notifies(self, backend, listener):
        backend.upsert_heartbeat("m1", 10.0)
        assert listener.events == [("upserted", "m1", 10.0)]

    def test_insert_rows_notifies_with_materialized_rows(self, backend, listener):
        backend.insert_rows("heartbeat", iter([("m1", 1.0), ("m2", 2.0)]))
        assert listener.events == [("inserted", [("m1", 1.0), ("m2", 2.0)])]
        # The rows also actually landed (the iterable was not consumed
        # twice or lost while materializing for the notification).
        assert backend.row_count("heartbeat") == 2

    def test_upsert_rows_notifies(self, backend, listener):
        backend.upsert_rows("heartbeat", ["source_id"], [("m1", 5.0)])
        assert listener.events == [("rows_upserted", ("source_id",), [("m1", 5.0)])]

    def test_delete_emits_invalidation_event(self, backend, listener):
        """Deletes must be announced eagerly — a materialized set that only
        found out at the next lazy index rebuild could serve a tombstoned
        source in the meantime."""
        backend.upsert_heartbeat("m1", 1.0)
        backend.upsert_heartbeat("m2", 2.0)
        backend.delete_rows("heartbeat", ["source_id"], [("m2",)])
        assert listener.events[-1] == ("deleted", ("source_id",), [("m2",)])

    def test_delete_all_notifies_cleared(self, backend, listener):
        backend.upsert_heartbeat("m1", 1.0)
        backend.delete_all("heartbeat")
        assert listener.events[-1] == ("cleared",)


class TestTableEvents:
    def test_monitored_table_mutations_notify_table_changed(self, backend, listener):
        backend.insert_rows("activity", [("m1", "idle")])
        backend.upsert_rows("activity", ["mach_id"], [("m1", "busy")])
        backend.delete_rows("activity", ["mach_id"], [("m1",)])
        backend.delete_all("activity")
        assert listener.events == [("table_changed", "activity")] * 4


class TestRegistry:
    def test_remove_listener_stops_notifications(self, backend, listener):
        backend.remove_change_listener(listener)
        backend.upsert_heartbeat("m1", 1.0)
        assert listener.events == []

    def test_add_is_idempotent(self, backend, listener):
        backend.add_change_listener(listener)
        backend.upsert_heartbeat("m1", 1.0)
        assert listener.events == [("upserted", "m1", 1.0)]

    def test_partial_listeners_are_fine(self, backend):
        class OnlyDeletes:
            def __init__(self):
                self.deleted = []

            def heartbeat_rows_deleted(self, key_columns, keys):
                self.deleted.append(list(keys))

        only = OnlyDeletes()
        backend.add_change_listener(only)
        backend.upsert_heartbeat("m1", 1.0)  # no handler: silently skipped
        backend.delete_rows("heartbeat", ["source_id"], [("m1",)])
        assert only.deleted == [[("m1",)]]
