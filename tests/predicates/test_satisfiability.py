"""Satisfiability checker tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import FiniteDomain, IntegerDomain, RealDomain, TextDomain
from repro.predicates.dnf import basic_terms_of
from repro.predicates.satisfiability import (
    ColumnConstraint,
    Satisfiability,
    check_conjunction,
)
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve
from repro.catalog import Catalog, Column, TableSchema

SAT = Satisfiability.SAT
UNSAT = Satisfiability.UNSAT
UNKNOWN = Satisfiability.UNKNOWN


def make_catalog(**domains):
    """A one-table catalog with column 's' as source plus given columns."""
    columns = [Column("s", "TEXT", FiniteDomain({"s1", "s2"}))]
    for name, domain in domains.items():
        sql_type = "INTEGER" if isinstance(domain, IntegerDomain) else (
            "REAL" if isinstance(domain, RealDomain) else "TEXT")
        columns.append(Column(name, sql_type, domain))
    return Catalog([TableSchema("t", columns, source_column="s")])


def check(where, **domains):
    catalog = make_catalog(**domains)
    query = parse_query(f"SELECT s FROM t WHERE {where}")
    resolved = resolve(query, catalog)
    schema = catalog.get("t")
    terms = basic_terms_of(query.where)
    return check_conjunction(terms, lambda ref: schema.column(ref.name).domain)


class TestFiniteDomains:
    def test_satisfiable_equality(self):
        assert check("v = 'idle'", v=FiniteDomain({"idle", "busy"})) is SAT

    def test_value_outside_domain(self):
        assert check("v = 'gone'", v=FiniteDomain({"idle", "busy"})) is UNSAT

    def test_contradictory_equalities(self):
        assert check("v = 'idle' AND v = 'busy'", v=FiniteDomain({"idle", "busy"})) is UNSAT

    def test_in_list_intersection(self):
        assert check("v IN ('a', 'b') AND v IN ('b', 'c')", v=FiniteDomain({"a", "b", "c"})) is SAT
        assert check("v IN ('a') AND v IN ('b')", v=FiniteDomain({"a", "b"})) is UNSAT

    def test_exclusion_exhausts_domain(self):
        assert check("v <> 'a' AND v <> 'b'", v=FiniteDomain({"a", "b"})) is UNSAT

    def test_exclusion_leaves_room(self):
        assert check("v <> 'a'", v=FiniteDomain({"a", "b"})) is SAT

    def test_not_in_with_null_is_unsat(self):
        # x NOT IN (..., NULL) can never be TRUE in SQL.
        assert check("v NOT IN ('a', NULL)", v=FiniteDomain({"a", "b"})) is UNSAT

    def test_equals_null_is_unsat(self):
        assert check("v = NULL", v=FiniteDomain({"a"})) is UNSAT

    def test_like_on_finite_domain(self):
        assert check("v LIKE 'id%'", v=FiniteDomain({"idle", "busy"})) is SAT
        assert check("v LIKE 'zz%'", v=FiniteDomain({"idle", "busy"})) is UNSAT


class TestIntervals:
    def test_integer_range_satisfiable(self):
        assert check("x > 3 AND x < 10", x=IntegerDomain()) is SAT

    def test_integer_range_empty(self):
        assert check("x > 3 AND x < 4", x=IntegerDomain()) is UNSAT

    def test_integer_range_single_point(self):
        assert check("x >= 4 AND x <= 4", x=IntegerDomain()) is SAT

    def test_integer_point_excluded(self):
        assert check("x >= 4 AND x <= 4 AND x <> 4", x=IntegerDomain()) is UNSAT

    def test_real_open_interval_satisfiable(self):
        # (3, 4) is empty over the integers but not over the reals.
        assert check("x > 3 AND x < 4", x=RealDomain()) is SAT

    def test_real_degenerate_empty(self):
        assert check("x > 3 AND x < 3", x=RealDomain()) is UNSAT

    def test_between_contradiction(self):
        assert check("x BETWEEN 5 AND 1", x=IntegerDomain()) is UNSAT

    def test_domain_bounds_respected(self):
        assert check("x > 100", x=IntegerDomain(0, 50)) is UNSAT
        assert check("x > 40", x=IntegerDomain(0, 50)) is SAT

    def test_exclusions_inside_bounded_integer_interval(self):
        assert check(
            "x BETWEEN 1 AND 3 AND x <> 1 AND x <> 2 AND x <> 3", x=IntegerDomain()
        ) is UNSAT
        assert check(
            "x BETWEEN 1 AND 3 AND x <> 1 AND x <> 2", x=IntegerDomain()
        ) is SAT

    def test_unbounded_with_exclusions_is_sat(self):
        assert check("x <> 1 AND x <> 2 AND x <> 3", x=IntegerDomain()) is SAT


class TestNullHandling:
    def test_is_null_unsat_over_domains(self):
        # Potential tuples draw from NULL-free domains (Definition 1).
        assert check("v IS NULL", v=FiniteDomain({"a"})) is UNSAT

    def test_is_not_null_vacuous(self):
        assert check("v IS NOT NULL", v=FiniteDomain({"a"})) is SAT


class TestTextDomains:
    def test_plain_like_satisfiable(self):
        assert check("v LIKE 'Tao%'", v=TextDomain()) is SAT

    def test_equality_on_text(self):
        assert check("v = 'anything'", v=TextDomain()) is SAT

    def test_range_on_text(self):
        assert check("v >= 'a' AND v <= 'b'", v=TextDomain()) is SAT

    def test_empty_text_range(self):
        assert check("v > 'b' AND v < 'a'", v=TextDomain()) is UNSAT


class TestCrossColumnTerms:
    def test_cross_column_small_finite_exact(self):
        d = FiniteDomain({1, 2, 3})
        assert check("x = y", x=d, y=d) is SAT

    def test_cross_column_contradiction_exact(self):
        assert check(
            "x = y AND x = 1 AND y = 2",
            x=FiniteDomain({1, 2}),
            y=FiniteDomain({1, 2}),
        ) is UNSAT

    def test_cross_column_infinite_is_unknown(self):
        assert check("x = y", x=RealDomain(), y=RealDomain()) is UNKNOWN

    def test_constant_false_term(self):
        assert check("FALSE AND x = 1", x=IntegerDomain()) is UNSAT

    def test_constant_literal_comparison(self):
        # 1 = 2 has no column; the exact fallback proves it UNSAT.
        assert check("1 = 2 AND v = 'a'", v=FiniteDomain({"a"})) is UNSAT


class TestColumnConstraintUnit:
    def test_admits_respects_interval_inclusivity(self):
        c = ColumnConstraint()
        c.require_low(1, False)
        c.require_high(5, True)
        assert not c.admits(1)
        assert c.admits(2)
        assert c.admits(5)
        assert not c.admits(6)

    def test_tightening_keeps_strictest_bound(self):
        c = ColumnConstraint()
        c.require_low(1, True)
        c.require_low(3, False)
        assert not c.admits(3)
        assert c.admits(4)

    def test_same_bound_exclusive_wins(self):
        c = ColumnConstraint()
        c.require_low(3, True)
        c.require_low(3, False)
        assert not c.admits(3)

    def test_allowed_then_excluded(self):
        c = ColumnConstraint()
        c.require_in(["a", "b"])
        c.require_not_equal("a")
        assert not c.admits("a")
        assert c.admits("b")

    def test_satisfiability_has_no_truthiness(self):
        with pytest.raises(TypeError):
            bool(SAT)


class TestSoundnessProperty:
    """SAT/UNSAT verdicts must agree with brute-force enumeration."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y"]),
                st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
                st.integers(0, 4),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_verdict_matches_enumeration(self, triples):
        domain = FiniteDomain(set(range(5)))
        where = " AND ".join(f"{c} {op} {v}" for c, op, v in triples)
        verdict = check(where, x=domain, y=domain)

        # Brute-force ground truth over the 5x5 grid.
        from repro.predicates.evaluate import evaluate_predicate
        from repro.sqlparser.parser import parse_expression

        expr = parse_expression(where)
        truth = any(
            evaluate_predicate(expr, lambda ref, a=a, b=b: a if ref.name == "x" else b)
            for a in range(5)
            for b in range(5)
        )
        if verdict is SAT:
            assert truth
        elif verdict is UNSAT:
            assert not truth
        # UNKNOWN is always permitted.
