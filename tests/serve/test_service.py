"""QueryService: serving recency reports with admission control."""

import pytest

from repro.errors import TracError
from repro.obs import Telemetry
from repro.obs.instrument import SERVE_REQUEST_SECONDS
from repro.serve import QueryService, ServeConfig
from repro.serve.quota import QuotaExceeded
from repro.serve.service import mirror_into_memory

SQL = "SELECT mach_id FROM activity"


@pytest.fixture
def service(paper_memory_backend):
    with QueryService(paper_memory_backend, ServeConfig(workers=2)) as svc:
        yield svc


class TestQuery:
    def test_response_carries_rows_and_recency_report(self, service):
        doc = service.query(SQL, tenant="alice")
        assert doc["columns"] == ["mach_id"]
        assert sorted(row[0] for row in doc["rows"]) == ["m1", "m2", "m3"]
        assert doc["tenant"] == "alice"
        assert doc["method"] == "focused"
        # No predicate: every machine in the column domain is relevant.
        assert doc["relevant_sources"] == sorted(
            (f"m{i}" for i in range(1, 12)), key=str
        )
        assert doc["exceptional_sources"] == ["m2"]  # the month-stale source
        # Serving skips temp tables, so the exceptional split travels in
        # the structured field; the recency/consistency notices remain.
        assert any("least recent" in notice for notice in doc["notices"])
        assert any("Bound of inconsistency" in notice for notice in doc["notices"])
        assert doc["timings"]["total"] >= 0
        assert doc["queue_wait_seconds"] >= 0

    def test_naive_method_passes_through(self, service):
        doc = service.query(SQL, method="naive")
        assert doc["method"] == "naive"
        assert doc["minimal"] is False

    def test_bad_sql_raises_trac_error(self, service):
        with pytest.raises(TracError):
            service.query("SELECT nope FROM nothing")
        assert service.counts()["error"] == 1

    def test_empty_sql_rejected_before_admission(self, service):
        with pytest.raises(TracError):
            service.submit("   ")
        with pytest.raises(TracError):
            service.submit(SQL, tenant="")

    def test_counts_ok(self, service):
        service.query(SQL)
        service.query(SQL)
        counts = service.counts()
        assert counts["ok"] == 2
        assert counts["error"] == 0

    def test_submit_after_close_raises(self, paper_memory_backend):
        svc = QueryService(paper_memory_backend)
        svc.close()
        with pytest.raises(TracError):
            svc.submit(SQL)


class TestQuotaIntegration:
    def test_quota_rejections_surface_and_are_counted(self, paper_memory_backend):
        config = ServeConfig(workers=1, tenant_rate=0.0, tenant_burst=2.0)
        with QueryService(paper_memory_backend, config) as svc:
            svc.query(SQL)
            svc.query(SQL)
            with pytest.raises(QuotaExceeded) as exc_info:
                svc.submit(SQL)
            assert exc_info.value.kind == "quota"
            counts = svc.counts()
        assert counts["ok"] == 2
        assert counts["rejected_quota"] == 1

    def test_quota_released_after_completion(self, paper_memory_backend):
        config = ServeConfig(workers=1, max_inflight=1)
        with QueryService(paper_memory_backend, config) as svc:
            for _ in range(3):  # sequential: inflight never exceeds 1
                svc.query(SQL)
            assert svc.quotas.total_inflight() == 0


class TestTelemetry:
    def test_latency_histogram_and_trace_id(self, paper_memory_backend):
        tel = Telemetry()
        with QueryService(paper_memory_backend, telemetry=tel) as svc:
            doc = svc.query(SQL, tenant="alice")
            assert doc["trace_id"] is not None
            histograms = [
                m for m in tel.metrics.collect() if m.name == SERVE_REQUEST_SECONDS
            ]
            assert len(histograms) == 1
            assert histograms[0].count == 1
            assert dict(histograms[0].labels) == {"tenant": "alice"}
            p99 = svc.latency_quantile_ms(0.99)
            assert p99 is not None and p99 > 0
            # The serve span landed in the tracer with the request's trace.
            names = [s.name for s in tel.tracer.finished_spans()]
            assert "serve.request" in names

    def test_disabled_telemetry_still_serves(self, service):
        doc = service.query(SQL)
        assert doc["trace_id"] is None
        assert service.latency_quantile_ms() is None


class TestServingStatus:
    def test_status_document_shape(self, service):
        service.query(SQL, tenant="bob")
        status = service.serving_status()
        assert status["workers"] == 2
        assert status["requests"]["ok"] == 1
        assert status["inflight"] == 0
        assert "bob" in status["tenants"]
        assert status["req_per_s"] >= 0


class TestMirror:
    def test_mirror_into_memory_copies_all_tables(self, paper_sqlite_backend):
        memory = mirror_into_memory(paper_sqlite_backend)
        rows = memory.execute("SELECT mach_id FROM activity").rows
        assert sorted(r[0] for r in rows) == ["m1", "m2", "m3"]
        heartbeats = dict(memory.heartbeat_rows())
        assert set(heartbeats) == {f"m{i}" for i in range(1, 12)}
        with QueryService(memory) as svc:
            doc = svc.query(SQL)
            assert doc["exceptional_sources"] == ["m2"]
