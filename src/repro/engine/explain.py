"""EXPLAIN ANALYZE for the mini engine.

``explain_query`` executes a query with the evaluator's trace hook enabled
and renders the decisions the executor actually made — predicate push-downs
with their selectivities, the join order, and the join methods. Because the
trace is produced by the execution itself, it can never drift from the real
plan.

Two output forms:

* ``analyze=False`` (default) — the original flat string trace;
* ``analyze=True`` — the structured per-operator
  :class:`~repro.engine.profile.QueryProfile` rendered as a table, with
  per-operator wall time, rows in/out and selectivity. Obtain the profile
  object itself with :func:`profile_query`.
"""

from __future__ import annotations

from typing import List

from repro.engine.evaluate import execute_query
from repro.engine.profile import QueryProfile, profile_query
from repro.engine.relation import Database
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve

__all__ = ["explain_query", "profile_query", "QueryProfile"]


def explain_query(db: Database, sql: str, analyze: bool = False, lineage: bool = False) -> str:
    """Run ``sql`` and return its execution trace plus the result size.

    ``analyze=True`` returns the structured per-operator profile instead
    of the flat trace (rows in/out, selectivity, wall milliseconds);
    ``lineage=True`` additionally annotates each operator with its
    row-provenance fan-in (implies nothing without ``analyze``).
    """
    if analyze:
        return profile_query(db, sql, lineage=lineage).render()
    resolved = resolve(parse_query(sql), db.catalog)
    trace: List[str] = []
    result = execute_query(db, resolved, trace=trace)
    lines = [f"explain: {sql}"]
    lines.extend(f"  {entry}" for entry in trace)
    lines.append(f"  result: {len(result.rows)} row(s), columns {result.columns}")
    return "\n".join(lines)
