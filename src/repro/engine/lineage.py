"""Row-level lineage: which data sources produced each result row.

The executor's intermediate tuples are *environments* — maps from binding
key to the base-table row bound under that key — and they flow intact
through every join strategy (hash, nested loop, cross product) and every
filter. That gives lineage for free at projection time: for each binding
whose table schema declares a data source column (``c_s``, Section 3.3),
read the source id straight off the bound base row. The lineage of an
environment is the set of those ids, and because a join output env simply
*contains* both parents' bindings, join-output lineage is the union of the
parents' lineages by construction — no per-operator bookkeeping, and the
compiled and interpreted execution paths (which share the projection
machinery) produce byte-identical lineage.

Aggregates union the lineages of their group's member environments;
``DISTINCT`` unions the lineages of the duplicates it collapses (classic
why-provenance semantics, per Cheney et al.'s Provenance Traces).

A :class:`LineagePlan` is the per-query recipe: one ``(binding key,
source-column index)`` probe per source-bearing FROM binding. Plans are
built once per resolution (the resolved-query cache attaches one to every
lineage-enabled entry) and cost one tuple-index read per probe per output
row when enabled — and exactly nothing when disabled, since the executor
never touches this module on the lineage-off path.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Tuple

#: The lineage of one result row: the ids of every data source whose
#: tuples contributed to it.
Lineage = FrozenSet[str]

#: Shared lineage of rows no monitored source produced (e.g. rows built
#: purely from literals, or aggregate rows over an empty input).
EMPTY_LINEAGE: Lineage = frozenset()


class LineagePlan:
    """Per-query recipe for reading source ids out of environments.

    ``probes`` holds one ``(binding_key, column_index)`` pair per FROM
    binding whose schema declares a data source column; ``fanin`` (the
    probe count) bounds how many distinct sources any single output row
    can cite before aggregation.
    """

    __slots__ = ("probes",)

    def __init__(self, probes: List[Tuple[str, int]]) -> None:
        self.probes = probes

    @property
    def fanin(self) -> int:
        return len(self.probes)

    def __repr__(self) -> str:
        return f"LineagePlan(probes={self.probes!r})"


def build_lineage_plan(resolved) -> LineagePlan:
    """Build the probe list for a :class:`ResolvedQuery`."""
    probes: List[Tuple[str, int]] = []
    for binding in resolved.bindings:
        schema = binding.schema
        if schema.source_column is not None:
            probes.append((binding.key, schema.column_index(schema.source_column)))
    return LineagePlan(probes)


def lineage_plan_for(resolved) -> LineagePlan:
    """The resolution's attached plan (cache-provided), built on demand."""
    plan = getattr(resolved, "lineage_plan", None)
    if plan is None:
        plan = build_lineage_plan(resolved)
    return plan


def env_lineage(env, probes: List[Tuple[str, int]]) -> Lineage:
    """Lineage of one environment: non-NULL source ids across its probes."""
    out = set()
    for key, index in probes:
        value = env[key][index]
        if value is not None:
            out.add(str(value))
    return frozenset(out)


def union_lineage(lineages: Iterable[Lineage]) -> Lineage:
    """Union of many lineages (aggregate groups, DISTINCT collapses)."""
    out: set = set()
    for lineage in lineages:
        out |= lineage
    return frozenset(out)


def max_fanin(lineages: Optional[List[Lineage]]) -> int:
    """Largest per-row source set in a result's lineage (0 when empty)."""
    if not lineages:
        return 0
    return max(len(lineage) for lineage in lineages)


def distinct_sources(lineages: Optional[List[Lineage]]) -> List[str]:
    """Sorted ids of every source cited anywhere in a result's lineage."""
    if not lineages:
        return []
    return sorted(union_lineage(lineages))


def annotate_profile(profile, plan: LineagePlan, lineages: Optional[List[Lineage]]) -> None:
    """Stamp lineage fan-in onto a finished :class:`QueryProfile`.

    Replays the operator sequence the executor recorded: scans carry 1/0
    (does that binding contribute source ids), join steps the cumulative
    count of source-bearing bindings bound so far (the greedy join's
    starting relation is the scanned key that never appears as a join
    target), the cross product every probe at once, and the output
    operators (project/aggregate/sort/limit) the max per-row source-set
    size of the final result.
    """
    from repro.engine.profile import (
        OP_AGGREGATE,
        OP_CROSS,
        OP_JOIN,
        OP_LIMIT,
        OP_PROJECT,
        OP_SCAN,
        OP_SORT,
    )

    source_keys = {key for key, _ in plan.probes}
    scan_targets = [op.target for op in profile.operators if op.op == OP_SCAN]
    join_targets = {op.target for op in profile.operators if op.op == OP_JOIN}
    bound = {t for t in scan_targets if t not in join_targets}
    output_fanin = max_fanin(lineages)
    for op in profile.operators:
        if op.op == OP_SCAN:
            op.lineage_fanin = 1 if op.target in source_keys else 0
        elif op.op == OP_JOIN:
            bound.add(op.target)
            op.lineage_fanin = len(bound & source_keys)
        elif op.op == OP_CROSS:
            op.lineage_fanin = plan.fanin
        elif op.op in (OP_PROJECT, OP_AGGREGATE, OP_SORT, OP_LIMIT):
            op.lineage_fanin = output_fanin
    profile.lineage = {
        "enabled": True,
        "sources": distinct_sources(lineages),
        "max_fanin": output_fanin,
    }


__all__ = [
    "Lineage",
    "EMPTY_LINEAGE",
    "LineagePlan",
    "build_lineage_plan",
    "lineage_plan_for",
    "env_lineage",
    "union_lineage",
    "max_fanin",
    "distinct_sources",
    "annotate_profile",
]
