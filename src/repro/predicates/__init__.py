"""Predicate algebra: evaluation, DNF normalization, classification,
satisfiability.

This package implements the machinery of Section 4:

* :mod:`repro.predicates.evaluate` — SQL three-valued evaluation of predicate
  trees against concrete tuples (shared by the mini relational engine, the
  brute-force relevance oracle and the property-based tests);
* :mod:`repro.predicates.dnf` — conversion to disjunctive normal form with a
  blow-up guard (Corollary 1 reduces the problem to one conjunct at a time);
* :mod:`repro.predicates.classify` — the per-relation split of a conjunct's
  basic terms into ``Ps`` / ``Pr`` / ``Pm`` / ``Js`` / ``Jrm`` / ``Po``
  (Notation 4 and 6);
* :mod:`repro.predicates.satisfiability` — the "is ``Pr`` satisfiable in
  ``D1 x ... x Dk``" check that Theorems 3 and 4 require before the minimal
  guarantee applies.
"""

from repro.predicates.evaluate import evaluate_predicate, evaluate_truth, like_match
from repro.predicates.dnf import to_dnf, to_nnf, conjuncts_of, basic_terms_of
from repro.predicates.classify import (
    TermClass,
    ClassifiedConjunct,
    classify_conjunct,
    classify_term,
)
from repro.predicates.satisfiability import (
    Satisfiability,
    check_conjunction,
    column_constraint,
)

__all__ = [
    "evaluate_predicate",
    "evaluate_truth",
    "like_match",
    "to_dnf",
    "to_nnf",
    "conjuncts_of",
    "basic_terms_of",
    "TermClass",
    "ClassifiedConjunct",
    "classify_conjunct",
    "classify_term",
    "Satisfiability",
    "check_conjunction",
    "column_constraint",
]
