"""The ``trac top`` dashboard: live per-source recency at a glance.

A terminal dashboard in the spirit of ``top``: one row per source showing
its health state, last reported recency, current lag, a unicode sparkline
of the recent lag series, the z-score against the fleet, SLO burn, the
staleness-derived quality score (``qual``, the same decay curve the
provenance layer applies per row), the ingest-poll latency distribution
(p50/p95 milliseconds), and the supervisor's retry/restart/breaker
counters. It renders from a plain
**status document** — the same JSON the observatory server serves at
``/status`` — so the one renderer works both in-process (polling a
:class:`~repro.grid.simulator.GridSimulator` directly via
:func:`status_from_simulator`) and out-of-process (``trac top --url``
fetching over HTTP via :func:`fetch_status`).

The renderer is a pure function of the status document (easy to test,
no terminal required); :func:`run_top` adds the poll/clear/redraw loop.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence
from urllib.request import urlopen

from repro.core.quality import QualityModel
from repro.core.statistics import format_interval, mean_stddev
from repro.errors import TracError

#: Eight-level block characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ANSI: clear screen and home the cursor.
CLEAR = "\x1b[2J\x1b[H"

_STATE_ORDER = {"degraded": 0, "restarting": 1, "backing_off": 2, "healthy": 3}


def sparkline(values: Sequence[float], width: int = 16) -> str:
    """Render ``values`` (most recent last) as a fixed-width sparkline.

    The last ``width`` values are scaled to the min..max of that window;
    a flat series renders as all-low, an empty one as spaces.
    """
    if width <= 0:
        return ""
    tail = list(values)[-width:]
    if not tail:
        return " " * width
    lo, hi = min(tail), max(tail)
    span = hi - lo
    chars: List[str] = []
    for v in tail:
        if span <= 0:
            chars.append(SPARK_CHARS[0])
        else:
            idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[idx])
    return "".join(chars).rjust(width)


# -- status documents -------------------------------------------------------


def status_from_simulator(sim, slo=None) -> dict:
    """Build the dashboard status document from a live simulator.

    Duck-typed against :class:`~repro.grid.simulator.GridSimulator`
    (``now``, ``sniffers``, ``supervisors``, ``health``) so ``repro.obs``
    never imports ``repro.grid``.
    """
    now = sim.now
    recencies: Dict[str, float] = {}
    for mid, sniffer in sim.sniffers.items():
        reported = sniffer._reported_recency
        if reported != float("-inf"):
            recencies[mid] = reported
    ages = {mid: max(0.0, now - r) for mid, r in recencies.items()}
    mean, stddev = mean_stddev(list(ages.values())) if ages else (0.0, 0.0)

    slo_status = slo.status() if slo is not None else None
    slo_by_source = (
        {s.source_id: s for s in slo_status.sources} if slo_status is not None else {}
    )

    poll_fn = getattr(sim, "poll_latency_ms", None)
    quality_model = QualityModel.from_slo(slo) if slo is not None else QualityModel()
    sources: List[dict] = []
    for mid in sorted(sim.sniffers):
        supervisor = sim.supervisors.get(mid)
        stats = supervisor.stats() if supervisor is not None else {}
        entry = sim.health.entry_of(mid) if sim.health is not None else None
        age = ages.get(mid)
        z = (age - mean) / stddev if age is not None and stddev > 0 else 0.0
        source_slo = slo_by_source.get(mid)
        series = slo.series(mid) if slo is not None else []
        poll_series = list(poll_fn(mid)) if callable(poll_fn) else []
        state = entry.status if entry is not None else "healthy"
        lag = source_slo.latest if source_slo is not None else age
        quality: Optional[float] = None
        if lag is not None:
            # Same staleness-decay curve the reporter applies per row
            # (docs/PROVENANCE.md), so the dashboard and the provenance
            # block agree on what a source is currently worth.
            quality = quality_model.freshness(lag)
            if state == "degraded":
                quality *= quality_model.degraded_penalty
        sources.append(
            {
                "id": mid,
                "state": state,
                "reason": entry.reason if entry is not None else None,
                "recency": recencies.get(mid),
                "age": age,
                "z": z,
                "quality": quality,
                "retries": stats.get("retries", 0),
                "restarts": stats.get("restarts", 0),
                "breaker": stats.get("breaker", "closed"),
                "backlog": getattr(sim.sniffers[mid], "backlog", 0),
                "lag": source_slo.latest if source_slo is not None else age,
                "lag_p95": source_slo.p95 if source_slo is not None else None,
                "burn": source_slo.burn if source_slo is not None else None,
                "lag_series": [lag for _, lag in series],
                "poll_ms_series": poll_series,
            }
        )
    doc: dict = {"now": now, "wall": time.time(), "sources": sources}
    if slo_status is not None:
        doc["slo"] = slo_status.to_dict()
    maintainer = getattr(sim, "incremental", None)
    if maintainer is not None:
        doc["incremental"] = maintainer.stats()
    return doc


def fetch_status(url: str, timeout: float = 5.0) -> dict:
    """GET the ``/status`` document from an observatory server."""
    target = url.rstrip("/")
    if not target.endswith("/status"):
        target += "/status"
    try:
        with urlopen(target, timeout=timeout) as response:
            body = response.read().decode("utf-8")
    except OSError as exc:
        raise TracError(f"cannot reach observatory at {target}: {exc}") from exc
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as exc:
        raise TracError(f"observatory at {target} returned non-JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise TracError(f"observatory at {target} returned a non-object document")
    return doc


# -- rendering --------------------------------------------------------------


def _fmt_age(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return format_interval(value)


def _fmt_poll_ms(series: Sequence[float]) -> str:
    """Summarise a poll-latency series as ``p50/p95`` milliseconds.

    Old status documents (pre-tracing) have no ``poll_ms_series`` key;
    they render as ``-`` rather than erroring, keeping ``trac top``
    backward compatible with older observatories.
    """
    values = sorted(series)
    if not values:
        return "-"
    p50 = values[int(0.50 * (len(values) - 1))]
    p95 = values[int(0.95 * (len(values) - 1))]
    return f"{p50:.2f}/{p95:.2f}"


def render_top(status: dict, width: int = 16) -> str:
    """Render one dashboard frame from a status document."""
    lines: List[str] = []
    now = status.get("now")
    slo = status.get("slo")
    header = "trac top"
    if now is not None:
        header += f" — t={now:g}s"
    incremental = status.get("incremental")
    if incremental:
        # Older observatories don't send this block; omit the segment then.
        hit_rate = incremental.get("hit_rate", 0.0) or 0.0
        header += (
            f" — inc {hit_rate * 100:.0f}% hit"
            f" ({incremental.get('entries', 0)} sets,"
            f" {incremental.get('invalidations', 0)} inval)"
        )
        if incremental.get("degraded"):
            header += " DEGRADED"
    if slo:
        breached = slo.get("breached") or []
        verdict = (
            f"SLO BREACHED ({', '.join(breached)})" if breached else "SLO ok"
        )
        header += (
            f" — p95<{slo.get('target_p95'):g}s budget={slo.get('budget'):g} "
            f"worst_burn={slo.get('worst_burn', 0.0):.2f} — {verdict}"
        )
    lines.append(header)

    serving = status.get("serving")
    if serving:
        # The observatory injects this block when a query service is wired
        # (req/s and p99 come from the trac_serve_request_seconds histogram).
        requests = serving.get("requests") or {}
        p99 = serving.get("p99_ms")
        rejected = (
            requests.get("rejected_quota", 0)
            + requests.get("rejected_inflight", 0)
            + requests.get("rejected_queue", 0)
        )
        p99_text = f"{p99:.1f}ms" if p99 is not None else "-"
        lines.append(
            f"serve: {serving.get('req_per_s', 0.0):g} req/s"
            f"  p99={p99_text}"
            f"  ok={requests.get('ok', 0)}"
            f"  429={rejected}"
            f"  deadline={requests.get('deadline', 0)}"
            f"  err={requests.get('error', 0)}"
            f"  inflight={serving.get('inflight', 0)}"
            f"  queue={serving.get('queue_depth', 0)}/{serving.get('queue_capacity', 0)}"
        )

    federation = status.get("federation")
    if federation:
        # The sharded simulate path injects this block; missing shards and
        # open breakers are the partial-report early warning.
        missing = federation.get("missing") or []
        open_breakers = sorted(
            sid
            for sid, state in (federation.get("breakers") or {}).items()
            if state != "closed"
        )
        line = (
            f"shards: {federation.get('shards_ok', 0)}"
            f"/{federation.get('shards_total', 0)} ok"
            f"  reports={federation.get('reports_total', 0)}"
            f"  partial={federation.get('partial_reports', 0)}"
        )
        if missing:
            line += f"  MISSING: {', '.join(missing)}"
        if open_breakers:
            line += f"  breakers: {', '.join(open_breakers)}"
        lines.append(line)

    sources = status.get("sources") or []
    if not sources:
        lines.append("  (no sources reporting yet)")
        return "\n".join(lines) + "\n"

    headers = (
        "source", "state", "recency", "age", "z", "burn", "qual",
        "lag " + "·" * max(0, width - 4), "poll ms", "retry", "restart", "breaker",
    )
    rows: List[tuple] = []
    ordered = sorted(
        sources,
        key=lambda s: (_STATE_ORDER.get(s.get("state", "healthy"), 9), s.get("id", "")),
    )
    for src in ordered:
        burn = src.get("burn")
        quality = src.get("quality")
        rows.append(
            (
                str(src.get("id", "?")),
                str(src.get("state", "?")),
                _fmt_age(src.get("recency")) if src.get("recency") is None
                else f"{src['recency']:g}",
                _fmt_age(src.get("age")),
                f"{src.get('z', 0.0):+.2f}",
                f"{burn:.2f}" if burn is not None else "-",
                f"{quality:.2f}" if quality is not None else "-",
                sparkline(src.get("lag_series") or [], width),
                _fmt_poll_ms(src.get("poll_ms_series") or []),
                str(src.get("retries", 0)),
                str(src.get("restarts", 0)),
                str(src.get("breaker", "-")),
            )
        )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines) + "\n"


def run_top(
    fetch: Callable[[], dict],
    interval: float = 2.0,
    iterations: Optional[int] = None,
    write: Optional[Callable[[str], object]] = None,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """The poll/redraw loop behind ``trac top``.

    ``fetch`` returns a status document each frame; ``iterations=None``
    loops until interrupted. Returns the number of frames rendered.
    """
    if write is None:
        write = sys.stdout.write
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                status = fetch()
            except TracError as exc:
                write(f"trac top: {exc}\n")
                break
            if clear:
                write(CLEAR)
            write(render_top(status))
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames
