"""SIGTERM is a clean shutdown, not a crash.

``trac simulate`` (and the shard server, covered in tests/federation)
installs a SIGTERM handler that stops the step loop at a tick boundary,
flushes the WAL and writes a final checkpoint before exiting 0. The proof:
kill a durable run mid-flight with SIGTERM, then show (a) exit code 0 with
the shutdown banner, (b) ``trac recover`` sees zero torn segments, and
(c) a ``--resume`` run picks up from the stopping point without replaying
garbage.
"""

import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def run_cli(argv, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
        **kwargs,
    )


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def test_sigterm_drains_flushes_and_resumes(tmp_path):
    env = cli_env()
    data_dir = str(tmp_path / "wal")
    db = str(tmp_path / "sim.sqlite")

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "simulate",
            "--db", db,
            "--machines", "3",
            "--duration", "1000000",
            "--data-dir", data_dir,
            "--fsync", "always",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        time.sleep(2.0)
        assert process.poll() is None, process.stdout.read()
        process.send_signal(signal.SIGTERM)
        stdout, _ = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    assert process.returncode == 0, stdout
    assert "SIGTERM: stopping early" in stdout
    assert "done at t=" in stdout  # the normal teardown still ran

    # The WAL it left behind is clean: no torn tail.
    recover = run_cli(["recover", "--data-dir", data_dir], env)
    assert recover.returncode == 0, recover.stdout + recover.stderr
    assert "torn segments       : 0" in recover.stdout

    # And a resumed run continues from the stopping point.
    resume = run_cli(
        [
            "simulate",
            "--db", str(tmp_path / "resumed.sqlite"),
            "--machines", "3",
            "--duration", "30",
            "--data-dir", data_dir,
            "--resume",
            "--fsync", "always",
        ],
        env,
    )
    assert resume.returncode == 0, resume.stdout + resume.stderr
    assert "0 torn" in resume.stdout


def test_sigterm_stops_trac_serve_cleanly(tmp_path):
    env = cli_env()
    db = str(tmp_path / "serve.sqlite")
    seed = run_cli(
        ["simulate", "--db", db, "--machines", "3", "--duration", "30"], env
    )
    assert seed.returncode == 0, seed.stdout + seed.stderr

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--db", db,
            "--port", "0",
            "--duration", "120",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        deadline = time.monotonic() + 30.0
        banner = []
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            banner.append(line)
            if "serving" in line:
                break
        else:
            raise AssertionError(f"server never came up: {''.join(banner)}")
        process.send_signal(signal.SIGTERM)
        stdout, _ = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    assert process.returncode == 0, "".join(banner) + stdout
    assert "SIGTERM: draining" in stdout
