"""The observatory HTTP server, scraped over real sockets."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.health import DEGRADED, HEALTHY, SourceHealth
from repro.obs import Telemetry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObservatoryServer, serve


def get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode(
            "utf-8"
        )


@pytest.fixture()
def telemetry():
    tel = Telemetry()
    tel.metrics.counter("trac_probe_total", help="probe").inc(3)
    with tel.tracer.span("work", machine="m1"):
        pass
    tel.emit("sniffer.retry", source="m1", severity="warning", attempt=1)
    return tel


class TestEndpoints:
    def test_metrics_is_prometheus_text(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            status, ctype, body = get(server.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert "trac_probe_total 3" in body

    def test_healthz_reports_degraded_sources(self, telemetry):
        health = SourceHealth()
        health.mark("m1", HEALTHY)
        health.mark("m2", DEGRADED, reason="silent", at=40.0)
        breakers = lambda: {"m1": "closed", "m2": "open"}  # noqa: E731
        with ObservatoryServer(telemetry, health=health, breakers=breakers) as server:
            _, ctype, body = get(server.url + "/healthz")
        assert ctype.startswith("application/json")
        doc = json.loads(body)
        assert doc["status"] == "degraded"
        assert doc["degraded"] == ["m2"]
        assert doc["sources"]["m2"]["reason"] == "silent"
        assert doc["breakers"] == {"m1": "closed", "m2": "open"}
        assert doc["events"]["total"] == 1

    def test_healthz_without_health_registry_is_ok(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            doc = json.loads(get(server.url + "/healthz")[2])
        assert doc["status"] == "ok"
        assert doc["sources"] == {}

    def test_spans_ndjson_with_limit(self, telemetry):
        for i in range(5):
            with telemetry.tracer.span(f"extra{i}"):
                pass
        with ObservatoryServer(telemetry) as server:
            _, ctype, body = get(server.url + "/spans?limit=2")
        assert ctype.startswith("application/x-ndjson")
        lines = [json.loads(line) for line in body.splitlines()]
        assert [s["name"] for s in lines] == ["extra3", "extra4"]

    def test_events_ndjson(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            _, _, body = get(server.url + "/events")
        records = [json.loads(line) for line in body.splitlines()]
        assert [r["name"] for r in records] == ["sniffer.retry"]
        assert records[0]["attributes"] == {"attempt": 1}

    def test_status_uses_the_provider(self, telemetry):
        provider = lambda: {"now": 42.0, "sources": []}  # noqa: E731
        with ObservatoryServer(telemetry, status_provider=provider) as server:
            doc = json.loads(get(server.url + "/status")[2])
        assert doc == {"now": 42.0, "sources": []}

    def test_status_defaults_to_healthz_wrapper(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            doc = json.loads(get(server.url + "/status")[2])
        assert doc["healthz"]["status"] == "ok"

    def test_unknown_path_is_404_with_endpoint_list(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/nope")
            assert excinfo.value.code == 404
            doc = json.loads(excinfo.value.read().decode("utf-8"))
        assert "/metrics" in doc["endpoints"]

    def test_bad_limit_falls_back_to_default(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            status, _, _ = get(server.url + "/events?limit=bogus")
        assert status == 200


class TestLifecycle:
    def test_ephemeral_port_and_url(self, telemetry):
        server = ObservatoryServer(telemetry, port=0)
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        server.stop()

    def test_start_is_idempotent_and_stop_releases(self, telemetry):
        server = ObservatoryServer(telemetry).start()
        assert server.start() is server
        port = server.port
        server.stop()
        # Port is free again: a new server can bind it.
        rebound = ObservatoryServer(telemetry, port=port)
        rebound.stop()

    def test_serve_helper_returns_running_server(self, telemetry):
        server = serve(telemetry)
        try:
            assert get(server.url + "/metrics")[0] == 200
        finally:
            server.stop()

    def test_obs_namespace_serve_is_lazy(self, telemetry):
        from repro import obs

        server = obs.serve(telemetry)
        try:
            assert get(server.url + "/healthz")[0] == 200
        finally:
            server.stop()
