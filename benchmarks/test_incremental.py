"""Incremental maintenance: steady-state hot-query report latency.

Same shape as ``tools/check_incremental_speedup.py`` but under
pytest-benchmark so the numbers land in the JSON output: a hot
predicate-stable query repeated against a heartbeat-heavy backend, served
from scratch vs from a materialized relevant-source set. Each incremental
benchmark stamps the maintainer's hit rate and update count into
``extra_info`` so they appear as columns in ``--benchmark-json`` exports.

Run:  pytest benchmarks/test_incremental.py --benchmark-only
"""

import pytest

from repro import Catalog, Column, MemoryBackend, TableSchema
from repro.core.report import RecencyReporter
from repro.incremental import IncrementalMaintainer

NUM_SOURCES = 4000

HOT_QUERY = (
    "SELECT mach_id FROM activity "
    "WHERE mach_id IN ('s1', 's2', 's3') AND value = 'idle'"
)


def _build_backend() -> MemoryBackend:
    catalog = Catalog(
        [
            TableSchema(
                "activity",
                [Column("mach_id", "TEXT"), Column("value", "TEXT")],
                source_column="mach_id",
            )
        ]
    )
    backend = MemoryBackend(catalog)
    backend.insert_rows(
        "activity", [(f"s{i}", "idle" if i != 2 else "busy") for i in range(1, 5)]
    )
    for i in range(NUM_SOURCES):
        backend.upsert_heartbeat(f"s{i}", 1000.0 + i)
    return backend


@pytest.fixture(scope="module")
def recompute_reporter():
    backend = _build_backend()
    return RecencyReporter(backend, create_temp_tables=False, plan_cache_size=32)


@pytest.fixture(scope="module")
def incremental_setup():
    backend = _build_backend()
    maintainer = IncrementalMaintainer(backend, maxsize=32)
    reporter = RecencyReporter(
        backend,
        create_temp_tables=False,
        plan_cache_size=32,
        incremental=maintainer,
    )
    return backend, reporter, maintainer


def test_hot_report_recompute(benchmark, recompute_reporter):
    benchmark.group = "incremental-hot-report"
    benchmark(lambda: recompute_reporter.report(HOT_QUERY, method="focused"))


def test_hot_report_incremental(benchmark, incremental_setup):
    _, reporter, maintainer = incremental_setup
    benchmark.group = "incremental-hot-report"
    reporter.report(HOT_QUERY)  # registration miss happens outside the timer
    benchmark(lambda: reporter.report(HOT_QUERY, method="focused"))
    stats = maintainer.stats()
    benchmark.extra_info["hit_rate"] = round(stats["hit_rate"], 4)
    benchmark.extra_info["materialized_sets"] = stats["entries"]
    benchmark.extra_info["maintenance_updates"] = stats["updates"]


def test_hot_report_incremental_with_heartbeat_stream(benchmark, incremental_setup):
    """Maintenance cost charged inside the timer: ten heartbeats land
    before every report, as in the steady-state guard."""
    backend, reporter, maintainer = incremental_setup
    benchmark.group = "incremental-hot-report"
    reporter.report(HOT_QUERY)
    tick = [0]

    def step():
        for _ in range(10):
            tick[0] += 1
            backend.upsert_heartbeat(f"s{tick[0] % NUM_SOURCES}", 2000.0 + tick[0])
        reporter.report(HOT_QUERY, method="focused")

    benchmark(step)
    stats = maintainer.stats()
    benchmark.extra_info["hit_rate"] = round(stats["hit_rate"], 4)
    benchmark.extra_info["maintenance_updates"] = stats["updates"]
