"""The trac top dashboard: sparklines, status documents, rendering, loop."""

import json

import pytest

from repro.errors import TracError
from repro.obs.dashboard import (
    CLEAR,
    SPARK_CHARS,
    fetch_status,
    render_top,
    run_top,
    sparkline,
    status_from_simulator,
)


class TestSparkline:
    def test_empty_series_is_blank(self):
        assert sparkline([], width=4) == "    "

    def test_flat_series_is_all_low(self):
        assert sparkline([5.0, 5.0, 5.0], width=3) == SPARK_CHARS[0] * 3

    def test_ramp_hits_both_extremes(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert out[0] == SPARK_CHARS[0]
        assert out[-1] == SPARK_CHARS[-1]

    def test_short_series_right_aligned(self):
        out = sparkline([1.0, 2.0], width=6)
        assert len(out) == 6
        assert out.startswith(" " * 4)

    def test_only_last_width_values_used(self):
        # Huge early spike outside the window must not flatten the tail.
        out = sparkline([1000.0, 1.0, 2.0, 3.0], width=3)
        assert out[-1] == SPARK_CHARS[-1]

    def test_zero_width(self):
        assert sparkline([1.0], width=0) == ""


class TestRenderTop:
    def test_no_sources(self):
        frame = render_top({"now": 10.0, "sources": []})
        assert "trac top — t=10s" in frame
        assert "(no sources reporting yet)" in frame

    def test_table_sorted_by_state_severity(self):
        status = {
            "now": 100.0,
            "sources": [
                {"id": "m1", "state": "healthy", "recency": 99.0, "age": 1.0,
                 "z": 0.1, "burn": 0.0, "lag_series": [1.0], "retries": 0,
                 "restarts": 0, "breaker": "closed"},
                {"id": "m2", "state": "degraded", "recency": 40.0, "age": 60.0,
                 "z": 1.4, "burn": 2.0, "lag_series": [10.0, 60.0], "retries": 3,
                 "restarts": 1, "breaker": "open"},
            ],
        }
        frame = render_top(status)
        lines = frame.splitlines()
        m2_line = next(i for i, line in enumerate(lines) if line.startswith("m2"))
        m1_line = next(i for i, line in enumerate(lines) if line.startswith("m1"))
        assert m2_line < m1_line  # degraded floats to the top
        assert "open" in lines[m2_line]

    def test_slo_verdict_in_header(self):
        status = {
            "now": 5.0,
            "sources": [],
            "slo": {"target_p95": 60.0, "budget": 0.05, "worst_burn": 2.5,
                    "breached": ["m2"]},
        }
        frame = render_top(status)
        assert "SLO BREACHED (m2)" in frame
        assert "worst_burn=2.50" in frame
        ok = dict(status, slo={"target_p95": 60.0, "budget": 0.05,
                               "worst_burn": 0.1, "breached": []})
        assert "SLO ok" in render_top(ok)

    def test_missing_fields_render_dashes(self):
        frame = render_top({"sources": [{"id": "m1"}]})
        assert "m1" in frame  # renders without KeyError


class TestStatusFromSimulator:
    def make_sim(self):
        from repro.core.slo import StalenessSLO
        from repro.grid.simulator import GridSimulator, SimulationConfig

        slo = StalenessSLO(target_p95=5.0, budget=0.05, window=64)
        sim = GridSimulator(SimulationConfig(num_machines=3, seed=11), slo=slo)
        for _ in range(30):
            sim.step()
        return sim, slo

    def test_document_shape(self):
        sim, slo = self.make_sim()
        doc = status_from_simulator(sim, slo)
        assert doc["now"] == sim.now
        assert len(doc["sources"]) == 3
        src = doc["sources"][0]
        for key in ("id", "state", "recency", "age", "z", "retries",
                    "restarts", "breaker", "lag", "burn", "lag_series"):
            assert key in src
        assert doc["slo"]["target_p95"] == 5.0
        json.dumps(doc)  # must be JSON-serializable (/status contract)

    def test_without_slo(self):
        sim, _ = self.make_sim()
        doc = status_from_simulator(sim)
        assert "slo" not in doc
        assert doc["sources"][0]["burn"] is None

    def test_renderable(self):
        sim, slo = self.make_sim()
        frame = render_top(status_from_simulator(sim, slo))
        assert "m1" in frame and "m3" in frame


class TestFetchStatus:
    def test_fetch_from_live_server(self):
        from repro.obs import Telemetry
        from repro.obs.server import ObservatoryServer

        provider = lambda: {"now": 7.0, "sources": []}  # noqa: E731
        with ObservatoryServer(Telemetry(), status_provider=provider) as server:
            assert fetch_status(server.url) == {"now": 7.0, "sources": []}
            # Explicit /status suffix works too.
            assert fetch_status(server.url + "/status")["now"] == 7.0

    def test_unreachable_raises_trac_error(self):
        with pytest.raises(TracError, match="cannot reach"):
            fetch_status("http://127.0.0.1:9", timeout=0.5)


class TestRunTop:
    def test_renders_requested_iterations(self):
        writes = []
        sleeps = []
        frames = run_top(
            fetch=lambda: {"now": 1.0, "sources": []},
            interval=0.5,
            iterations=3,
            write=writes.append,
            clear=True,
            sleep=sleeps.append,
        )
        assert frames == 3
        assert writes.count(CLEAR) == 3
        assert sleeps == [0.5, 0.5]  # no sleep after the final frame

    def test_no_clear(self):
        writes = []
        run_top(fetch=lambda: {"sources": []}, iterations=1, write=writes.append,
                clear=False)
        assert CLEAR not in writes

    def test_fetch_failure_stops_the_loop(self):
        writes = []

        def fetch():
            raise TracError("gone")

        frames = run_top(fetch=fetch, iterations=5, write=writes.append)
        assert frames == 0
        assert any("trac top: gone" in w for w in writes)

    def test_keyboard_interrupt_is_graceful(self):
        calls = {"n": 0}

        def fetch():
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return {"sources": []}

        frames = run_top(fetch=fetch, write=lambda s: None, sleep=lambda s: None)
        assert frames == 2
