"""Benchmark-harness tests: metrics, timing protocol, figure builders."""

import pytest

from repro.bench.harness import MethodMeasurement, measure_methods, time_call
from repro.bench.metrics import false_positive_rate, naive_fpr, overhead
from repro.bench.reporting import ascii_table, format_cell, rows_from_dicts, write_csv
from repro.core.report import RecencyReporter
from repro.errors import TracError


class TestMetrics:
    def test_fpr_zero_when_exact(self):
        assert false_positive_rate({"a", "b"}, {"a", "b"}) == 0.0

    def test_fpr_counts_extras(self):
        assert false_positive_rate({"a", "b", "c"}, {"a"}) == 2.0

    def test_fpr_rejects_incomplete_answer(self):
        with pytest.raises(TracError):
            false_positive_rate({"a"}, {"a", "b"})

    def test_fpr_empty_exact_and_empty_reported(self):
        assert false_positive_rate(set(), set()) == 0.0

    def test_fpr_empty_exact_with_reported_rejected(self):
        with pytest.raises(TracError):
            false_positive_rate({"a"}, set())

    def test_paper_q1_closed_form(self):
        """(100000 - 6) / 6 — the paper prints 16665."""
        assert naive_fpr(100_000, 6) == pytest.approx(16665.667, abs=0.001)

    def test_paper_q2_closed_form(self):
        assert naive_fpr(100_000, 100_000 - 6) == pytest.approx(0.00006, abs=1e-6)

    def test_naive_fpr_validation(self):
        with pytest.raises(TracError):
            naive_fpr(10, 0)
        with pytest.raises(TracError):
            naive_fpr(10, 11)

    def test_overhead(self):
        assert overhead(1.0, 1.5) == pytest.approx(0.5)
        assert overhead(2.0, 1.0) == pytest.approx(-0.5)
        with pytest.raises(TracError):
            overhead(0.0, 1.0)


class TestTimeCall:
    def test_returns_positive_mean(self):
        assert time_call(lambda: sum(range(100)), runs=3) > 0

    def test_runs_validated(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, runs=0)

    def test_call_count_with_warmup(self):
        calls = []
        time_call(lambda: calls.append(1), runs=4)
        assert len(calls) == 4

    def test_single_run_no_drop(self):
        calls = []
        assert time_call(lambda: calls.append(1), runs=1) > 0
        assert len(calls) == 1


class TestMeasureMethods:
    def test_all_methods_measured(self, paper_memory_backend):
        reporter = RecencyReporter(paper_memory_backend, create_temp_tables=False)
        sql = "SELECT mach_id FROM activity WHERE mach_id = 'm1'"
        results = measure_methods(reporter, sql, runs=2)
        assert set(results) == {"focused", "focused_hardcoded", "naive"}
        for m in results.values():
            assert m.t_plain > 0
            assert m.t_report > 0

    def test_relevant_counts_differ_between_methods(self, paper_memory_backend):
        reporter = RecencyReporter(paper_memory_backend, create_temp_tables=False)
        sql = "SELECT mach_id FROM activity WHERE mach_id = 'm1'"
        results = measure_methods(reporter, sql, runs=2)
        assert results["focused"].relevant_count == 1
        assert results["naive"].relevant_count == 11

    def test_measurement_repr_contains_overhead(self):
        m = MethodMeasurement("focused", 1.0, 2.0, 5)
        assert "100.00%" in repr(m)


class TestReporting:
    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("+")
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "alpha" in table

    def test_format_cell(self):
        assert format_cell(0.0) == "0"
        assert format_cell(12345.6) == "12,346"
        assert format_cell(1.23456) == "1.235"
        assert format_cell(0.00012) == "0.00012"
        assert format_cell("x") == "x"

    def test_rows_from_dicts(self):
        rows = rows_from_dicts([{"a": 1, "b": 2}], ["b", "a", "missing"])
        assert rows == [[2, 1, ""]]

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ["a", "b"], [[1, 2]])
        assert path.read_text().splitlines() == ["a,b", "1,2"]


class TestFigureBuilders:
    """Smoke tests at miniature scale: the builders run end to end and
    produce the expected record shapes and invariants."""

    def test_fpr_results_focused_is_exact(self):
        from repro.bench.figures import fpr_results

        records = fpr_results(num_sources=40, data_ratio=5)
        assert {r["query"] for r in records} == {"Q1", "Q2", "Q3", "Q4"}
        for record in records:
            assert record["fpr_focused"] == 0.0
            if record["query"] in ("Q1", "Q3"):
                assert record["fpr_naive"] > 1.0
            else:
                assert record["fpr_naive"] < 0.5

    def test_figure1_series_shape(self):
        from repro.bench.figures import figure1_series

        records = figure1_series(total_rows=2000, runs=1, backend_kind="sqlite")
        queries = {r["query"] for r in records}
        methods = {r["method"] for r in records}
        assert queries == {"Q1", "Q2", "Q3", "Q4"}
        assert methods == {"focused", "focused_hardcoded", "naive"}
        for record in records:
            assert record["data_ratio"] * record["num_sources"] == 2000

    def test_figure2_series_shape(self):
        from repro.bench.figures import figure2_series

        records = figure2_series(total_rows=2000, runs=1, backend_kind="sqlite")
        assert {r["query"] for r in records} == {"Q1", "Q3"}
        for record in records:
            assert record["with_report_s"] > 0
            assert record["without_report_s"] > 0

    def test_cli_fpr(self, capsys):
        from repro.bench.figures import main

        assert main(["fpr", "--fpr-sources", "30"]) == 0
        out = capsys.readouterr().out
        assert "False positive rates" in out
        assert "Q4" in out


class TestCliPlot:
    def test_fig1_with_plot_flag(self, capsys):
        from repro.bench.figures import main

        assert main(["fig1", "--total-rows", "2000", "--runs", "1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "overhead (%) vs data ratio (log-log)" in out
        assert "legend:" in out

    def test_csv_dir_writes_files(self, tmp_path, capsys):
        from repro.bench.figures import main

        assert main(
            ["fpr", "--fpr-sources", "30", "--csv-dir", str(tmp_path)]
        ) == 0
        assert (tmp_path / "fpr.csv").exists()
