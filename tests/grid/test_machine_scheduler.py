"""Machine and scheduler behaviour tests."""

import random

import pytest

from repro.errors import SimulationError
from repro.grid.events import EventKind
from repro.grid.job import Job, JobState
from repro.grid.machine import Machine
from repro.grid.scheduler import Scheduler


class TestMachine:
    def test_set_activity_logs_event(self):
        machine = Machine("m1")
        machine.set_activity(1.0, "busy")
        assert machine.activity == "busy"
        events = list(machine.log)
        assert events[-1].kind is EventKind.MACHINE_STATE
        assert events[-1].value("value") == "busy"

    def test_invalid_activity_rejected(self):
        with pytest.raises(SimulationError):
            Machine("m1").set_activity(1.0, "sleeping")

    def test_add_neighbor(self):
        machine = Machine("m1")
        machine.add_neighbor(1.0, "m2")
        assert machine.neighbors == ["m2"]
        assert list(machine.log)[-1].value("neighbor") == "m2"

    def test_start_job_makes_busy(self):
        machine = Machine("m1")
        machine.start_job(1.0, "j1")
        assert machine.activity == "busy"
        assert "j1" in machine.running_jobs
        kinds = [e.kind for e in machine.log]
        assert EventKind.JOB_STARTED in kinds
        assert EventKind.MACHINE_STATE in kinds

    def test_complete_last_job_goes_idle(self):
        machine = Machine("m1")
        machine.start_job(1.0, "j1")
        machine.complete_job(2.0, "j1")
        assert machine.activity == "idle"
        assert machine.running_jobs == set()

    def test_completing_one_of_two_jobs_stays_busy(self):
        machine = Machine("m1")
        machine.start_job(1.0, "j1")
        machine.start_job(1.0, "j2")
        machine.complete_job(2.0, "j1")
        assert machine.activity == "busy"

    def test_failed_machine_writes_nothing(self):
        machine = Machine("m1")
        machine.fail()
        machine.set_activity(1.0, "busy")
        machine.heartbeat(2.0)
        assert len(machine.log) == 0

    def test_recover_emits_heartbeat(self):
        machine = Machine("m1")
        machine.fail()
        machine.recover(5.0)
        events = list(machine.log)
        assert events[-1].kind is EventKind.HEARTBEAT
        assert events[-1].timestamp == 5.0


class TestJob:
    def test_lifecycle(self):
        job = Job("j1", "alice", "m1", submitted_at=0.0)
        assert job.state is JobState.SUBMITTED
        job.transition(JobState.SCHEDULED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.COMPLETED)
        assert not job.is_active

    def test_illegal_transition(self):
        job = Job("j1", "alice", "m1", submitted_at=0.0)
        with pytest.raises(SimulationError):
            job.transition(JobState.RUNNING)  # must be scheduled first

    def test_completed_is_terminal(self):
        job = Job("j1", "alice", "m1", submitted_at=0.0)
        job.transition(JobState.SCHEDULED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.COMPLETED)
        with pytest.raises(SimulationError):
            job.transition(JobState.SCHEDULED)

    def test_suspend_resume(self):
        job = Job("j1", "alice", "m1", submitted_at=0.0)
        job.transition(JobState.SCHEDULED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.SUSPENDED)
        job.transition(JobState.RUNNING)
        assert job.state is JobState.RUNNING


class TestScheduler:
    def _setup(self):
        machines = {mid: Machine(mid) for mid in ("m1", "m2", "m3")}
        machines["m1"].add_neighbor(0.0, "m2")
        machines["m1"].add_neighbor(0.0, "m3")
        scheduler = Scheduler(machines["m1"], random.Random(7))
        return machines, scheduler

    def test_submit_logs_event(self):
        machines, scheduler = self._setup()
        job = Job("j1", "alice", "m1", submitted_at=1.0)
        scheduler.submit(1.0, job)
        events = [e for e in machines["m1"].log if e.kind is EventKind.JOB_SUBMITTED]
        assert len(events) == 1
        assert events[0].value("job_id") == "j1"

    def test_submit_to_wrong_machine_rejected(self):
        machines, scheduler = self._setup()
        job = Job("j1", "alice", "m2", submitted_at=1.0)
        with pytest.raises(SimulationError):
            scheduler.submit(1.0, job)

    def test_duplicate_job_rejected(self):
        machines, scheduler = self._setup()
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        with pytest.raises(SimulationError):
            scheduler.submit(2.0, Job("j1", "bob", "m1", submitted_at=2.0))

    def test_schedule_prefers_idle_neighbor(self):
        machines, scheduler = self._setup()
        machines["m2"].set_activity(0.0, "busy")
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        target = scheduler.schedule(1.0, "j1", machines)
        assert target == "m3"

    def test_schedule_explicit_target(self):
        machines, scheduler = self._setup()
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        target = scheduler.schedule(1.0, "j1", machines, target="m2")
        assert target == "m2"
        job = scheduler.jobs["j1"]
        assert job.remote_machine == "m2"
        assert job.state is JobState.SCHEDULED

    def test_schedule_logs_event(self):
        machines, scheduler = self._setup()
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        scheduler.schedule(1.0, "j1", machines, target="m2")
        events = [e for e in machines["m1"].log if e.kind is EventKind.JOB_SCHEDULED]
        assert events[0].value("remote_machine") == "m2"

    def test_schedule_avoids_failed_machines(self):
        machines, scheduler = self._setup()
        machines["m2"].fail()
        machines["m3"].fail()
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        target = scheduler.schedule(1.0, "j1", machines)
        assert target == "m1"  # falls back to itself

    def test_reschedule(self):
        machines, scheduler = self._setup()
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        scheduler.schedule(1.0, "j1", machines, target="m2")
        machines["m2"].fail()
        new_target = scheduler.reschedule(2.0, "j1", machines)
        assert new_target != "m2"

    def test_reschedule_running_job_rejected(self):
        machines, scheduler = self._setup()
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        scheduler.schedule(1.0, "j1", machines, target="m2")
        scheduler.jobs["j1"].transition(JobState.RUNNING)
        with pytest.raises(SimulationError):
            scheduler.reschedule(2.0, "j1", machines)

    def test_unknown_job(self):
        machines, scheduler = self._setup()
        with pytest.raises(SimulationError):
            scheduler.schedule(1.0, "nope", machines)

    def test_active_jobs(self):
        machines, scheduler = self._setup()
        scheduler.submit(1.0, Job("j1", "alice", "m1", submitted_at=1.0))
        assert len(scheduler.active_jobs()) == 1
