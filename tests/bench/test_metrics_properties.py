"""Property tests for the Section 5.2 evaluation metrics.

``false_positive_rate`` has two guarded error paths — an *incomplete*
reported set (a correctness violation, not an fpr matter) and an empty
``S(Q)`` with sources reported (undefined ratio) — plus a closed-form value
on the happy path. These hold for arbitrary source-id sets, so they are
checked as properties rather than a handful of examples.
"""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.bench.metrics import false_positive_rate, naive_fpr, overhead
from repro.errors import TracError

ids = st.sets(st.text(alphabet="abcdefgh", min_size=1, max_size=3), max_size=8)
nonempty_ids = ids.filter(bool)


class TestFalsePositiveRateHappyPath:
    @given(exact=nonempty_ids, extra=ids)
    def test_closed_form_for_complete_reports(self, exact, extra):
        reported = exact | extra
        fpr = false_positive_rate(reported, exact)
        assert fpr == len(reported - exact) / len(exact)
        assert fpr >= 0.0

    @given(exact=ids)
    def test_exact_report_has_zero_fpr(self, exact):
        assert false_positive_rate(set(exact), exact) == 0.0

    @given(exact=nonempty_ids, extra=ids)
    def test_zero_iff_no_extras(self, exact, extra):
        reported = exact | extra
        fpr = false_positive_rate(reported, exact)
        assert (fpr == 0.0) == (reported == exact)


class TestFalsePositiveRateErrorPaths:
    @given(exact=nonempty_ids, data=st.data())
    def test_any_missing_relevant_source_raises(self, exact, data):
        # Drop a non-empty subset of S(Q) from the report: incomplete.
        dropped = data.draw(
            st.sets(st.sampled_from(sorted(exact)), min_size=1), label="dropped"
        )
        reported = exact - dropped
        with pytest.raises(TracError, match="incomplete"):
            false_positive_rate(reported, exact)

    @given(reported=nonempty_ids)
    def test_empty_exact_with_reports_is_undefined(self, reported):
        with pytest.raises(TracError, match="undefined"):
            false_positive_rate(reported, set())

    def test_empty_exact_and_empty_report_is_zero(self):
        assert false_positive_rate(set(), set()) == 0.0

    @given(exact=nonempty_ids, extra=ids)
    def test_error_message_names_missing_sources(self, exact, extra):
        victim = sorted(exact)[0]
        reported = (exact | extra) - {victim}
        try:
            false_positive_rate(reported, exact)
        except TracError as err:
            assert victim in str(err)
        else:  # pragma: no cover - property violation
            raise AssertionError("incomplete report did not raise")


class TestNaiveFprProperties:
    @given(
        relevant=st.integers(min_value=1, max_value=1000),
        slack=st.integers(min_value=0, max_value=1000),
    )
    def test_matches_closed_form_and_sign(self, relevant, slack):
        total = relevant + slack
        fpr = naive_fpr(total, relevant)
        assert fpr == slack / relevant
        assert fpr >= 0.0

    @given(total=st.integers(min_value=0, max_value=1000))
    def test_empty_relevant_set_rejected(self, total):
        with pytest.raises(TracError):
            naive_fpr(total, 0)

    @given(
        total=st.integers(min_value=0, max_value=1000),
        excess=st.integers(min_value=1, max_value=100),
    )
    def test_relevant_beyond_population_rejected(self, total, excess):
        with pytest.raises(TracError):
            naive_fpr(total, total + excess)


class TestOverheadProperties:
    @given(
        t_plain=st.floats(min_value=1e-6, max_value=1e3),
        factor=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_recovers_slowdown_factor(self, t_plain, factor):
        assert overhead(t_plain, t_plain * factor) == pytest.approx(factor - 1.0)

    @given(t_plain=st.floats(max_value=0.0, allow_nan=False))
    def test_nonpositive_baseline_rejected(self, t_plain):
        with pytest.raises(TracError):
            overhead(t_plain, 1.0)
