"""The backend interface.

A backend owns a catalog, stores rows for every cataloged table (including
the system Heartbeat table) and can open a :class:`Snapshot` — a context
within which every query sees one consistent database state. The recency
reporter runs the user query and the generated recency query inside a single
snapshot, which is exactly the consistency requirement of Section 3.2.
"""

from __future__ import annotations

import abc
from typing import ContextManager, Iterable, List, Optional, Sequence, Tuple

from repro.catalog import (
    HEARTBEAT_RECENCY_COLUMN,
    HEARTBEAT_SOURCE_COLUMN,
    HEARTBEAT_TABLE,
    Catalog,
)
from repro.engine.evaluate import QueryResult
from repro.obs import instrument as obs


class Snapshot(abc.ABC):
    """A consistent view of the database.

    All ``execute`` calls made through one snapshot observe the same state,
    regardless of concurrent writes through the owning backend.
    """

    @abc.abstractmethod
    def execute(self, sql: str, lineage: bool = False) -> QueryResult:
        """Run a SELECT inside the snapshot.

        ``lineage=True`` requests per-row source lineage on the result
        (:attr:`~repro.engine.evaluate.QueryResult.lineage`). Backends
        that cannot produce it (e.g. SQLite, which runs the SQL natively)
        degrade gracefully by returning ``lineage=None``; callers must
        treat missing lineage as "unattributed", never as an error.
        """

    @abc.abstractmethod
    def create_temp_table(
        self, name: str, columns: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> None:
        """Materialize a session temp table visible to later queries.

        Temp tables survive the snapshot (they belong to the session, per
        Section 4.3) but are not part of the monitored catalog.
        """


class Backend(abc.ABC):
    """Storage backend interface. See the package docstring.

    ``telemetry`` is an optional :class:`~repro.obs.Telemetry` override for
    this backend's counters (queries, rows, snapshots). Left as ``None``
    (the default, also settable later: ``backend.telemetry = tel``), the
    backend follows the process-wide default of :mod:`repro.obs`.
    """

    #: Label value used for this backend's metrics.
    kind = "backend"

    def __init__(self, catalog: Catalog, telemetry: Optional[object] = None) -> None:
        self.catalog = catalog
        self.telemetry = telemetry

    def _tel(self):
        tel = self.telemetry
        return tel if tel is not None else obs.get_default()

    # -- schema and data -----------------------------------------------------

    @abc.abstractmethod
    def create_tables(self) -> None:
        """Create every cataloged table (idempotent)."""

    @abc.abstractmethod
    def insert_rows(self, table: str, rows: Iterable[Sequence[object]]) -> None:
        """Bulk-append rows into ``table``."""

    @abc.abstractmethod
    def delete_all(self, table: str) -> None:
        """Remove every row of ``table``."""

    @abc.abstractmethod
    def upsert_rows(
        self,
        table: str,
        key_columns: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> None:
        """Insert rows, replacing any existing row with equal key columns.

        This is how sniffers apply "the scheduler *updates* its tuple for
        that job" semantics (Section 4.2)."""

    @abc.abstractmethod
    def delete_rows(
        self,
        table: str,
        key_columns: Sequence[str],
        keys: Iterable[Sequence[object]],
    ) -> None:
        """Delete rows whose key columns equal any of ``keys``."""

    @abc.abstractmethod
    def upsert_heartbeat(self, source_id: str, recency: float) -> None:
        """Set the recency timestamp of ``source_id`` (insert or update)."""

    # -- querying -------------------------------------------------------------

    @abc.abstractmethod
    def execute(self, sql: str) -> QueryResult:
        """Run a single SELECT outside any explicit snapshot."""

    @abc.abstractmethod
    def snapshot(self) -> ContextManager[Snapshot]:
        """Open a consistent read snapshot (used as a context manager)."""

    @abc.abstractmethod
    def persist_temp_table(self, temp_name: str, permanent_name: str) -> None:
        """Copy a session temp table into a permanent table.

        Section 4.3: "The user can decide whether to copy it to a permanent
        table before the end of a session." The permanent table survives
        session close and carries the temp table's (sid, recency) columns.
        """

    @abc.abstractmethod
    def drop_temp_table(self, name: str) -> None:
        """Discard a session temp table if it exists."""

    @abc.abstractmethod
    def list_temp_tables(self) -> List[str]:
        """Names of session temp tables currently alive."""

    # -- convenience -----------------------------------------------------------

    def heartbeat_rows(self) -> List[Tuple[str, float]]:
        """All (source_id, recency) pairs currently in the Heartbeat table."""
        result = self.execute(
            f"SELECT {HEARTBEAT_SOURCE_COLUMN}, {HEARTBEAT_RECENCY_COLUMN} "
            f"FROM {HEARTBEAT_TABLE}"
        )
        return [(str(sid), float(rec)) for sid, rec in result.rows]

    def heartbeat_of(self, source_id: str) -> Optional[float]:
        """Recency timestamp of one source, or ``None`` if unknown."""
        for sid, recency in self.heartbeat_rows():
            if sid == source_id:
                return recency
        return None

    def row_count(self, table: str) -> int:
        return int(self.execute(f"SELECT COUNT(*) FROM {table}").scalar())  # type: ignore[arg-type]

    def close(self) -> None:
        """Release resources. Default: nothing to do."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
