"""``repro.faults`` — deterministic fault injection for the grid pipeline.

TRAC exists because distributed sources fail: they lag, crash, republish and
fall silent, and the recency report is how a user *sees* that. This package
injects exactly those failures into the simulated grid→backend pipeline so
the report's exceptional/degraded classifications can be validated against
*known* outages instead of hoped-for ones.

Three pieces:

* :class:`FaultPlan` — a seeded, deterministic schedule of faults: transient
  or permanent sniffer poll errors, dropped or duplicated log records,
  silenced (stalled) sources and failing backend ``apply`` /
  ``upsert_heartbeat`` calls, each by probability or at scripted times;
* :class:`FaultyBackend` — a delegating backend wrapper that raises
  :class:`InjectedFault` from write calls when the plan says so;
* :class:`FaultyLog` — a log-file proxy that drops/duplicates records on
  *read* (the log itself stays durable; delivery is what's lossy).

The :class:`~repro.grid.supervisor.SnifferSupervisor` consumes all three;
see docs/ROBUSTNESS.md for the full fault model.
"""

from repro.faults.plan import KINDS, RPC_KINDS, FaultPlan, InjectedFault, plan_from_json
from repro.faults.backend import FaultyBackend
from repro.faults.log import FaultyLog

__all__ = [
    "FaultPlan",
    "FaultyBackend",
    "FaultyLog",
    "InjectedFault",
    "KINDS",
    "RPC_KINDS",
    "plan_from_json",
]
