"""Normalization of predicates to disjunctive normal form.

Corollary 1 of the paper: with predicates in DNF ``P1 OR P2 OR ... OR Pk``,
the relevant source set of the query is the union of the relevant sets of the
per-conjunct queries. Everything downstream therefore operates one conjunct
of **basic terms** at a time.

Representation
--------------
``to_dnf`` returns a list of conjuncts, each a list of basic-term
expressions:

* ``[[t1, t2], [t3]]``  means ``(t1 AND t2) OR t3``;
* ``[[]]`` (one empty conjunct) means TRUE;
* ``[]`` (no conjuncts) means FALSE.

A **basic term** is any supported predicate free of AND/OR/NOT: a comparison,
``[NOT] IN``, ``[NOT] BETWEEN``, ``[NOT] LIKE``, or ``IS [NOT] NULL``
(negations are absorbed into the term's ``negated`` flag during NNF).

Blow-up guard
-------------
DNF conversion is worst-case exponential. ``to_dnf`` raises
:class:`~repro.errors.DnfBlowupError` when the number of conjuncts would
exceed ``max_conjuncts``; callers fall back to the always-safe "all sources
relevant" answer.
"""

from __future__ import annotations

from typing import List

from repro.errors import DnfBlowupError, UnsupportedQueryError
from repro.obs import instrument as obs
from repro.sqlparser import ast

#: Default cap on the number of DNF conjuncts before giving up.
DEFAULT_MAX_CONJUNCTS = 4096

_FLIPPED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def to_nnf(expr: ast.Expr) -> ast.Expr:
    """Push negations down to the basic terms (negation normal form)."""
    return _nnf(expr, negate=False)


def _nnf(expr: ast.Expr, negate: bool) -> ast.Expr:
    if isinstance(expr, ast.Not):
        return _nnf(expr.expr, not negate)
    if isinstance(expr, ast.And):
        items = [_nnf(item, negate) for item in expr.items]
        return ast.Or(items) if negate else ast.And(items)
    if isinstance(expr, ast.Or):
        items = [_nnf(item, negate) for item in expr.items]
        return ast.And(items) if negate else ast.Or(items)
    if not negate:
        return expr
    return _negate_term(expr)


def _negate_term(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.Literal):
        if expr.value is None:
            return expr  # NOT UNKNOWN is UNKNOWN
        if isinstance(expr.value, bool):
            return ast.Literal(not expr.value)
        raise UnsupportedQueryError(f"cannot negate literal {expr.value!r}")
    if isinstance(expr, ast.Comparison):
        return ast.Comparison(_FLIPPED_OP[expr.op], expr.left, expr.right)
    if isinstance(expr, ast.InList):
        return ast.InList(expr.expr, expr.values, not expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(expr.expr, expr.low, expr.high, not expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(expr.expr, expr.pattern, not expr.negated)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(expr.expr, not expr.negated)
    raise UnsupportedQueryError(f"cannot negate expression {expr!r}")


def to_dnf(expr: ast.Expr, max_conjuncts: int = DEFAULT_MAX_CONJUNCTS) -> List[List[ast.Expr]]:
    """Convert ``expr`` to DNF as a list of conjuncts of basic terms.

    Raises
    ------
    DnfBlowupError
        If the conversion would produce more than ``max_conjuncts``
        conjuncts.
    UnsupportedQueryError
        If the tree contains an unsupported node type.
    """
    nnf = to_nnf(expr)
    conjuncts = _dnf(nnf, max_conjuncts)
    simplified = _simplify(conjuncts)
    tel = obs.get_default()
    if tel.enabled:
        obs.record_dnf(tel, _count_leaves(expr), len(simplified))
    return simplified


def _count_leaves(expr: ast.Expr) -> int:
    """Basic terms in the input tree (denominator of the expansion factor)."""
    if isinstance(expr, ast.Not):
        return _count_leaves(expr.expr)
    if isinstance(expr, (ast.And, ast.Or)):
        return sum(_count_leaves(item) for item in expr.items)
    return 1


def _dnf(expr: ast.Expr, limit: int) -> List[List[ast.Expr]]:
    if isinstance(expr, ast.Or):
        out: List[List[ast.Expr]] = []
        for item in expr.items:
            out.extend(_dnf(item, limit))
            if len(out) > limit:
                raise DnfBlowupError(
                    f"DNF conversion exceeded {limit} conjuncts", len(out), limit
                )
        return out
    if isinstance(expr, ast.And):
        # Distribute: cross product of the children's DNFs.
        product: List[List[ast.Expr]] = [[]]
        for item in expr.items:
            child = _dnf(item, limit)
            next_product: List[List[ast.Expr]] = []
            for left in product:
                for right in child:
                    next_product.append(left + right)
                    if len(next_product) > limit:
                        raise DnfBlowupError(
                            f"DNF conversion exceeded {limit} conjuncts",
                            len(next_product),
                            limit,
                        )
            product = next_product
        return product
    # A basic term (or boolean literal).
    return [[expr]]


def _simplify(conjuncts: List[List[ast.Expr]]) -> List[List[ast.Expr]]:
    """Drop TRUE terms, FALSE conjuncts and duplicate terms/conjuncts."""
    out: List[List[ast.Expr]] = []
    seen = set()
    for conjunct in conjuncts:
        simplified: List[ast.Expr] = []
        term_seen = set()
        is_false = False
        for term in conjunct:
            if isinstance(term, ast.Literal) and term.value is True:
                continue
            if isinstance(term, ast.Literal) and (term.value is False or term.value is None):
                # FALSE or UNKNOWN conjunct can never be satisfied.
                is_false = True
                break
            if term in term_seen:
                continue
            term_seen.add(term)
            simplified.append(term)
        if is_false:
            continue
        if not simplified:
            # An empty conjunct is TRUE, which absorbs the whole disjunction.
            return [[]]
        key = frozenset(simplified)
        if key in seen:
            continue
        seen.add(key)
        out.append(simplified)
    return out


def conjuncts_of(expr: ast.Expr, max_conjuncts: int = DEFAULT_MAX_CONJUNCTS) -> List[List[ast.Expr]]:
    """Alias of :func:`to_dnf`, reads better at call sites."""
    return to_dnf(expr, max_conjuncts)


def basic_terms_of(expr: ast.Expr) -> List[ast.Expr]:
    """Flatten a conjunction into its basic terms (no OR/NOT allowed).

    Useful for callers that already know the predicate is a pure conjunction.
    """
    if isinstance(expr, ast.And):
        terms: List[ast.Expr] = []
        for item in expr.items:
            terms.extend(basic_terms_of(item))
        return terms
    if isinstance(expr, (ast.Or, ast.Not)):
        raise UnsupportedQueryError("expression is not a pure conjunction")
    return [expr]
