"""File-backed log tests: archive a simulation, replay it, compare."""

import pytest

from repro import MemoryBackend
from repro.errors import SimulationError
from repro.grid.events import EventKind, LogEvent
from repro.grid.persist import (
    FileLog,
    FileLogWriter,
    FileSource,
    archive_simulation,
    discover_logs,
    log_path,
    replay_directory,
)
from repro.grid.simulator import GridSimulator, SimulationConfig, monitoring_catalog
from repro.grid.sniffer import Sniffer, SnifferConfig


def hb(t, source="m1"):
    return LogEvent(t, source, EventKind.HEARTBEAT)


class TestFileLogWriter:
    def test_creates_file_with_header(self, tmp_path):
        path = str(tmp_path / "m1.log")
        FileLogWriter(path, "m1")
        assert open(path).read().startswith("# trac-log v1")

    def test_append_and_read_back(self, tmp_path):
        path = str(tmp_path / "m1.log")
        writer = FileLogWriter(path, "m1")
        writer.append(hb(1.0))
        writer.append(hb(2.0))
        log = FileLog(path, "m1")
        events, offset = log.read_from(0, up_to_time=10.0)
        assert [e.timestamp for e in events] == [1.0, 2.0]
        assert offset == 2

    def test_ownership_enforced(self, tmp_path):
        writer = FileLogWriter(str(tmp_path / "m1.log"), "m1")
        with pytest.raises(SimulationError):
            writer.append(hb(1.0, source="m2"))

    def test_monotone_timestamps_enforced(self, tmp_path):
        writer = FileLogWriter(str(tmp_path / "m1.log"), "m1")
        writer.append(hb(5.0))
        with pytest.raises(SimulationError):
            writer.append(hb(4.0))

    def test_reopen_appends(self, tmp_path):
        path = str(tmp_path / "m1.log")
        FileLogWriter(path, "m1").append(hb(1.0))
        FileLogWriter(path, "m1").append(hb(2.0))
        assert len(FileLog(path, "m1")) == 2


class TestFileLog:
    def test_missing_file_is_empty(self, tmp_path):
        log = FileLog(str(tmp_path / "nope.log"), "m1")
        assert len(log) == 0
        assert log.last_timestamp == float("-inf")
        assert log.read_from(0, 10.0) == ([], 0)

    def test_horizon_respected(self, tmp_path):
        path = str(tmp_path / "m1.log")
        writer = FileLogWriter(path, "m1")
        for t in (1.0, 2.0, 3.0):
            writer.append(hb(t))
        events, offset = FileLog(path, "m1").read_from(0, up_to_time=2.5)
        assert offset == 2

    def test_foreign_event_rejected(self, tmp_path):
        path = str(tmp_path / "m1.log")
        with open(path, "w") as handle:
            handle.write("1.0 m2 HEARTBEAT\n")
        with pytest.raises(SimulationError):
            FileLog(path, "m1").read_from(0, 10.0)

    def test_invalid_offset(self, tmp_path):
        path = str(tmp_path / "m1.log")
        FileLogWriter(path, "m1").append(hb(1.0))
        with pytest.raises(SimulationError):
            FileLog(path, "m1").read_from(5, 10.0)


class TestSnifferOverFileLog:
    def test_standard_sniffer_tails_a_file(self, tmp_path):
        """The same Sniffer implementation works over an on-disk log —
        records appended after the first poll arrive on the next one."""
        path = str(tmp_path / "m1.log")
        writer = FileLogWriter(path, "m1")
        backend = MemoryBackend(monitoring_catalog(["m1"]))
        source = FileSource("m1", FileLog(path, "m1"))
        sniffer = Sniffer(source, backend, SnifferConfig(lag=0.0))

        writer.append(LogEvent(1.0, "m1", EventKind.MACHINE_STATE, {"value": "busy"}))
        assert sniffer.poll(5.0) == 1
        assert backend.heartbeat_of("m1") == 1.0

        writer.append(LogEvent(6.0, "m1", EventKind.MACHINE_STATE, {"value": "idle"}))
        assert sniffer.poll(10.0) == 1
        rows = backend.execute("SELECT value FROM activity").rows
        assert rows == [("idle",)]


class TestArchiveAndReplay:
    def test_archive_writes_one_file_per_machine(self, tmp_path):
        sim = GridSimulator(SimulationConfig(num_machines=4, seed=5))
        sim.run(60)
        paths = archive_simulation(sim, str(tmp_path))
        assert len(paths) == 4
        assert discover_logs(str(tmp_path)) == {
            f"m{i}": log_path(str(tmp_path), f"m{i}") for i in range(1, 5)
        }

    def test_replay_reproduces_fully_drained_database(self, tmp_path):
        """Offline replay of the archived logs must equal the database a
        fully caught-up live deployment would hold."""
        sim = GridSimulator(
            SimulationConfig(num_machines=5, seed=9, job_submit_probability=0.2)
        )
        sim.submit_job("alice", "m1")
        sim.run(120)
        sim.drain()  # live database, fully caught up
        archive_simulation(sim, str(tmp_path))

        fresh = MemoryBackend(monitoring_catalog(sim.machine_ids))
        sniffers = replay_directory(fresh, str(tmp_path))
        assert set(sniffers) == set(sim.machine_ids)

        for table in ("activity", "routing", "sched_jobs", "run_jobs", "heartbeat"):
            live = sorted(sim.backend.execute(f"SELECT * FROM {table}").rows)
            replayed = sorted(fresh.execute(f"SELECT * FROM {table}").rows)
            assert replayed == live, table

    def test_replay_up_to_time_gives_partial_view(self, tmp_path):
        sim = GridSimulator(SimulationConfig(num_machines=3, seed=2))
        sim.run(100)
        archive_simulation(sim, str(tmp_path))

        partial = MemoryBackend(monitoring_catalog(sim.machine_ids))
        replay_directory(partial, str(tmp_path), up_to_time=50.0)
        for _, recency in partial.heartbeat_rows():
            assert recency <= 50.0
