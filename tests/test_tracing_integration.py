"""Acceptance: end-to-end distributed tracing through the observatory.

A query served through ``repro.obs.server`` with an injected W3C
``traceparent`` header must produce, under the *caller's* trace id:

* spans for the request and the full recency report beneath it;
* correlated event-log records (forced here via a zero-second slow-query
  threshold so ``query.slow`` fires on every report);
* a structured per-operator :class:`QueryProfile` retrievable via
  ``/profile`` and ``/trace/<id>``;
* histogram latency series (with trace-id exemplars) in ``/metrics``.
"""

import json
import time
import urllib.request

import pytest

from repro.backends.memory import MemoryBackend
from repro.catalog import Catalog, Column, TableSchema
from repro.core.report import RecencyReporter
from repro.obs import Telemetry
from repro.obs.server import ObservatoryServer

CALLER_TRACE = "deadbeefdeadbeefdeadbeefdeadbeef"
TRACEPARENT = f"00-{CALLER_TRACE}-00f067aa0ba902b7-01"


def get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture()
def observatory():
    catalog = Catalog()
    catalog.add(
        TableSchema("activity", [Column("mach_id", "TEXT"), Column("state", "TEXT")])
    )
    catalog.add(
        TableSchema(
            "trac_heartbeat", [Column("source_id", "TEXT"), Column("recency", "REAL")]
        )
    )
    telemetry = Telemetry()
    backend = MemoryBackend(catalog, telemetry=telemetry)
    backend.create_tables()
    backend.insert_rows(
        "activity", [(f"m{i % 3 + 1}", "busy" if i % 2 else "idle") for i in range(30)]
    )
    for mid in ("m1", "m2", "m3"):
        backend.upsert_heartbeat(mid, 100.0)
    reporter = RecencyReporter(
        backend, telemetry=telemetry, slow_query_seconds=1e-9
    )
    server = ObservatoryServer(telemetry, reporter=reporter).start()
    try:
        yield server, telemetry
    finally:
        server.stop()


def wait_for_trace(telemetry, trace_id, deadline_s=5.0):
    deadline = time.monotonic() + deadline_s
    spans = telemetry.tracer.spans_for_trace(trace_id)
    while time.monotonic() < deadline:
        if any(s.name == "http.request" for s in spans):
            return spans
        time.sleep(0.01)
        spans = telemetry.tracer.spans_for_trace(trace_id)
    return spans


def test_traced_query_end_to_end(observatory):
    server, telemetry = observatory
    sql = "SELECT state, COUNT(*) FROM activity GROUP BY state"

    status, body = get(
        server.url + "/query?sql=" + urllib.parse.quote(sql),
        headers={"traceparent": TRACEPARENT},
    )
    assert status == 200
    doc = json.loads(body)

    # The report itself is stamped with the caller's trace id.
    assert doc["trace_id"] == CALLER_TRACE
    assert doc["rows"] and doc["columns"] == ["state", "COUNT(*)"]

    # Its profile came back inline, structured per operator.
    ops = [op["op"] for op in doc["profile"]["operators"]]
    assert "scan" in ops and "aggregate" in ops
    assert doc["profile"]["trace_id"] == CALLER_TRACE

    # 1. Spans: the request span plus the whole report span tree share
    # the caller's trace id.
    spans = wait_for_trace(telemetry, CALLER_TRACE)
    names = {s.name for s in spans}
    assert "http.request" in names and "trac.report" in names
    assert len(spans) >= 4  # request + report + its phases
    assert all(s.trace_id_hex == CALLER_TRACE for s in spans)

    # 2. Events: the forced slow-query event correlates by trace id.
    events = telemetry.events.for_trace(CALLER_TRACE)
    assert any(e.name == "query.slow" for e in events)

    # 3. Profile is retrievable via /profile and /trace/<id>.
    _, body = get(server.url + "/profile")
    profiles = json.loads(body)
    assert any(p["trace_id"] == CALLER_TRACE and p["sql"] == sql for p in profiles)
    _, body = get(server.url + f"/trace/{CALLER_TRACE}")
    trace_doc = json.loads(body)
    assert trace_doc["spans"] and trace_doc["events"] and trace_doc["profiles"]

    # 4. Histogram latency series, exemplar-stamped, in /metrics.
    _, metrics = get(server.url + "/metrics")
    assert "trac_report_seconds_bucket" in metrics
    assert "trac_http_request_seconds_bucket" in metrics
    assert f'# {{trace_id="{CALLER_TRACE}"}}' in metrics
    assert "trac_slow_queries_total" in metrics


def test_untraced_query_still_gets_a_fresh_trace(observatory):
    server, telemetry = observatory
    status, body = get(server.url + "/query?sql=" + urllib.parse.quote(
        "SELECT mach_id FROM activity"
    ))
    assert status == 200
    doc = json.loads(body)
    assert doc["trace_id"] and doc["trace_id"] != CALLER_TRACE
    spans = wait_for_trace(telemetry, doc["trace_id"])
    assert any(s.name == "http.request" for s in spans)
