"""Term classification tests (Notation 4 / Notation 6)."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.predicates.classify import TermClass, classify_conjunct, classify_for_all, classify_term
from repro.predicates.dnf import basic_terms_of
from repro.sqlparser.parser import parse_expression, parse_query
from repro.sqlparser.resolver import resolve


def classify(sql_where, relation_key, paper_catalog, tables="activity A, routing R"):
    query = parse_query(f"SELECT A.mach_id FROM {tables} WHERE {sql_where}")
    resolve(query, paper_catalog)
    terms = basic_terms_of(query.where)
    return classify_conjunct(terms, relation_key)


class TestSingleRelationClasses:
    def test_ps_source_equality(self, paper_catalog):
        query = parse_query("SELECT mach_id FROM activity WHERE mach_id = 'm1'")
        resolve(query, paper_catalog)
        assert classify_term(query.where, "activity") is TermClass.PS

    def test_ps_source_in_list(self, paper_catalog):
        query = parse_query(
            "SELECT mach_id FROM activity WHERE mach_id IN ('m1', 'm2')"
        )
        resolve(query, paper_catalog)
        assert classify_term(query.where, "activity") is TermClass.PS

    def test_pr_regular_column(self, paper_catalog):
        query = parse_query("SELECT mach_id FROM activity WHERE value = 'idle'")
        resolve(query, paper_catalog)
        assert classify_term(query.where, "activity") is TermClass.PR

    def test_pm_mixed(self, paper_catalog):
        # Compares the source column against a regular column of the same
        # relation: the paper's "mixed predicate".
        query = parse_query("SELECT mach_id FROM routing WHERE mach_id = neighbor")
        resolve(query, paper_catalog)
        assert classify_term(query.where, "routing") is TermClass.PM

    def test_unresolved_term_raises(self):
        expr = parse_expression("mach_id = 'm1'")
        with pytest.raises(UnsupportedQueryError):
            classify_term(expr, "activity")


class TestJoinClasses:
    def test_js_source_only_join(self, paper_catalog):
        # A.mach_id is A's source column; R.neighbor is a regular column of
        # R. Via A the term is Js; via R it is Jrm.
        query = parse_query(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE R.neighbor = A.mach_id"
        )
        resolve(query, paper_catalog)
        assert classify_term(query.where, "a") is TermClass.JS
        assert classify_term(query.where, "r") is TermClass.JRM

    def test_source_to_source_join_is_js_for_both(self, paper_catalog):
        query = parse_query(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE R.mach_id = A.mach_id"
        )
        resolve(query, paper_catalog)
        assert classify_term(query.where, "a") is TermClass.JS
        assert classify_term(query.where, "r") is TermClass.JS

    def test_regular_to_regular_join_is_jrm_for_both(self, paper_catalog):
        query = parse_query(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE R.neighbor = A.value"
        )
        resolve(query, paper_catalog)
        assert classify_term(query.where, "a") is TermClass.JRM
        assert classify_term(query.where, "r") is TermClass.JRM

    def test_po_for_unreferenced_relation(self, paper_catalog):
        query = parse_query(
            "SELECT A.mach_id FROM activity A, routing R WHERE A.value = 'idle'"
        )
        resolve(query, paper_catalog)
        assert classify_term(query.where, "r") is TermClass.PO
        assert classify_term(query.where, "a") is TermClass.PR

    def test_constant_term_is_po(self, paper_catalog):
        query = parse_query(
            "SELECT A.mach_id FROM activity A WHERE 1 = 1 AND A.value = 'idle'"
        )
        resolve(query, paper_catalog)
        terms = basic_terms_of(query.where)
        assert classify_term(terms[0], "a") is TermClass.PO


class TestConjunctClassification:
    def test_paper_q2_via_routing(self, paper_catalog):
        """The paper's Section 4.1.2 walk-through: for S(Q2, R), R.mach_id =
        'm1' is Ps, R.neighbor = A.mach_id is Jrm, A.value = 'idle' is Po."""
        classified = classify(
            "R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id",
            "r",
            paper_catalog,
        )
        assert len(classified.ps) == 1
        assert len(classified.jrm) == 1
        assert len(classified.po) == 1
        assert classified.pr == []
        assert classified.pm == []
        assert classified.js == []
        assert classified.has_regular_join

    def test_paper_q2_via_activity(self, paper_catalog):
        """Via A: A.value = 'idle' is Pr, R.neighbor = A.mach_id is Js,
        R.mach_id = 'm1' is Po — Theorem 4's conditions hold."""
        classified = classify(
            "R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id",
            "a",
            paper_catalog,
        )
        assert len(classified.pr) == 1
        assert len(classified.js) == 1
        assert len(classified.po) == 1
        assert not classified.has_mixed
        assert not classified.has_regular_join

    def test_partition_property(self, paper_catalog):
        """Every term lands in exactly one bucket, for every relation."""
        where = (
            "R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id "
            "AND A.mach_id IN ('m1', 'm2') AND R.event_time > 100"
        )
        query = parse_query(f"SELECT A.mach_id FROM activity A, routing R WHERE {where}")
        resolve(query, paper_catalog)
        terms = basic_terms_of(query.where)
        for key in ("a", "r"):
            classified = classify_conjunct(terms, key)
            buckets = [
                classified.ps,
                classified.pr,
                classified.pm,
                classified.js,
                classified.jrm,
                classified.po,
            ]
            assert sum(len(b) for b in buckets) == len(terms)
            assert sorted(map(repr, classified.all_terms())) == sorted(map(repr, terms))

    def test_classify_for_all(self, paper_catalog):
        query = parse_query(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE R.neighbor = A.mach_id"
        )
        resolve(query, paper_catalog)
        by_key = classify_for_all(basic_terms_of(query.where), ["a", "r"])
        assert set(by_key) == {"a", "r"}
        assert by_key["a"].js and by_key["r"].jrm

    def test_bucket_accessor(self, paper_catalog):
        classified = classify("A.value = 'idle'", "a", paper_catalog)
        assert classified.bucket(TermClass.PR) == classified.pr
