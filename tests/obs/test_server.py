"""The observatory HTTP server, scraped over real sockets."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.health import DEGRADED, HEALTHY, SourceHealth
from repro.obs import Telemetry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObservatoryServer, serve


def get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode(
            "utf-8"
        )


@pytest.fixture()
def telemetry():
    tel = Telemetry()
    tel.metrics.counter("trac_probe_total", help="probe").inc(3)
    with tel.tracer.span("work", machine="m1"):
        pass
    tel.emit("sniffer.retry", source="m1", severity="warning", attempt=1)
    return tel


class TestEndpoints:
    def test_metrics_is_prometheus_text(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            status, ctype, body = get(server.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert "trac_probe_total 3" in body

    def test_healthz_reports_degraded_sources(self, telemetry):
        health = SourceHealth()
        health.mark("m1", HEALTHY)
        health.mark("m2", DEGRADED, reason="silent", at=40.0)
        breakers = lambda: {"m1": "closed", "m2": "open"}  # noqa: E731
        with ObservatoryServer(telemetry, health=health, breakers=breakers) as server:
            _, ctype, body = get(server.url + "/healthz")
        assert ctype.startswith("application/json")
        doc = json.loads(body)
        assert doc["status"] == "degraded"
        assert doc["degraded"] == ["m2"]
        assert doc["sources"]["m2"]["reason"] == "silent"
        assert doc["breakers"] == {"m1": "closed", "m2": "open"}
        assert doc["events"]["total"] == 1

    def test_healthz_without_health_registry_is_ok(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            doc = json.loads(get(server.url + "/healthz")[2])
        assert doc["status"] == "ok"
        assert doc["sources"] == {}

    def test_spans_ndjson_with_limit(self, telemetry):
        for i in range(5):
            with telemetry.tracer.span(f"extra{i}"):
                pass
        with ObservatoryServer(telemetry) as server:
            _, ctype, body = get(server.url + "/spans?limit=2")
        assert ctype.startswith("application/x-ndjson")
        lines = [json.loads(line) for line in body.splitlines()]
        assert [s["name"] for s in lines] == ["extra3", "extra4"]

    def test_events_ndjson(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            _, _, body = get(server.url + "/events")
        records = [json.loads(line) for line in body.splitlines()]
        assert [r["name"] for r in records] == ["sniffer.retry"]
        assert records[0]["attributes"] == {"attempt": 1}

    def test_status_uses_the_provider(self, telemetry):
        provider = lambda: {"now": 42.0, "sources": []}  # noqa: E731
        with ObservatoryServer(telemetry, status_provider=provider) as server:
            doc = json.loads(get(server.url + "/status")[2])
        assert doc == {"now": 42.0, "sources": []}

    def test_status_defaults_to_healthz_wrapper(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            doc = json.loads(get(server.url + "/status")[2])
        assert doc["healthz"]["status"] == "ok"

    def test_unknown_path_is_404_with_endpoint_list(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/nope")
            assert excinfo.value.code == 404
            doc = json.loads(excinfo.value.read().decode("utf-8"))
        assert "/metrics" in doc["endpoints"]

    @pytest.mark.parametrize(
        "limit", ["bogus", "-1", "99999999999999", "1.5"]
    )
    def test_bad_limit_is_a_client_error(self, telemetry, limit):
        with ObservatoryServer(telemetry) as server:
            for path in ("/events", "/spans"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    get(f"{server.url}{path}?limit={limit}")
                assert excinfo.value.code == 400
                doc = json.loads(excinfo.value.read().decode("utf-8"))
                assert "limit" in doc["error"]


class TestTracingEndpoints:
    def test_requests_record_http_latency_histogram(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            get(server.url + "/healthz")
            _, _, body = get(server.url + "/metrics")
        assert "trac_http_request_seconds_bucket" in body
        assert 'path="/healthz"' in body

    def test_traceparent_header_joins_the_callers_trace(self, telemetry):
        caller_trace = "f" * 31 + "e"
        header = {"traceparent": f"00-{caller_trace}-00f067aa0ba902b7-01"}
        with ObservatoryServer(telemetry) as server:
            request = urllib.request.Request(server.url + "/healthz", headers=header)
            with urllib.request.urlopen(request, timeout=5.0):
                pass
            # The request span closes on the handler thread just after
            # the response body is sent; wait for it to land.
            deadline = time.monotonic() + 5.0
            spans = telemetry.tracer.spans_for_trace(caller_trace)
            while not spans and time.monotonic() < deadline:
                time.sleep(0.01)
                spans = telemetry.tracer.spans_for_trace(caller_trace)
        assert [s.name for s in spans] == ["http.request"]
        assert spans[0].parent_id == 0x00F067AA0BA902B7

    def test_profile_endpoint_serves_recorded_profiles(self, telemetry):
        from repro.engine.profile import QueryProfile

        profile = QueryProfile("SELECT 1")
        profile.trace_id = "ab" * 16
        telemetry.profiles.record(profile)
        with ObservatoryServer(telemetry) as server:
            _, ctype, body = get(server.url + "/profile")
        assert ctype.startswith("application/json")
        docs = json.loads(body)
        assert [d["sql"] for d in docs] == ["SELECT 1"]

    def test_trace_endpoint_correlates_spans_events_profiles(self, telemetry):
        from repro.engine.profile import QueryProfile

        with telemetry.tracer.span("outer") as outer:
            telemetry.emit("probe.fired", severity="info")
        profile = QueryProfile("SELECT 1")
        profile.trace_id = outer.trace_id_hex
        telemetry.profiles.record(profile)
        with ObservatoryServer(telemetry) as server:
            _, _, body = get(server.url + f"/trace/{outer.trace_id_hex}")
        doc = json.loads(body)
        assert doc["trace_id"] == outer.trace_id_hex
        assert [s["name"] for s in doc["spans"]] == ["outer"]
        assert [e["name"] for e in doc["events"]] == ["probe.fired"]
        assert [p["sql"] for p in doc["profiles"]] == ["SELECT 1"]

    def test_unknown_trace_is_404(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/trace/" + "0" * 32)
        assert excinfo.value.code == 404

    def test_query_without_reporter_is_503(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/query?sql=SELECT+1")
        assert excinfo.value.code == 503

    def test_query_without_sql_is_400(self, telemetry):
        with ObservatoryServer(telemetry, reporter=object()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/query")
        assert excinfo.value.code == 400


class TestNdjsonSchemaPin:
    """The /spans and /events NDJSON schemas are consumed by external
    tooling; new fields must be ADDITIVE — every pre-tracing field keeps
    its name and meaning."""

    SPAN_FIELDS_V1 = {
        "name", "span_id", "parent_id", "start_wall", "duration_s", "attributes",
    }
    EVENT_FIELDS_V1 = {
        "seq", "t", "wall", "name", "severity", "source", "span_id", "attributes",
    }

    def test_span_records_are_backward_compatible(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            _, _, body = get(server.url + "/spans?limit=1")
        record = json.loads(body.splitlines()[0])
        missing = self.SPAN_FIELDS_V1 - set(record)
        assert not missing, f"v1 span fields dropped: {missing}"
        # The tracing PR's additions, both derivable from the v1 reader's
        # point of view as unknown-and-ignorable keys.
        assert set(record["trace_id"]) <= set("0123456789abcdef")
        assert len(record["trace_id"]) == 32
        assert record["traceparent"].startswith("00-")

    def test_event_records_are_backward_compatible(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            _, _, body = get(server.url + "/events?limit=1")
        record = json.loads(body.splitlines()[0])
        missing = self.EVENT_FIELDS_V1 - set(record)
        assert not missing, f"v1 event fields dropped: {missing}"
        assert "trace_id" in record  # additive (may be null for untraced)


class TestLifecycle:
    def test_ephemeral_port_and_url(self, telemetry):
        server = ObservatoryServer(telemetry, port=0)
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        server.stop()

    def test_start_is_idempotent_and_stop_releases(self, telemetry):
        server = ObservatoryServer(telemetry).start()
        assert server.start() is server
        port = server.port
        server.stop()
        # Port is free again: a new server can bind it.
        rebound = ObservatoryServer(telemetry, port=port)
        rebound.stop()

    def test_serve_helper_returns_running_server(self, telemetry):
        server = serve(telemetry)
        try:
            assert get(server.url + "/metrics")[0] == 200
        finally:
            server.stop()

    def test_obs_namespace_serve_is_lazy(self, telemetry):
        from repro import obs

        server = obs.serve(telemetry)
        try:
            assert get(server.url + "/healthz")[0] == 200
        finally:
            server.stop()


class TestMethodDiscipline:
    """Wrong methods, bad bodies, HEAD: adversarial HTTP hygiene."""

    def request(self, url, method, data=None):
        req = urllib.request.Request(url, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=5.0) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()

    @pytest.mark.parametrize("method", ["POST", "PUT", "DELETE", "PATCH"])
    def test_write_methods_on_read_endpoints_are_405(self, telemetry, method):
        with ObservatoryServer(telemetry) as server:
            for path in ("/metrics", "/status", "/healthz", "/events"):
                status, headers, _ = self.request(
                    server.url + path, method, data=b"{}"
                )
                assert status == 405, f"{method} {path}"
                assert headers.get("Allow") == "GET"

    def test_wrong_method_on_trace_prefix_is_405(self, telemetry):
        trace_id = telemetry.tracer.finished_spans()[0].trace_id
        with ObservatoryServer(telemetry) as server:
            status, headers, _ = self.request(
                server.url + f"/trace/{trace_id}", "POST", data=b"{}"
            )
        assert status == 405
        assert headers.get("Allow") == "GET"

    def test_head_mirrors_get_without_a_body(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            status, headers, body = self.request(server.url + "/healthz", "HEAD")
        assert status == 200
        assert headers.get("Content-Type", "").startswith("application/json")
        assert body == b""

    def test_unknown_path_is_still_404(self, telemetry):
        with ObservatoryServer(telemetry) as server:
            status, _, _ = self.request(server.url + "/nope", "GET")
            post_status, _, _ = self.request(server.url + "/nope", "POST", data=b"{}")
        assert status == 404
        assert post_status == 404
