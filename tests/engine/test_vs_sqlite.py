"""Differential tests: the mini engine must agree with SQLite.

The property test generates random rows and random conjunctive/disjunctive
queries over a small schema and asserts both executors produce identical
multisets of rows.
"""

import sqlite3
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, FiniteDomain, TableSchema
from repro.engine import Database, execute_sql


def make_catalog():
    return Catalog(
        [
            TableSchema(
                "t1",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("x", "INTEGER"),
                    Column("v", "TEXT"),
                ],
                source_column="s",
            ),
            TableSchema(
                "t2",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("y", "INTEGER"),
                ],
                source_column="s",
            ),
        ]
    )


def run_sqlite(rows1, rows2, sql):
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE t1 (s TEXT, x INTEGER, v TEXT)")
    conn.execute("CREATE TABLE t2 (s TEXT, y INTEGER)")
    conn.executemany("INSERT INTO t1 VALUES (?,?,?)", rows1)
    conn.executemany("INSERT INTO t2 VALUES (?,?)", rows2)
    out = conn.execute(sql).fetchall()
    conn.close()
    return out


def run_engine(rows1, rows2, sql):
    db = Database(make_catalog())
    db.insert_many("t1", rows1)
    db.insert_many("t2", rows2)
    return execute_sql(db, sql).rows


def assert_same(rows1, rows2, sql):
    expected = Counter(run_sqlite(rows1, rows2, sql))
    actual = Counter(tuple(r) for r in run_engine(rows1, rows2, sql))
    assert actual == expected, f"engine disagrees with SQLite for {sql!r}"


ROWS1 = [("a", 1, "p"), ("b", 2, "q"), ("c", 3, "p"), ("a", 2, None)]
ROWS2 = [("a", 1), ("b", 2), ("c", 9)]


class TestCuratedQueries:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT s FROM t1",
            "SELECT s, x FROM t1 WHERE x > 1",
            "SELECT s FROM t1 WHERE v = 'p' AND x < 3",
            "SELECT s FROM t1 WHERE v = 'p' OR x = 2",
            "SELECT s FROM t1 WHERE s IN ('a', 'c')",
            "SELECT s FROM t1 WHERE s NOT IN ('a')",
            "SELECT s FROM t1 WHERE x BETWEEN 1 AND 2",
            "SELECT s FROM t1 WHERE v IS NULL",
            "SELECT s FROM t1 WHERE v IS NOT NULL",
            "SELECT s FROM t1 WHERE v LIKE 'p%'",
            "SELECT s FROM t1 WHERE NOT (x = 1 OR x = 2)",
            "SELECT DISTINCT v FROM t1",
            "SELECT COUNT(*) FROM t1",
            "SELECT COUNT(v) FROM t1",
            "SELECT COUNT(DISTINCT v) FROM t1",
            "SELECT SUM(x) FROM t1",
            "SELECT AVG(x) FROM t1 WHERE x > 0",
            "SELECT MIN(x), MAX(x) FROM t1",
            "SELECT v, COUNT(*) FROM t1 GROUP BY v",
            "SELECT t1.s FROM t1, t2 WHERE t1.s = t2.s",
            "SELECT t1.s, t2.y FROM t1, t2 WHERE t1.s = t2.s AND t2.y > 1",
            "SELECT t1.s FROM t1, t2 WHERE t1.x = t2.y",
            "SELECT t1.s FROM t1, t2 WHERE t1.s = t2.s OR t1.x = t2.y",
            "SELECT COUNT(*) FROM t1, t2 WHERE t1.s = t2.s",
            "SELECT t1.s FROM t1, t2 WHERE t1.s = t2.s AND t1.v = 'p' AND t2.y < 5",
        ],
    )
    def test_agreement(self, sql):
        assert_same(ROWS1, ROWS2, sql)

    def test_empty_tables(self):
        assert_same([], [], "SELECT t1.s FROM t1, t2 WHERE t1.s = t2.s")
        assert_same([], [], "SELECT COUNT(*) FROM t1")


# ---------------------------------------------------------------------------
# Property-based differential testing
# ---------------------------------------------------------------------------

_row1 = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.one_of(st.none(), st.integers(0, 5)),
    st.one_of(st.none(), st.sampled_from(["p", "q"])),
)
_row2 = st.tuples(st.sampled_from(["a", "b", "c"]), st.one_of(st.none(), st.integers(0, 5)))

_atoms = st.sampled_from(
    [
        "t1.x = 2",
        "t1.x > 1",
        "t1.x <= 3",
        "t1.v = 'p'",
        "t1.v <> 'q'",
        "t1.s IN ('a', 'b')",
        "t1.s NOT IN ('c')",
        "t1.x BETWEEN 1 AND 4",
        "t1.v IS NULL",
        "t1.v IS NOT NULL",
        "t1.v LIKE 'p%'",
        "t2.y = 2",
        "t2.y > 0",
        "t1.s = t2.s",
        "t1.x = t2.y",
        "t1.x < t2.y",
    ]
)

_where = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} AND {b})", inner, inner),
        st.builds(lambda a, b: f"({a} OR {b})", inner, inner),
        st.builds(lambda a: f"NOT ({a})", inner),
    ),
    max_leaves=6,
)


class TestDifferentialProperty:
    @given(
        st.lists(_row1, max_size=6),
        st.lists(_row2, max_size=5),
        _where,
    )
    @settings(max_examples=200, deadline=None)
    def test_join_queries_agree(self, rows1, rows2, where):
        sql = f"SELECT t1.s, t1.x, t2.y FROM t1, t2 WHERE {where}"
        assert_same(rows1, rows2, sql)

    @given(st.lists(_row1, max_size=8), _where)
    @settings(max_examples=150, deadline=None)
    def test_single_table_count_agrees(self, rows1, where):
        if "t2." in where:
            where = f"({where.replace('t2.y', 't1.x').replace('t2.s', 't1.s')})"
        sql = f"SELECT COUNT(*) FROM t1 WHERE {where}"
        assert_same(rows1, [], sql)
