#!/usr/bin/env python
"""Serving tour: POST /v1/query, admission control, and the load story.

TRAC's reporter answers one query at a time; this tour puts it behind
the query-serving front end (``repro.serve``) and exercises the full
request path over real HTTP:

1. build an in-memory grid workload and wire a :class:`QueryService`
   (bounded worker pool + per-tenant token-bucket quotas) into the
   Observatory's HTTP server;
2. ``POST /v1/query`` and read back rows *plus* the recency report and
   the request's ``trace_id`` — every served query is traceable;
3. exhaust a tenant's quota and watch the server shed with
   ``429 Too Many Requests`` and a ``Retry-After`` hint instead of
   queueing without bound;
4. drive a short open-loop load run with the bundled generator and
   read the p99 straight from the ``trac_serve_request_seconds``
   histogram, then render the ``trac top`` serving line.

The same stack runs from the command line::

    trac simulate --db grid.sqlite --machines 8 --duration 60
    trac serve --db grid.sqlite --port 9464 --workers 8

Run:  python examples/serving_tour.py
"""

import json
import urllib.error
import urllib.request

from repro import obs
from repro.backends.memory import MemoryBackend
from repro.obs.dashboard import render_top
from repro.obs.server import ObservatoryServer
from repro.serve import LoadgenConfig, QueryService, ServeConfig, run_load
from repro.workload import (
    WorkloadConfig,
    generate_workload,
    load_workload,
    paper_queries,
    query_machine_indexes,
    workload_catalog,
)

SOURCES = 8


def post_query(url: str, sql: str, tenant: str = "default"):
    """POST one query; returns (status, parsed body, headers)."""
    request = urllib.request.Request(
        url + "/v1/query",
        data=json.dumps({"sql": sql, "tenant": tenant}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}"), dict(exc.headers)


def build_backend() -> MemoryBackend:
    backend = MemoryBackend(workload_catalog(SOURCES))
    backend.create_tables()
    data = generate_workload(
        WorkloadConfig(num_sources=SOURCES, data_ratio=10),
        query_machine_indexes(SOURCES),
    )
    load_workload(backend, data)
    return backend


def main() -> None:
    print("=== Serving tour ===")
    telemetry = obs.enable()
    backend = build_backend()
    sql = paper_queries(SOURCES)["Q1"]

    # -- 1. one query, end to end -------------------------------------------
    config = ServeConfig(workers=4, tenant_rate=500.0, tenant_burst=500.0)
    with QueryService(backend, config, telemetry=telemetry) as service:
        with ObservatoryServer(telemetry, query_service=service) as server:
            print(f"\nserving on {server.url} (POST /v1/query)")
            status, doc, _ = post_query(server.url, sql, tenant="analytics")
            print(f"POST /v1/query -> {status}: {len(doc['rows'])} rows "
                  f"for tenant {doc['tenant']!r}")
            print(f"  relevant sources : {len(doc['relevant_sources'])}")
            for notice in doc["notices"]:
                print(f"  {notice}")
            print(f"  trace_id: {doc['trace_id']}")

            # -- 4a. a short open-loop load run -----------------------------
            result = run_load(
                LoadgenConfig(
                    url=server.url + "/v1/query",
                    sql=sql,
                    rate=50.0,
                    duration=1.0,
                    senders=8,
                )
            )
            print(f"\nopen-loop load: {result.requests} requests at 50/s, "
                  f"ok={result.ok}, p99={result.latency_ms(0.99):.1f} ms")

            # -- 4b. the trac top serving line ------------------------------
            with urllib.request.urlopen(server.url + "/status", timeout=5.0) as resp:
                status_doc = json.loads(resp.read())
            frame = render_top(status_doc)
            serving_line = next(
                line for line in frame.splitlines() if line.startswith("serve:")
            )
            print("\ntrac top serving line:")
            print(f"  {serving_line}")

    # -- 3. overload: the server sheds, it does not queue forever ------------
    print("\nquota shedding (tenant budget: 3 requests, no refill):")
    tight = ServeConfig(workers=2, tenant_rate=0.0, tenant_burst=3.0)
    with QueryService(backend, tight, telemetry=telemetry) as service:
        with ObservatoryServer(telemetry, query_service=service) as server:
            for i in range(5):
                status, doc, headers = post_query(server.url, sql)
                if status == 429:
                    print(f"  request {i + 1}: 429 Too Many Requests "
                          f"(Retry-After: {headers['Retry-After']}s)")
                else:
                    print(f"  request {i + 1}: {status} OK")
            counts = service.counts()
    print(f"admitted={counts['ok']} shed={counts['rejected_quota']} "
          "— admission control is exact")
    print("\ndone: rows, recency report and trace travel on every response")


if __name__ == "__main__":
    main()
