"""Per-tenant admission state: token buckets and inflight ceilings.

A serving front end shared by many tenants needs two independent brakes
per tenant (the R-GMA deployments that motivated ``trac serve`` learned
this the hard way — one chatty consumer can starve every producer):

* a **token bucket** bounding the sustained request *rate* (``rate``
  tokens/second, bursts up to ``burst``), and
* an **inflight ceiling** bounding how many of a tenant's requests may be
  admitted-but-unfinished at once (queued or executing), so a tenant
  cannot fill the whole worker queue within its rate budget.

Both checks happen atomically in :meth:`TenantQuotas.admit` under one
lock, which makes rejections *exact* under contention: with a burst of
``B`` tokens and ``N > B`` concurrent arrivals, exactly ``N - B`` are
rejected — never more, never fewer (the concurrency tests pin this).

Rejections raise :class:`QuotaExceeded` carrying a machine-readable
``kind`` (``"quota"`` or ``"inflight"``) and a ``retry_after`` hint in
seconds, which the HTTP layer surfaces as ``429`` + ``Retry-After``.

The clock is injectable (``clock=time.monotonic`` by default) so tests
drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import TracError


class QuotaExceeded(TracError):
    """A tenant exceeded its rate or inflight quota (HTTP 429).

    ``kind`` is ``"quota"`` (token bucket empty) or ``"inflight"`` (too
    many admitted-but-unfinished requests); ``retry_after`` is a hint in
    seconds until a retry could plausibly succeed.
    """

    def __init__(self, message: str, kind: str, retry_after: float) -> None:
        super().__init__(message)
        self.kind = kind
        self.retry_after = max(0.0, float(retry_after))


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second up to ``burst``.

    ``try_acquire`` returns ``None`` on success or the number of seconds
    until the requested tokens would be available. ``rate=0`` means no
    refill (the bucket only ever holds its initial burst) — useful for
    exactness tests and hard per-session caps.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst <= 0:
            raise TracError(f"token bucket burst must be positive, got {burst}")
        if rate < 0:
            raise TracError(f"token bucket rate cannot be negative, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if self.rate > 0 and now > self._updated:
            self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> Optional[float]:
        """Take ``tokens`` if available; else return seconds until they are."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return None
            deficit = tokens - self._tokens
            if self.rate <= 0:
                return float("inf")
            return deficit / self.rate

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, burst={self.burst}, tokens={self.tokens:.2f})"


class TenantQuotas:
    """Admission state for every tenant: one bucket + inflight count each.

    Tenants are created lazily on first sight with the shared defaults.
    :meth:`admit` and :meth:`release` bracket one request's admitted
    lifetime; the service calls ``release`` from the request future's
    done-callback so every admitted request — completed, failed, expired
    or cancelled — releases exactly once.
    """

    def __init__(
        self,
        rate: float = 100.0,
        burst: float = 200.0,
        max_inflight: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_inflight = int(max_inflight)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight: Dict[str, int] = {}
        self._rejections: Dict[str, int] = {"quota": 0, "inflight": 0}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise :class:`QuotaExceeded`.

        The inflight ceiling is checked first (it consumes no tokens), then
        the token bucket; both under one lock so the decision is atomic.
        """
        with self._lock:
            inflight = self._inflight.get(tenant, 0)
            if inflight >= self.max_inflight:
                self._rejections["inflight"] += 1
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {inflight} requests inflight "
                    f"(limit {self.max_inflight})",
                    kind="inflight",
                    retry_after=1.0,
                )
            wait = self._bucket(tenant).try_acquire()
            if wait is not None:
                self._rejections["quota"] += 1
                hint = 1.0 if wait == float("inf") else wait
                raise QuotaExceeded(
                    f"tenant {tenant!r} exceeded its request rate "
                    f"({self.rate}/s, burst {self.burst:g})",
                    kind="quota",
                    retry_after=hint,
                )
            self._inflight[tenant] = inflight + 1

    def release(self, tenant: str) -> None:
        """Release one previously admitted request for ``tenant``."""
        with self._lock:
            current = self._inflight.get(tenant, 0)
            if current > 0:
                self._inflight[tenant] = current - 1

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)

    def total_inflight(self) -> int:
        with self._lock:
            return sum(self._inflight.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant admission state (the /status serving block)."""
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for tenant, bucket in sorted(self._buckets.items()):
                out[tenant] = {
                    "inflight": self._inflight.get(tenant, 0),
                    "tokens": round(bucket.tokens, 3),
                }
            return out

    def rejections(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._rejections)

    def __repr__(self) -> str:
        return (
            f"TenantQuotas(rate={self.rate}/s, burst={self.burst:g}, "
            f"max_inflight={self.max_inflight}, tenants={len(self._buckets)})"
        )
