"""EXPLAIN ANALYZE for the mini engine.

``explain_query`` executes a query with the evaluator's trace hook enabled
and renders the decisions the executor actually made — predicate push-downs
with their selectivities, the join order, and the join methods. Because the
trace is produced by the execution itself, it can never drift from the real
plan.
"""

from __future__ import annotations

from typing import List

from repro.engine.evaluate import execute_query
from repro.engine.relation import Database
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve


def explain_query(db: Database, sql: str) -> str:
    """Run ``sql`` and return its execution trace plus the result size."""
    resolved = resolve(parse_query(sql), db.catalog)
    trace: List[str] = []
    result = execute_query(db, resolved, trace=trace)
    lines = [f"explain: {sql}"]
    lines.extend(f"  {entry}" for entry in trace)
    lines.append(f"  result: {len(result.rows)} row(s), columns {result.columns}")
    return "\n".join(lines)
