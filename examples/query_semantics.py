#!/usr/bin/env python
"""Section 4.2 walk-through: query semantics vs recency.

Two queries with the same user intent — "is my job running yet?" — have
different semantics and therefore different recency reports:

* Q3 reads only ``R`` (what running machines report): ALL sources are
  relevant, because any machine could be the one running the job.
* Q4 joins ``S`` (what the scheduler reports) with ``R``: the relevant set
  shrinks to the scheduler plus the machine the scheduler named.

Run:  python examples/query_semantics.py
"""

from repro import Catalog, Column, FiniteDomain, MemoryBackend, TableSchema
from repro.core import RecencyReporter

MACHINES = ["myScheduler"] + [f"node{i}" for i in range(1, 8)]

Q3 = "SELECT R.runningMachineId FROM r_jobs R WHERE R.jobId = 'myId'"
Q4 = (
    "SELECT R.runningMachineId FROM s_jobs S, r_jobs R "
    "WHERE S.schedMachineId = 'myScheduler' AND S.jobId = 'myId' "
    "AND R.jobId = 'myId' AND R.runningMachineId = S.remoteMachineId"
)


def build_backend() -> MemoryBackend:
    machines = FiniteDomain(MACHINES)
    jobs = FiniteDomain({"myId", "otherId"})
    s_jobs = TableSchema(
        "s_jobs",
        [
            Column("schedMachineId", "TEXT", machines),
            Column("jobId", "TEXT", jobs),
            Column("remoteMachineId", "TEXT", machines),
        ],
        source_column="schedMachineId",
    )
    r_jobs = TableSchema(
        "r_jobs",
        [
            Column("runningMachineId", "TEXT", machines),
            Column("jobId", "TEXT", jobs),
        ],
        source_column="runningMachineId",
    )
    backend = MemoryBackend(Catalog([s_jobs, r_jobs]))
    for i, machine in enumerate(MACHINES):
        backend.upsert_heartbeat(machine, 1000.0 + i)
    return backend


def show(reporter, label, sql):
    report = reporter.report(sql)
    print(f"  {label}: answer={report.result.rows or '(empty)'}")
    print(f"      relevant sources ({len(report.relevant_source_ids)}): "
          f"{sorted(report.relevant_source_ids)}")
    return report


def main() -> None:
    backend = build_backend()
    reporter = RecencyReporter(backend, create_temp_tables=False)

    print("Case analysis for 'is my job myId running yet?'\n")

    print("State 0: database knows nothing about the job")
    show(reporter, "Q3 (R only)  ", Q3)
    show(reporter, "Q4 (S join R)", Q4)
    print("  -> Q3 must watch every machine; Q4 has nothing to watch until")
    print("     either side reports (no single update can change its answer).\n")

    print("State 1: the scheduler reported — assigned to node3")
    backend.insert_rows("s_jobs", [("myScheduler", "myId", "node3")])
    show(reporter, "Q3 (R only)  ", Q3)
    show(reporter, "Q4 (S join R)", Q4)
    print("  -> Q4's relevant set is now just node3: only its report can")
    print("     flip the (empty) answer in one step.\n")

    print("State 2: node3 reported it is running the job")
    backend.insert_rows("r_jobs", [("node3", "myId")])
    show(reporter, "Q3 (R only)  ", Q3)
    report = show(reporter, "Q4 (S join R)", Q4)
    print("  -> Q4 answers node3 and reports {myScheduler, node3}: either")
    print("     one reporting in could still change this answer.\n")

    print("Paper's tradeoff, in numbers:")
    q3_relevant = len(reporter.report(Q3).relevant_source_ids)
    q4_relevant = len(report.relevant_source_ids)
    print(f"  Q3 relevant sources: {q3_relevant} (every machine)")
    print(f"  Q4 relevant sources: {q4_relevant}")
    print("  Q3 tolerates a missing S record; Q4 buys a focused recency")
    print("  report by requiring the scheduler's view to be present.")


if __name__ == "__main__":
    main()
