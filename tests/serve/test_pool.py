"""The bounded worker pool: admission, deadlines, per-worker state."""

import threading
import time

import pytest

from repro.errors import TracError
from repro.serve.pool import DeadlineExceeded, QueueFull, WorkerPool


class TestExecution:
    def test_submit_runs_and_returns_result(self):
        with WorkerPool(workers=2, queue_depth=4) as pool:
            future = pool.submit(lambda state: 21 * 2)
            assert future.result(timeout=5.0) == 42

    def test_exceptions_travel_on_the_future(self):
        def boom(state):
            raise ValueError("kaput")

        with WorkerPool(workers=1, queue_depth=4) as pool:
            future = pool.submit(boom)
            with pytest.raises(ValueError, match="kaput"):
                future.result(timeout=5.0)

    def test_worker_state_factory_runs_once_per_thread(self):
        built = []
        lock = threading.Lock()

        class State:
            def __init__(self):
                with lock:
                    built.append(self)
                self.closed = False

            def close(self):
                self.closed = True

        pool = WorkerPool(workers=3, queue_depth=64, worker_state_factory=State)
        with pool:
            futures = [pool.submit(lambda s: id(s)) for _ in range(30)]
            ids = {f.result(timeout=5.0) for f in futures}
        assert len(built) == 3
        assert ids <= {id(s) for s in built}
        assert all(s.closed for s in built)  # stop() closes worker state

    def test_stats_count_executed_jobs(self):
        with WorkerPool(workers=1, queue_depth=4) as pool:
            for _ in range(5):
                pool.submit(lambda s: None).result(timeout=5.0)
            stats = pool.stats()
        assert stats["executed"] == 5
        assert stats["queue_capacity"] == 4
        assert stats["mean_service_seconds"] > 0


class TestAdmission:
    def test_full_queue_raises_queue_full_with_retry_hint(self):
        release = threading.Event()
        started = threading.Event()

        def block(state):
            started.set()
            release.wait(timeout=10.0)

        pool = WorkerPool(workers=1, queue_depth=2)
        try:
            pool.submit(block)
            assert started.wait(timeout=5.0)
            pool.submit(lambda s: None)
            pool.submit(lambda s: None)  # queue now holds 2
            with pytest.raises(QueueFull) as exc_info:
                pool.submit(lambda s: None)
            assert exc_info.value.retry_after > 0
            assert exc_info.value.kind == "queue"
        finally:
            release.set()
            pool.stop()

    def test_expired_deadline_cancels_queued_work(self):
        release = threading.Event()
        started = threading.Event()
        ran = []

        def block(state):
            started.set()
            release.wait(timeout=10.0)

        pool = WorkerPool(workers=1, queue_depth=8)
        try:
            pool.submit(block)
            assert started.wait(timeout=5.0)
            # Queued behind the blocker with an already-tight deadline.
            doomed = pool.submit(
                lambda s: ran.append(1), deadline=time.monotonic() + 0.05
            )
            time.sleep(0.2)
            release.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5.0)
            assert not ran  # the job body never executed
            assert pool.stats()["expired"] == 1
        finally:
            release.set()
            pool.stop()

    def test_cancelled_while_queued_never_runs(self):
        release = threading.Event()
        started = threading.Event()
        ran = []

        def block(state):
            started.set()
            release.wait(timeout=10.0)

        pool = WorkerPool(workers=1, queue_depth=8)
        try:
            pool.submit(block)
            assert started.wait(timeout=5.0)
            queued = pool.submit(lambda s: ran.append(1))
            assert queued.cancel()
            release.set()
            time.sleep(0.1)
            assert not ran
        finally:
            release.set()
            pool.stop()


class TestLifecycle:
    def test_submit_after_stop_raises(self):
        pool = WorkerPool(workers=1, queue_depth=2)
        pool.start()
        pool.stop()
        with pytest.raises(TracError):
            pool.submit(lambda s: None)

    def test_stop_without_start_is_fine(self):
        WorkerPool(workers=1, queue_depth=1).stop()

    def test_validation(self):
        with pytest.raises(TracError):
            WorkerPool(workers=0)
        with pytest.raises(TracError):
            WorkerPool(queue_depth=0)
