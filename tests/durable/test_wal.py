"""WAL framing: round trips, torn tails, fsync policies, record codec."""

import os

import pytest

from repro.durable.wal import (
    MAGIC,
    MAX_FRAME_BYTES,
    FrameWriter,
    decode_record,
    encode_batch,
    encode_event,
    encode_heartbeat,
    list_wal_segments,
    read_wal,
    repair_torn_tail,
    scan_frames,
    wal_path,
)
from repro.errors import DurabilityError


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


def write_frames(path, payloads, **kwargs):
    with FrameWriter(path, **kwargs) as writer:
        for payload in payloads:
            writer.append(payload)


class TestFrameRoundTrip:
    def test_append_then_scan(self, tmp_path):
        path = str(tmp_path / "j.wal")
        payloads = [b"alpha", b"", b"gamma" * 100]
        write_frames(path, payloads)
        scan = scan_frames(path)
        assert scan.payloads == payloads
        assert scan.torn is None
        assert scan.valid_size == os.path.getsize(path)

    def test_empty_file_is_clean(self, tmp_path):
        path = str(tmp_path / "j.wal")
        open(path, "wb").close()
        scan = scan_frames(path)
        assert scan.payloads == [] and scan.torn is None

    def test_missing_file_reported(self, tmp_path):
        scan = scan_frames(str(tmp_path / "nope.wal"))
        assert scan.torn == "missing file"

    def test_reopen_appends_after_existing_frames(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(path, [b"one"])
        write_frames(path, [b"two"])
        assert scan_frames(path).payloads == [b"one", b"two"]

    def test_oversized_payload_rejected(self, tmp_path):
        writer = FrameWriter(str(tmp_path / "j.wal"))
        with pytest.raises(DurabilityError):
            writer.append(b"x" * (MAX_FRAME_BYTES + 1))
        writer.close()


class TestTornTails:
    def test_truncated_payload_yields_prefix(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(path, [b"first", b"second"])
        with open(path, "rb+") as fp:
            fp.truncate(os.path.getsize(path) - 3)
        scan = scan_frames(path)
        assert scan.payloads == [b"first"]
        assert scan.torn == "truncated frame payload"

    def test_truncated_header_yields_prefix(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(path, [b"first"])
        with open(path, "ab") as fp:
            fp.write(b"\x07\x00")  # half a header
        scan = scan_frames(path)
        assert scan.payloads == [b"first"]
        assert scan.torn == "truncated frame header"

    def test_checksum_mismatch_stops_scan(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(path, [b"first", b"second"])
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # corrupt the final payload byte
        open(path, "wb").write(bytes(data))
        scan = scan_frames(path)
        assert scan.payloads == [b"first"]
        assert scan.torn == "frame checksum mismatch"

    def test_implausible_length_stops_scan(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(path, [b"first"])
        with open(path, "ab") as fp:
            fp.write((MAX_FRAME_BYTES + 1).to_bytes(4, "little") + b"\0\0\0\0")
        scan = scan_frames(path)
        assert scan.payloads == [b"first"]
        assert scan.torn == "implausible frame length"

    def test_bad_magic_is_torn_with_empty_prefix(self, tmp_path):
        path = str(tmp_path / "j.wal")
        open(path, "wb").write(b"NOTAWAL!\n" + b"junk")
        scan = scan_frames(path)
        assert scan.payloads == [] and scan.valid_size == 0
        assert scan.torn == "bad or truncated magic header"

    def test_repair_truncates_then_appending_continues(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(path, [b"first", b"second"])
        with open(path, "rb+") as fp:
            fp.truncate(os.path.getsize(path) - 3)
        scan = repair_torn_tail(path)
        assert scan.torn == "truncated frame payload"  # reported for the caller
        assert os.path.getsize(path) == scan.valid_size
        write_frames(path, [b"third"])
        assert scan_frames(path).payloads == [b"first", b"third"]

    def test_repair_is_noop_on_clean_file(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(path, [b"first"])
        size = os.path.getsize(path)
        assert repair_torn_tail(path).torn is None
        assert os.path.getsize(path) == size

    def test_partial_magic_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "j.wal")
        open(path, "wb").write(MAGIC[:4])
        write_frames(path, [b"fresh"])
        assert scan_frames(path).payloads == [b"fresh"]


class TestFsyncPolicies:
    def test_always_acknowledges_every_append(self, tmp_path):
        writer = FrameWriter(str(tmp_path / "j.wal"), fsync="always")
        assert writer.append(b"a") is True
        assert writer.append(b"b") is True
        assert writer.sync_count >= 2
        writer.close()

    def test_never_acknowledges_nothing(self, tmp_path):
        writer = FrameWriter(str(tmp_path / "j.wal"), fsync="never")
        assert writer.append(b"a") is False
        assert writer.sync_count == 0
        writer.close(sync=False)

    def test_interval_syncs_on_the_clock(self, tmp_path):
        clock = FakeClock()
        writer = FrameWriter(
            str(tmp_path / "j.wal"), fsync="interval", fsync_interval=5.0, clock=clock
        )
        assert writer.append(b"a") is False
        clock.now += 5.0
        assert writer.append(b"b") is True
        assert writer.append(b"c") is False
        writer.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(DurabilityError):
            FrameWriter(str(tmp_path / "j.wal"), fsync="sometimes")

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(DurabilityError):
            FrameWriter(str(tmp_path / "j.wal"), fsync="interval", fsync_interval=0.0)

    def test_closed_writer_refuses_appends(self, tmp_path):
        writer = FrameWriter(str(tmp_path / "j.wal"))
        writer.close()
        assert writer.closed
        with pytest.raises(DurabilityError):
            writer.append(b"late")


class TestSegments:
    def test_wal_path_and_listing(self, tmp_path):
        directory = str(tmp_path)
        for epoch in (2, 0, 1):
            open(wal_path(directory, epoch), "wb").close()
        open(os.path.join(directory, "wal-junk.wal"), "wb").close()
        open(os.path.join(directory, "other.txt"), "wb").close()
        segments = list_wal_segments(directory)
        assert [epoch for epoch, _ in segments] == [0, 1, 2]

    def test_missing_directory_lists_nothing(self, tmp_path):
        assert list_wal_segments(str(tmp_path / "absent")) == []


class TestRecordCodec:
    def test_event_round_trip(self):
        record = decode_record(encode_event("m1", 7, "line"))
        assert record == {"k": "ev", "s": "m1", "o": 7, "l": "line"}

    def test_batch_round_trip(self):
        record = decode_record(encode_batch("m1", 3, 6, ["a", "b"]))
        assert record == {"k": "bat", "s": "m1", "a": 3, "b": 6, "l": ["a", "b"]}

    def test_heartbeat_round_trip(self):
        record = decode_record(encode_heartbeat("m1", 42.5))
        assert record == {"k": "hb", "s": "m1", "r": 42.5}

    @pytest.mark.parametrize(
        "payload",
        [
            b"not json",
            b"[1,2]",
            b'{"k":"zz"}',
            b'{"k":"ev","s":"m1","o":"seven","l":"x"}',
            b'{"k":"bat","s":"m1","a":0,"b":1,"l":"notalist"}',
            b'{"k":"hb","s":"m1","r":"soon"}',
        ],
    )
    def test_malformed_records_rejected(self, payload):
        with pytest.raises(DurabilityError):
            decode_record(payload)

    def test_read_wal_decodes_in_order(self, tmp_path):
        path = str(tmp_path / "j.wal")
        write_frames(
            path, [encode_event("m1", 0, "x"), encode_heartbeat("m1", 9.0)]
        )
        records, scan = read_wal(path)
        assert [r["k"] for r in records] == ["ev", "hb"]
        assert scan.torn is None
