"""Render AST nodes back to SQL text.

The recency-query generator builds new :class:`~repro.sqlparser.ast.Query`
trees and then prints them through this module to obtain SQL it can hand to
any backend. Printing is deterministic, fully parenthesized around OR groups
and round-trips through the parser (``parse(print(q)) == q`` up to resolver
annotations).
"""

from __future__ import annotations

from repro.errors import UnsupportedQueryError
from repro.sqlparser import ast


def to_sql(query: ast.Query) -> str:
    """Render a full query."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item_to_sql(item) for item in query.select_items))
    parts.append("FROM")
    parts.append(", ".join(_table_ref_to_sql(t) for t in query.tables))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(expr_to_sql(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(expr_to_sql(e) for e in query.group_by))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(
            ", ".join(
                f"{expr_to_sql(item.expr)}{' DESC' if item.descending else ''}"
                for item in query.order_by
            )
        )
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def _select_item_to_sql(item: ast.SelectItem) -> str:
    if item.is_star:
        return "*"
    assert item.expr is not None
    text = expr_to_sql(item.expr)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _table_ref_to_sql(table: ast.TableRef) -> str:
    if table.alias:
        return f"{table.name} {table.alias}"
    return table.name


def literal_to_sql(value: object) -> str:
    """Render one literal value as SQL text."""
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, (int, float)):
        return repr(value)
    raise UnsupportedQueryError(f"cannot render literal {value!r}")


def expr_to_sql(expr: ast.Expr, parenthesize: bool = False) -> str:
    """Render an expression. ``parenthesize`` wraps OR groups for embedding."""
    text = _expr_to_sql(expr)
    if parenthesize and isinstance(expr, ast.Or):
        return f"({text})"
    return text


def _expr_to_sql(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return literal_to_sql(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return expr.display()
    if isinstance(expr, ast.AggregateCall):
        if expr.argument is None:
            return f"{expr.func}(*)"
        inner = _expr_to_sql(expr.argument)
        if expr.distinct:
            return f"{expr.func}(DISTINCT {inner})"
        return f"{expr.func}({inner})"
    if isinstance(expr, ast.Comparison):
        return f"{_operand(expr.left)} {expr.op} {_operand(expr.right)}"
    if isinstance(expr, ast.InList):
        word = "NOT IN" if expr.negated else "IN"
        values = ", ".join(literal_to_sql(v.value) for v in expr.values)
        return f"{_operand(expr.expr)} {word} ({values})"
    if isinstance(expr, ast.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{_operand(expr.expr)} {word} {_operand(expr.low)} AND {_operand(expr.high)}"
        )
    if isinstance(expr, ast.Like):
        word = "NOT LIKE" if expr.negated else "LIKE"
        return f"{_operand(expr.expr)} {word} {literal_to_sql(expr.pattern)}"
    if isinstance(expr, ast.IsNull):
        word = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_operand(expr.expr)} {word}"
    if isinstance(expr, ast.And):
        return " AND ".join(_wrap_bool(item) for item in expr.items)
    if isinstance(expr, ast.Or):
        return " OR ".join(_wrap_bool(item, in_or=True) for item in expr.items)
    if isinstance(expr, ast.Not):
        return f"NOT ({_expr_to_sql(expr.expr)})"
    raise UnsupportedQueryError(f"cannot render expression {expr!r}")


def _operand(expr: ast.Expr) -> str:
    """Render a scalar operand (no boolean structure expected)."""
    return _expr_to_sql(expr)


def _wrap_bool(expr: ast.Expr, in_or: bool = False) -> str:
    """Parenthesize nested boolean connectives to preserve precedence."""
    text = _expr_to_sql(expr)
    if isinstance(expr, ast.Or):
        return f"({text})"
    if in_or and isinstance(expr, ast.And):
        # AND binds tighter than OR, so parentheses are not required, but
        # adding them keeps the output unambiguous for human readers.
        return f"({text})"
    return text
