"""Ablation benchmarks for the design choices DESIGN.md calls out.

* DNF blow-up guard: plan-generation cost and fallback behaviour as the
  conjunct budget shrinks against an OR-heavy query.
* Satisfiability pruning: plan cost with and without the check, and the
  precision it buys (pruned conjuncts -> fewer subqueries).
* z-score split: statistics cost as the relevant-source count grows.
* Backend choice: the same report on SQLite vs the pure-Python engine.

Run:  pytest benchmarks/test_ablations.py --benchmark-only
"""

import pytest

from repro import MemoryBackend
from repro.core.report import RecencyReporter
from repro.core.statistics import SourceRecency, zscore_split
from repro.workload.generator import (
    WorkloadConfig,
    generate_workload,
    load_workload,
    workload_catalog,
)
from repro.workload.queries import paper_queries, query_machine_indexes


def _or_heavy_query(clauses: int) -> str:
    """(idle OR t > c_i) AND ... over distinct cutoffs: 2^clauses raw
    conjuncts, all satisfiable (range predicates compose)."""
    parts = [
        f"(A.value = 'idle' OR A.event_time > {1000 + i})" for i in range(clauses)
    ]
    return "SELECT COUNT(*) FROM activity A WHERE " + " AND ".join(parts)


class TestDnfGuardAblation:
    @pytest.mark.parametrize("budget", [4, 64, 4096])
    def test_plan_cost_vs_budget(self, benchmark, many_sources_reporter, budget):
        """A small budget turns planning into a cheap bail-out; a large one
        pays the full distribution cost."""
        reporter = many_sources_reporter
        reporter.max_conjuncts = budget
        sql = _or_heavy_query(8)  # 256 conjuncts at full expansion
        benchmark.group = "ablation-dnf-budget"
        plan = benchmark(lambda: reporter.plan_for(sql))
        if budget < 256:
            assert plan.mode == "all"  # complete fallback
        else:
            assert plan.mode == "focused"

    def test_fallback_report_is_still_complete(self, many_sources_reporter, benchmark):
        reporter = many_sources_reporter
        reporter.max_conjuncts = 4
        sql = _or_heavy_query(8)
        benchmark.group = "ablation-dnf-fallback"
        report = benchmark(lambda: reporter.report(sql))
        # Fallback = every source: complete by construction.
        assert len(report.relevant_source_ids) == len(
            reporter.backend.heartbeat_rows()
        )


class TestSatisfiabilityAblation:
    UNSAT_QUERY = (
        "SELECT COUNT(*) FROM activity A "
        "WHERE A.value = 'idle' AND A.value = 'busy' AND A.mach_id = 'Tao1'"
    )

    def test_plan_with_pruning(self, benchmark, many_sources_reporter):
        benchmark.group = "ablation-satcheck"
        many_sources_reporter.check_satisfiability = True
        plan = benchmark(lambda: many_sources_reporter.plan_for(self.UNSAT_QUERY))
        assert plan.mode == "empty"  # pruned: zero recency work at run time

    def test_plan_without_pruning(self, benchmark, many_sources_reporter):
        benchmark.group = "ablation-satcheck"
        many_sources_reporter.check_satisfiability = False
        try:
            plan = benchmark(lambda: many_sources_reporter.plan_for(self.UNSAT_QUERY))
        finally:
            many_sources_reporter.check_satisfiability = True
        assert plan.mode == "focused"  # keeps a (useless) subquery
        assert not plan.minimal

    def test_report_precision_difference(self, many_sources_reporter, benchmark):
        """Without pruning the report names a source for a query whose
        answer no update can change."""
        reporter = many_sources_reporter
        reporter.check_satisfiability = False
        try:
            benchmark.group = "ablation-satcheck-report"
            report = benchmark(lambda: reporter.report(self.UNSAT_QUERY))
        finally:
            reporter.check_satisfiability = True
        assert report.relevant_source_ids == {"Tao1"}  # false positive
        pruned = reporter.report(self.UNSAT_QUERY)
        assert pruned.relevant_source_ids == set()


class TestZScoreAblation:
    @pytest.mark.parametrize("count", [100, 1000, 10000])
    def test_split_cost_scales_linearly(self, benchmark, count):
        data = [SourceRecency(f"s{i}", 1000.0 + (i % 97)) for i in range(count)]
        data.append(SourceRecency("dead", -1e9))
        benchmark.group = "ablation-zscore-size"
        split = benchmark(lambda: zscore_split(data))
        assert [s.source_id for s in split.exceptional] == ["dead"]

    @pytest.mark.parametrize("threshold", [1.5, 3.0, 6.0])
    def test_threshold_choice(self, benchmark, threshold):
        data = [SourceRecency(f"s{i}", 1000.0 + (i % 13) * 60.0) for i in range(500)]
        data.extend(SourceRecency(f"dead{i}", -1e6 * (i + 1)) for i in range(3))
        benchmark.group = "ablation-zscore-threshold"
        split = benchmark(lambda: zscore_split(data, threshold))
        assert len(split.exceptional) <= 3 or threshold < 3.0


class TestSkewAblation:
    """Zipf-skewed per-source row counts (real grids are never uniform):
    the Focused method's advantage on selective queries is insensitive to
    skew because its recency query touches Heartbeat, not Activity."""

    NUM_SOURCES = 500
    RATIO = 20

    @pytest.fixture(scope="class", params=[0.0, 1.0])
    def skewed_reporter(self, request):
        from repro import SQLiteBackend

        backend = SQLiteBackend(workload_catalog(self.NUM_SOURCES))
        config = WorkloadConfig(
            num_sources=self.NUM_SOURCES, data_ratio=self.RATIO, skew=request.param
        )
        load_workload(
            backend,
            generate_workload(config, query_machine_indexes(self.NUM_SOURCES)),
        )
        yield RecencyReporter(backend, create_temp_tables=False), request.param
        backend.close()

    def test_q1_focused(self, benchmark, skewed_reporter):
        reporter, skew = skewed_reporter
        benchmark.group = f"ablation-skew-{skew}"
        sql = paper_queries(self.NUM_SOURCES)["Q1"]
        report = benchmark(lambda: reporter.report(sql))
        assert len(report.relevant_source_ids) == 6

    def test_q2_focused(self, benchmark, skewed_reporter):
        reporter, skew = skewed_reporter
        benchmark.group = f"ablation-skew-{skew}"
        sql = paper_queries(self.NUM_SOURCES)["Q2"]
        report = benchmark(lambda: reporter.report(sql))
        assert len(report.relevant_source_ids) == self.NUM_SOURCES - 6


class TestPlanCacheAblation:
    """The plan cache automates the Focused-hardcoded speedup."""

    def test_focused_cold(self, benchmark, many_sources_reporter, many_sources_queries):
        sql = many_sources_queries["Q3"]
        benchmark.group = "ablation-plan-cache"
        benchmark(lambda: many_sources_reporter.report(sql, method="focused"))

    def test_focused_with_cache(
        self, benchmark, many_sources_backend, many_sources_queries
    ):
        from repro.core.report import RecencyReporter

        sql = many_sources_queries["Q3"]
        reporter = RecencyReporter(
            many_sources_backend, create_temp_tables=False, plan_cache_size=16
        )
        reporter.report(sql)  # warm the cache outside the timed region
        benchmark.group = "ablation-plan-cache"
        benchmark(lambda: reporter.report(sql, method="focused"))
        assert reporter.plan_cache_hits > 0


class TestBackendAblation:
    """SQLite vs the pure-Python engine on an identical small workload."""

    NUM_SOURCES = 200
    RATIO = 10

    @pytest.fixture(scope="class")
    def memory_reporter(self):
        backend = MemoryBackend(workload_catalog(self.NUM_SOURCES))
        config = WorkloadConfig(num_sources=self.NUM_SOURCES, data_ratio=self.RATIO)
        load_workload(backend, generate_workload(config, query_machine_indexes(self.NUM_SOURCES)))
        return RecencyReporter(backend, create_temp_tables=False)

    @pytest.fixture(scope="class")
    def sqlite_reporter(self):
        from repro import SQLiteBackend

        backend = SQLiteBackend(workload_catalog(self.NUM_SOURCES))
        config = WorkloadConfig(num_sources=self.NUM_SOURCES, data_ratio=self.RATIO)
        load_workload(backend, generate_workload(config, query_machine_indexes(self.NUM_SOURCES)))
        yield RecencyReporter(backend, create_temp_tables=False)
        backend.close()

    @pytest.mark.parametrize("query", ["Q1", "Q3"])
    def test_memory_backend(self, benchmark, memory_reporter, query):
        sql = paper_queries(self.NUM_SOURCES)[query]
        benchmark.group = f"ablation-backend-{query}"
        report = benchmark(lambda: memory_reporter.report(sql))
        assert len(report.relevant_source_ids) == 6

    @pytest.mark.parametrize("query", ["Q1", "Q3"])
    def test_sqlite_backend(self, benchmark, sqlite_reporter, query):
        sql = paper_queries(self.NUM_SOURCES)[query]
        benchmark.group = f"ablation-backend-{query}"
        report = benchmark(lambda: sqlite_reporter.report(sql))
        assert len(report.relevant_source_ids) == 6

    @pytest.mark.parametrize("query", ["Q1", "Q3"])
    def test_backends_agree(self, memory_reporter, sqlite_reporter, query, benchmark):
        sql = paper_queries(self.NUM_SOURCES)[query]
        benchmark.group = f"ablation-backend-{query}-agreement"
        mem = benchmark(lambda: memory_reporter.report(sql))
        sq = sqlite_reporter.report(sql)
        assert mem.relevant_source_ids == sq.relevant_source_ids
        assert mem.result.rows == sq.result.rows
