"""Timing protocol.

Section 5.2: "Each individual query was run 11 times and the average
response time of the last 10 runs is used to minimize fluctuation." The
default here keeps the warm-up discard but uses fewer repetitions so the
full sweep stays laptop-friendly; pass ``runs=11`` for the paper's exact
protocol.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.bench.metrics import overhead
from repro.core.report import SPAN_REPORT, RecencyReporter
from repro.core.relevance import RelevancePlan
from repro.engine.cache import get_cache
from repro.obs import Telemetry, phase_durations

#: Paper protocol: 11 runs, first discarded.
PAPER_RUNS = 11


def time_call(fn: Callable[[], object], runs: int = 5, drop_first: bool = True) -> float:
    """Mean wall-clock seconds of ``fn()`` over ``runs`` calls.

    The first call is a discarded warm-up when ``drop_first`` (and
    ``runs > 1``), matching the paper's measurement protocol.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    samples: List[float] = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    if drop_first and len(samples) > 1:
        samples = samples[1:]
    return sum(samples) / len(samples)


class MethodMeasurement:
    """Timings of one (query, method) cell of Figure 1 / Figure 2.

    ``phases`` maps phase span names (``report.user_query``, ...) to mean
    durations in seconds, captured from an instrumented run outside the
    timed region — the per-phase breakdown benchmark JSON carries.

    ``caches`` carries the fast-path cache activity observed during the
    timed report loop: resolved-query cache hits/misses (the process-wide
    LRU in :mod:`repro.engine.cache`) and relevance plan-cache hits.
    """

    __slots__ = ("method", "t_plain", "t_report", "relevant_count", "phases", "caches")

    def __init__(
        self,
        method: str,
        t_plain: float,
        t_report: float,
        relevant_count: int,
        phases: Optional[Dict[str, float]] = None,
        caches: Optional[Dict[str, int]] = None,
    ) -> None:
        self.method = method
        self.t_plain = t_plain
        self.t_report = t_report
        self.relevant_count = relevant_count
        self.phases = phases or {}
        self.caches = caches or {}

    @property
    def overhead(self) -> float:
        return overhead(self.t_plain, self.t_report)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form, phases flattened under ``phase_*`` keys."""
        out: Dict[str, object] = {
            "method": self.method,
            "t_plain_s": self.t_plain,
            "t_report_s": self.t_report,
            "overhead": self.overhead,
            "relevant_sources": self.relevant_count,
        }
        for name, seconds in sorted(self.phases.items()):
            out[f"phase_{name.split('.', 1)[-1]}_s"] = seconds
        for name, count in sorted(self.caches.items()):
            out[f"cache_{name}"] = count
        return out

    def __repr__(self) -> str:
        return (
            f"MethodMeasurement({self.method!r}, plain={self.t_plain:.6f}s, "
            f"report={self.t_report:.6f}s, overhead={self.overhead:.2%})"
        )


def measure_methods(
    reporter: RecencyReporter,
    sql: str,
    runs: int = 5,
    methods: Optional[List[str]] = None,
    collect_phases: bool = True,
) -> Dict[str, MethodMeasurement]:
    """Measure the plain query and each reporting method for one query.

    ``focused_hardcoded`` reuses a plan built once outside the timed region,
    isolating execution cost from parse/generation cost exactly as the
    paper's hardcoded table function did.

    With ``collect_phases`` (default), one extra instrumented report per
    method runs *outside* the timed loop to capture the per-phase span
    breakdown — the timed runs themselves keep the reporter's (normally
    disabled) telemetry so timings stay comparable to the paper protocol.
    """
    methods = methods or ["focused", "focused_hardcoded", "naive"]
    t_plain = time_call(lambda: reporter.run_plain(sql), runs)

    out: Dict[str, MethodMeasurement] = {}
    plan: Optional[RelevancePlan] = None
    if "focused_hardcoded" in methods:
        plan = reporter.plan_for(sql)
    for method in methods:
        kwargs = {"plan": plan} if method == "focused_hardcoded" else {}
        report_holder = {}

        def run(method=method, kwargs=kwargs):
            report_holder["r"] = reporter.report(sql, method=method, **kwargs)

        query_cache = get_cache()
        before = query_cache.stats()
        plan_hits_before = reporter.plan_cache_hits
        t_report = time_call(run, runs)
        after = query_cache.stats()
        caches = {
            "query_hits": after["hits"] - before["hits"],
            "query_misses": after["misses"] - before["misses"],
            "plan_hits": reporter.plan_cache_hits - plan_hits_before,
        }
        relevant = len(report_holder["r"].relevant_source_ids)
        phases: Dict[str, float] = {}
        if collect_phases:
            phases = _capture_phases(reporter, sql, method, kwargs)
        out[method] = MethodMeasurement(
            method, t_plain, t_report, relevant, phases, caches
        )
    return out


def _capture_phases(
    reporter: RecencyReporter, sql: str, method: str, kwargs: Dict[str, object]
) -> Dict[str, float]:
    """One instrumented report through a throwaway telemetry; returns the
    phase-name -> duration breakdown of its ``trac.report`` span."""
    tel = Telemetry()
    saved = reporter.telemetry
    reporter.telemetry = tel
    try:
        reporter.report(sql, method=method, **kwargs)  # type: ignore[arg-type]
    finally:
        reporter.telemetry = saved
    return phase_durations(tel, SPAN_REPORT)
