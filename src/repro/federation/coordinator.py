"""The federation coordinator: partial-failure-safe recency reports.

The :class:`FederationCoordinator` answers the sharded deployment's version
of TRAC's question — *how recent and how consistent is this answer?* — with
one extra axis the single-process reporter never needed: **completeness**.
A federated report always returns within its deadline and always says
exactly which shards it heard from (``shards_ok``), which it did not
(``missing_shards``), and which were served stale from the fragment cache
(``stale_shards``), in the same honest-disclosure spirit as the paper's
NOTICE lines.

Fan-out discipline, per shard and per report:

* a **per-shard circuit breaker** (:class:`repro.core.breaker.CircuitBreaker`,
  the same class the sniffer supervisors use) skips shards that have been
  failing, with a half-open probe after ``breaker_reset`` wall seconds;
* **bounded retries** with exponential backoff and seeded jitter
  (decorrelated per shard, like the supervisor fleet's);
* a **hedged request** fired at stragglers after ``hedge_delay`` seconds —
  first reply wins, the loser's socket just times out;
* a hard **deadline**: whatever has not arrived when it expires is merged
  as missing (or stale-cached), never waited for.

Correctness of the merge (the split-identity property the differential
test enforces): shards return raw per-subquery ``(source, recency)`` rows
plus per-guard verdicts, computed *unconditionally*. The coordinator ORs
each guard across shards — a guard asks "does this query return rows?",
and the union has rows iff some shard does — keeps a subquery's rows iff
all its guards hold globally, unions the surviving rows (shard id spaces
are disjoint by construction) and computes the one global z-score split.
Guard filtering or outlier-splitting per shard would both be unsound.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from typing import Dict, List, Optional, Set

from repro.core.breaker import CircuitBreaker
from repro.core.relevance import RelevancePlan, build_naive_plan, build_relevance_plan
from repro.core.statistics import (
    DEFAULT_Z_THRESHOLD,
    RecencySplit,
    RecencyStatistics,
    SourceRecency,
    describe,
    format_interval,
    format_timestamp,
    zscore_split,
)
from repro.engine.cache import resolve_cached
from repro.errors import TracError
from repro.federation import rpc
from repro.federation.rpc import RPCError
from repro.grid.simulator import monitoring_catalog
from repro.obs import instrument as obs
from repro.obs.events import (
    EVT_FEDERATION_PARTIAL,
    EVT_SHARD_DEAD,
    EVT_SHARD_HEDGE,
    EVT_SHARD_REJOINED,
    EVT_SHARD_RPC_RETRY,
)

_METHODS = ("focused", "naive")


def _stable_seed(seed: int, shard_id: str) -> int:
    digest = hashlib.sha256(f"{seed}:{shard_id}:federation".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ShardInfo:
    """Registry entry for one shard."""

    __slots__ = (
        "shard_id",
        "host",
        "port",
        "machines",
        "alive",
        "last_seen",
        "last_error",
        "recency",
    )

    def __init__(self, shard_id: str, host: str, port: int, machines: List[str]) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.machines = list(machines)
        self.alive = True
        self.last_seen = time.monotonic()
        self.last_error: Optional[str] = None
        #: Last heartbeat's per-machine reported recency map.
        self.recency: Dict[str, float] = {}

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "host": self.host,
            "port": self.port,
            "machines": list(self.machines),
            "alive": self.alive,
            "last_error": self.last_error,
        }

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"ShardInfo({self.shard_id!r}, {self.host}:{self.port}, {state})"


class ShardRegistry:
    """Tracks shard membership and health via heartbeat RPCs.

    Registration performs a ``hello`` RPC to learn the shard's id and
    machine set; :meth:`refresh` heartbeats every member and flips
    ``alive`` (emitting ``federation.shard_dead`` / ``shard_rejoined``
    events on transitions). Thread-safe: the coordinator reads a snapshot
    while a background heartbeat loop refreshes.
    """

    def __init__(self, telemetry: Optional[object] = None) -> None:
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._shards: Dict[str, ShardInfo] = {}

    def _tel(self):
        tel = self.telemetry
        return tel if tel is not None else obs.get_default()

    def register(self, host: str, port: int, timeout: float = 2.0) -> ShardInfo:
        """Hello a shard and add it to the membership."""
        reply = rpc.call(host, port, {"op": "hello"}, timeout=timeout)
        if not reply.get("ok"):
            raise RPCError(f"shard at {host}:{port} refused hello: {reply.get('error')}")
        shard_id = str(reply["shard_id"])
        info = ShardInfo(shard_id, host, port, [str(m) for m in reply["machines"]])
        info.recency = {str(k): float(v) for k, v in reply.get("recency", {}).items()}
        with self._lock:
            existing = self._shards.get(shard_id)
            if existing is not None:
                # A restarted shard re-registers (possibly on a new port).
                info.alive = True
            self._shards[shard_id] = info
        return info

    def add(self, info: ShardInfo) -> None:
        """Add a pre-built entry (tests and static topologies)."""
        with self._lock:
            self._shards[info.shard_id] = info

    def remove(self, shard_id: str) -> None:
        with self._lock:
            self._shards.pop(shard_id, None)

    def shards(self) -> List[ShardInfo]:
        """A point-in-time membership snapshot, ordered by shard id."""
        with self._lock:
            return [self._shards[sid] for sid in sorted(self._shards)]

    def machines(self) -> List[str]:
        """The union machine-id space across every registered shard."""
        seen: Set[str] = set()
        for info in self.shards():
            seen.update(info.machines)
        return sorted(seen)

    def refresh(self, timeout: float = 0.5) -> Dict[str, bool]:
        """Heartbeat every shard; returns ``{shard_id: alive}``."""
        tel = self._tel()
        verdicts: Dict[str, bool] = {}
        for info in self.shards():
            was_alive = info.alive
            try:
                reply = rpc.call(
                    info.host, info.port, {"op": "heartbeat"}, timeout=timeout
                )
                alive = bool(reply.get("ok"))
                if alive:
                    info.machines = [str(m) for m in reply.get("machines", info.machines)]
                    info.recency = {
                        str(k): float(v) for k, v in reply.get("recency", {}).items()
                    }
                    info.last_seen = time.monotonic()
                    info.last_error = None
            except RPCError as exc:
                alive = False
                info.last_error = str(exc)
            info.alive = alive
            verdicts[info.shard_id] = alive
            if tel.enabled and alive != was_alive:
                tel.emit(
                    EVT_SHARD_REJOINED if alive else EVT_SHARD_DEAD,
                    source=info.shard_id,
                    severity="info" if alive else "error",
                    error=info.last_error,
                )
        return verdicts

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)


class FederatedRecencyReport:
    """The union of per-shard fragments plus completeness metadata.

    Mirrors the shape of :class:`~repro.core.report.RecencyReport` for the
    recency/consistency side (split, statistics, suspect sources, NOTICE
    lines) and adds the federation's honesty fields: ``shards_total`` /
    ``shards_ok`` / ``missing_shards`` / ``stale_shards``.
    """

    def __init__(
        self,
        sql: str,
        method: str,
        split: RecencySplit,
        statistics: RecencyStatistics,
        plan: RelevancePlan,
        degraded_sources: List[str],
        shards_total: int,
        shards_ok: int,
        missing_shards: List[str],
        stale_shards: Dict[str, float],
        elapsed: float,
    ) -> None:
        self.sql = sql
        self.method = method
        self.split = split
        self.statistics = statistics
        self.plan = plan
        self.degraded_sources = list(degraded_sources)
        self.shards_total = shards_total
        self.shards_ok = shards_ok
        self.missing_shards = list(missing_shards)
        #: Shards answered from the last-good fragment cache, mapped to the
        #: age (wall seconds) of the cached fragment.
        self.stale_shards = dict(stale_shards)
        self.elapsed = elapsed

    @property
    def complete(self) -> bool:
        """True when every shard contributed a fresh fragment."""
        return not self.missing_shards and not self.stale_shards

    @property
    def normal_sources(self) -> List[SourceRecency]:
        return self.split.normal

    @property
    def exceptional_sources(self) -> List[SourceRecency]:
        return self.split.exceptional

    @property
    def relevant_source_ids(self) -> Set[str]:
        return {s.source_id for s in self.split.normal} | {
            s.source_id for s in self.split.exceptional
        }

    @property
    def suspect_sources(self) -> Set[str]:
        return {s.source_id for s in self.split.exceptional} | set(
            self.degraded_sources
        )

    def notices(self) -> List[str]:
        """NOTICE lines: the single-process report's plus completeness."""
        lines: List[str] = []
        if self.missing_shards or self.stale_shards:
            lines.append(
                "NOTICE: Degraded federated report: "
                f"{self.shards_ok} of {self.shards_total} shard(s) reporting"
                + (
                    f"; missing: {', '.join(self.missing_shards)}"
                    if self.missing_shards
                    else ""
                )
            )
        if self.stale_shards:
            served = ", ".join(
                f"{sid} (age {format_interval(age)})"
                for sid, age in sorted(self.stale_shards.items())
            )
            lines.append(f"NOTICE: Stale cached fragment(s) served for: {served}")
        if self.degraded_sources:
            lines.append(
                "NOTICE: Degraded data sources (supervisor-quarantined, not "
                f"merely stale): {', '.join(self.degraded_sources)}"
            )
        stats = self.statistics
        if stats.least_recent is not None and stats.most_recent is not None:
            lines.append(
                "NOTICE: The least recent data source: "
                f"{stats.least_recent.source_id}, "
                f"{format_timestamp(stats.least_recent.recency)}"
            )
            lines.append(
                "NOTICE: The most recent data source: "
                f"{stats.most_recent.source_id}, "
                f"{format_timestamp(stats.most_recent.recency)}"
            )
            lines.append(
                "NOTICE: Bound of inconsistency: "
                f"{format_interval(stats.inconsistency_bound or 0.0)}"
            )
        else:
            lines.append("NOTICE: No relevant data sources have reported in")
        return lines

    def to_dict(self) -> dict:
        """JSON document (the chaos harness's assertion surface)."""
        return {
            "sql": self.sql,
            "method": self.method,
            "shards_total": self.shards_total,
            "shards_ok": self.shards_ok,
            "missing_shards": list(self.missing_shards),
            "stale_shards": dict(self.stale_shards),
            "complete": self.complete,
            "elapsed": self.elapsed,
            "relevant": sorted(self.relevant_source_ids),
            "normal": [[s.source_id, s.recency] for s in self.split.normal],
            "exceptional": [
                [s.source_id, s.recency] for s in self.split.exceptional
            ],
            "degraded": list(self.degraded_sources),
            "bound_of_inconsistency": self.statistics.inconsistency_bound,
            "notices": self.notices(),
        }

    def __repr__(self) -> str:
        return (
            f"FederatedRecencyReport(shards={self.shards_ok}/{self.shards_total}, "
            f"missing={self.missing_shards}, relevant={len(self.relevant_source_ids)})"
        )


class _CachedFragment:
    __slots__ = ("reply", "wall")

    def __init__(self, reply: dict, wall: float) -> None:
        self.reply = reply
        self.wall = wall


class FederationCoordinator:
    """Fan out recency-report fragments and merge them, failure-first.

    Parameters
    ----------
    registry:
        The :class:`ShardRegistry` to fan out over.
    deadline:
        Hard wall-clock budget per report; the merge runs with whatever
        has arrived when it expires.
    attempt_timeout:
        Per-RPC-attempt budget (clamped to the remaining deadline).
    retries:
        Retry budget per shard per report, on top of the first attempt.
    hedge_delay:
        Fire a duplicate request at a shard whose attempt is still pending
        after this many seconds; ``None`` disables hedging.
    breaker_threshold / breaker_reset:
        Per-shard circuit breaker: consecutive failed *reports* to open,
        wall seconds before the half-open probe.
    stale_fallback / stale_max_age:
        Serve a failed shard's last good fragment when it is younger than
        ``stale_max_age`` wall seconds (tagged in ``stale_shards``).
    """

    def __init__(
        self,
        registry: ShardRegistry,
        deadline: float = 2.0,
        attempt_timeout: float = 0.5,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_multiplier: float = 2.0,
        jitter: float = 0.5,
        hedge_delay: Optional[float] = 0.25,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
        stale_fallback: bool = False,
        stale_max_age: float = 60.0,
        z_threshold: float = DEFAULT_Z_THRESHOLD,
        seed: int = 0,
        telemetry: Optional[object] = None,
    ) -> None:
        if deadline <= 0:
            raise TracError("deadline must be positive")
        if attempt_timeout <= 0:
            raise TracError("attempt_timeout must be positive")
        if retries < 0:
            raise TracError("retries cannot be negative")
        self.registry = registry
        self.deadline = deadline
        self.attempt_timeout = attempt_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.jitter = jitter
        self.hedge_delay = hedge_delay
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.stale_fallback = stale_fallback
        self.stale_max_age = stale_max_age
        self.z_threshold = z_threshold
        self.seed = seed
        self.telemetry = telemetry
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._fragments: Dict[str, _CachedFragment] = {}
        self._lock = threading.Lock()
        self.reports_total = 0
        self.partial_reports = 0

    def _tel(self):
        tel = self.telemetry
        return tel if tel is not None else obs.get_default()

    def _breaker(self, shard_id: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(shard_id)
            if breaker is None:
                breaker = CircuitBreaker(self.breaker_threshold, self.breaker_reset)
                self._breakers[shard_id] = breaker
            return breaker

    def _rng(self, shard_id: str) -> random.Random:
        with self._lock:
            rng = self._rngs.get(shard_id)
            if rng is None:
                rng = random.Random(_stable_seed(self.seed, shard_id))
                self._rngs[shard_id] = rng
            return rng

    # -- planning -----------------------------------------------------------

    def plan_for(self, sql: str, method: str = "focused") -> RelevancePlan:
        """Plan ``sql`` against the union catalog of every shard's machines."""
        if method == "naive":
            return build_naive_plan()
        machines = self.registry.machines()
        if not machines:
            raise TracError("no shards registered; cannot build the union catalog")
        catalog = monitoring_catalog(machines)
        resolved = resolve_cached(sql, catalog)
        return build_relevance_plan(resolved)

    # -- reporting ----------------------------------------------------------

    def report(
        self,
        sql: str,
        method: str = "focused",
        plan: Optional[RelevancePlan] = None,
    ) -> FederatedRecencyReport:
        """Produce one federated recency report, inside the deadline."""
        if method not in _METHODS:
            raise TracError(f"unknown method {method!r}; expected one of {_METHODS}")
        start = time.monotonic()
        deadline_at = start + self.deadline
        tel = self._tel()
        if plan is None:
            plan = self.plan_for(sql, method=method)
        shards = self.registry.shards()

        request = {
            "op": "fragment",
            "mode": plan.mode,
            "subqueries": [
                {"sql": sub.sql, "guards": list(sub.guards)}
                for sub in plan.subqueries
            ],
        }

        outcomes: Dict[str, Optional[dict]] = {}
        if plan.mode != "empty" and shards:
            outcomes = self._fan_out(shards, request, deadline_at)

        ok_shards: List[str] = []
        missing: List[str] = []
        stale: Dict[str, float] = {}
        replies: List[dict] = []
        now_wall = time.monotonic()
        for info in shards:
            reply = outcomes.get(info.shard_id)
            if plan.mode == "empty":
                # Nothing to fetch: every reachable shard trivially agrees.
                ok_shards.append(info.shard_id)
                continue
            if reply is not None:
                ok_shards.append(info.shard_id)
                replies.append(reply)
                with self._lock:
                    self._fragments[info.shard_id] = _CachedFragment(reply, now_wall)
                continue
            cached = None
            if self.stale_fallback:
                with self._lock:
                    cached = self._fragments.get(info.shard_id)
                if cached is not None and now_wall - cached.wall > self.stale_max_age:
                    cached = None
            if cached is not None and cached.reply.get("mode") == plan.mode:
                stale[info.shard_id] = now_wall - cached.wall
                replies.append(cached.reply)
            else:
                missing.append(info.shard_id)

        sources, degraded = self._merge(plan, replies)
        split = zscore_split(sources, self.z_threshold)
        stats = describe(split.normal)
        elapsed = time.monotonic() - start

        report = FederatedRecencyReport(
            sql,
            method,
            split,
            stats,
            plan,
            degraded,
            shards_total=len(shards),
            shards_ok=len(ok_shards),
            missing_shards=missing,
            stale_shards=stale,
            elapsed=elapsed,
        )
        self.reports_total += 1
        if not report.complete:
            self.partial_reports += 1
        if tel.enabled:
            obs.record_federation_report(tel, partial=not report.complete)
            for info in shards:
                obs.record_shard_breaker_state(
                    tel, info.shard_id, self._breaker(info.shard_id).state
                )
            if not report.complete:
                tel.emit(
                    EVT_FEDERATION_PARTIAL,
                    severity="warning",
                    missing=list(missing),
                    stale=sorted(stale),
                    shards_ok=len(ok_shards),
                    shards_total=len(shards),
                )
        return report

    # -- fan-out ------------------------------------------------------------

    def _fan_out(
        self, shards: List[ShardInfo], request: dict, deadline_at: float
    ) -> Dict[str, Optional[dict]]:
        results: Dict[str, Optional[dict]] = {}
        results_lock = threading.Lock()

        def worker(info: ShardInfo) -> None:
            reply = self._call_shard(info, request, deadline_at)
            with results_lock:
                results[info.shard_id] = reply

        threads = [
            threading.Thread(
                target=worker, args=(info,), name=f"fed-call:{info.shard_id}", daemon=True
            )
            for info in shards
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            remaining = deadline_at - time.monotonic()
            thread.join(timeout=max(0.0, remaining) + 0.1)
        return results

    def _call_shard(
        self, info: ShardInfo, request: dict, deadline_at: float
    ) -> Optional[dict]:
        """One shard's attempt loop: breaker, retries, backoff, hedging.

        Returns the reply dict, or ``None`` when the shard is unreachable
        within the deadline. Never raises.
        """
        tel = self._tel()
        breaker = self._breaker(info.shard_id)
        if not breaker.allow(time.monotonic()):
            return None  # open breaker: don't even burn a connect on it
        attempt = 0
        while True:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                return None
            timeout = min(self.attempt_timeout, remaining)
            started = time.monotonic()
            try:
                reply = self._attempt_with_hedge(info, request, timeout)
            except RPCError as exc:
                breaker.record_failure(time.monotonic())
                if tel.enabled:
                    outcome = "timeout" if "timed out" in str(exc) else "error"
                    obs.record_shard_rpc(
                        tel, info.shard_id, outcome, time.monotonic() - started
                    )
                attempt += 1
                if attempt > self.retries:
                    return None
                if tel.enabled:
                    tel.emit(
                        EVT_SHARD_RPC_RETRY,
                        source=info.shard_id,
                        severity="warning",
                        attempt=attempt,
                        error=str(exc),
                    )
                delay = self._backoff(info.shard_id, attempt)
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    return None
                time.sleep(min(delay, remaining))
                continue
            if not reply.get("ok"):
                breaker.record_failure(time.monotonic())
                return None  # shard answered but refused; don't retry
            breaker.record_success()
            if tel.enabled:
                obs.record_shard_rpc(
                    tel, info.shard_id, "ok", time.monotonic() - started
                )
            return reply

    def _attempt_with_hedge(
        self, info: ShardInfo, request: dict, timeout: float
    ) -> dict:
        """One attempt, with an optional hedged duplicate for stragglers."""
        hedge_delay = self.hedge_delay
        if hedge_delay is None or hedge_delay >= timeout:
            return rpc.call(info.host, info.port, request, timeout=timeout)

        start = time.monotonic()
        lock = threading.Lock()
        state: Dict[str, object] = {"reply": None, "errors": 0, "launched": 1}
        done = threading.Event()

        def attempt(budget: float) -> None:
            try:
                reply = rpc.call(info.host, info.port, request, timeout=budget)
            except RPCError as exc:
                with lock:
                    state["errors"] = int(state["errors"]) + 1
                    state["last_error"] = exc
                    if state["errors"] >= state["launched"]:
                        done.set()
                return
            with lock:
                if state["reply"] is None:
                    state["reply"] = reply
            done.set()

        threading.Thread(
            target=attempt, args=(timeout,), name=f"fed-rpc:{info.shard_id}", daemon=True
        ).start()
        if not done.wait(hedge_delay):
            remaining = timeout - (time.monotonic() - start)
            if remaining > 0:
                with lock:
                    state["launched"] = int(state["launched"]) + 1
                threading.Thread(
                    target=attempt,
                    args=(remaining,),
                    name=f"fed-hedge:{info.shard_id}",
                    daemon=True,
                ).start()
                tel = self._tel()
                if tel.enabled:
                    obs.record_shard_hedge(tel, info.shard_id)
                    tel.emit(
                        EVT_SHARD_HEDGE, source=info.shard_id, severity="info"
                    )
        done.wait(max(0.0, timeout - (time.monotonic() - start)) + 0.05)
        with lock:
            reply = state["reply"]
            if reply is not None:
                return reply  # type: ignore[return-value]
            error = state.get("last_error")
        if isinstance(error, RPCError):
            raise error
        raise RPCError(
            f"shard {info.shard_id} at {info.host}:{info.port} "
            f"did not answer within {timeout:g}s"
        )

    def _backoff(self, shard_id: str, attempt: int) -> float:
        delay = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng(shard_id).random() - 1.0)
        return delay

    # -- merging ------------------------------------------------------------

    def _merge(self, plan: RelevancePlan, replies: List[dict]):
        """Union fragments into the global source set (see module doc)."""
        degraded: Set[str] = set()
        found: Dict[str, float] = {}
        if plan.mode == "empty" or not replies:
            for reply in replies:
                degraded.update(str(s) for s in reply.get("degraded", ()))
            return [], sorted(degraded)

        guard_or: Dict[str, bool] = {}
        for reply in replies:
            degraded.update(str(s) for s in reply.get("degraded", ()))
            for guard, verdict in reply.get("guards", {}).items():
                guard_or[guard] = guard_or.get(guard, False) or bool(verdict)

        if plan.mode == "all":
            for reply in replies:
                for rows in reply.get("results", ()):
                    for sid, rec in rows:
                        found[str(sid)] = float(rec)
        else:
            for index, sub in enumerate(plan.subqueries):
                if any(not guard_or.get(guard, False) for guard in sub.guards):
                    continue
                for reply in replies:
                    results = reply.get("results", ())
                    if index >= len(results):
                        continue  # malformed/short fragment: skip, don't crash
                    for sid, rec in results[index]:
                        found[str(sid)] = float(rec)
        sources = [SourceRecency(sid, rec) for sid, rec in sorted(found.items())]
        return sources, sorted(degraded)

    # -- status -------------------------------------------------------------

    def federation_status(self) -> dict:
        """The ``federation`` block for ``/status`` and ``trac top``."""
        shards = self.registry.shards()
        missing = [info.shard_id for info in shards if not info.alive]
        return {
            "shards_total": len(shards),
            "shards_ok": len(shards) - len(missing),
            "missing": missing,
            "breakers": {
                info.shard_id: self._breaker(info.shard_id).state for info in shards
            },
            "reports_total": self.reports_total,
            "partial_reports": self.partial_reports,
        }
