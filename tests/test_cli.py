"""CLI tests: simulate / report / replay / inspect / bench."""

import os

import pytest

from repro.cli import main


@pytest.fixture
def grid_db(tmp_path):
    db = str(tmp_path / "grid.sqlite")
    logs = str(tmp_path / "logs")
    code = main(
        [
            "simulate",
            "--db",
            db,
            "--machines",
            "6",
            "--duration",
            "200",
            "--seed",
            "4",
            "--archive",
            logs,
        ]
    )
    assert code == 0
    return db, logs


class TestSimulate:
    def test_creates_database_and_archive(self, grid_db, capsys):
        db, logs = grid_db
        assert os.path.exists(db)
        assert len(os.listdir(logs)) == 6

    def test_output_mentions_tables(self, tmp_path, capsys):
        db = str(tmp_path / "g.sqlite")
        main(["simulate", "--db", db, "--machines", "3", "--duration", "50"])
        out = capsys.readouterr().out
        assert "activity" in out
        assert "heartbeat" in out

    def test_faults_plan_prints_supervision_summary(self, tmp_path, capsys):
        plan = tmp_path / "faults.json"
        plan.write_text(
            '{"seed": 11, "faults": ['
            '{"kind": "silence", "source": "m3", "start": 100},'
            '{"kind": "poll_error", "source": "m2", "probability": 0.2}]}'
        )
        db = str(tmp_path / "g.sqlite")
        code = main(
            [
                "simulate",
                "--db",
                db,
                "--machines",
                "6",
                "--duration",
                "400",
                "--seed",
                "4",
                "--faults",
                str(plan),
                "--silence-timeout",
                "90",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "supervision:" in out
        assert "faults injected:" in out
        assert "degraded sources: m3" in out

    def test_missing_faults_file_reports_error(self, tmp_path, capsys):
        db = str(tmp_path / "g.sqlite")
        code = main(
            ["simulate", "--db", db, "--duration", "10", "--faults", "/nonexistent.json"]
        )
        assert code != 0


class TestReport:
    def test_report_prints_notices_and_rows(self, grid_db, capsys):
        db, _ = grid_db
        code = main(
            ["report", "--db", db, "SELECT mach_id FROM activity WHERE value = 'idle'"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NOTICE:" in out
        assert "relevant sources" in out
        assert "provably minimal : True" in out

    def test_show_plan(self, grid_db, capsys):
        db, _ = grid_db
        main(
            [
                "report",
                "--db",
                db,
                "SELECT mach_id FROM activity WHERE mach_id = 'm1'",
                "--show-plan",
            ]
        )
        out = capsys.readouterr().out
        assert "via activity" in out
        assert "trac_h.source_id = 'm1'" in out

    def test_naive_method(self, grid_db, capsys):
        db, _ = grid_db
        main(
            [
                "report",
                "--db",
                db,
                "SELECT mach_id FROM activity WHERE mach_id = 'm1'",
                "--method",
                "naive",
            ]
        )
        out = capsys.readouterr().out
        assert "relevant sources : 6" in out
        assert "provably minimal : False" in out

    def test_bad_sql_reports_error(self, grid_db, capsys):
        db, _ = grid_db
        code = main(["report", "--db", db, "SELECT FROM nothing"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestReplay:
    def test_replay_roundtrip(self, grid_db, tmp_path, capsys):
        db, logs = grid_db
        out_db = str(tmp_path / "replayed.sqlite")
        code = main(["replay", "--logs", logs, "--db", out_db])
        assert code == 0
        assert os.path.exists(out_db)
        out = capsys.readouterr().out
        assert "replayed" in out

    def test_replay_empty_directory_fails(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        code = main(["replay", "--logs", empty, "--db", str(tmp_path / "x.sqlite")])
        assert code == 1


class TestInspect:
    def test_inspect_summarizes(self, grid_db, capsys):
        db, _ = grid_db
        code = main(["inspect", "--db", db])
        assert code == 0
        out = capsys.readouterr().out
        assert "heartbeats: 6 sources" in out
        assert "spread" in out


class TestBench:
    def test_bench_delegates_to_figures(self, capsys):
        code = main(["bench", "fpr", "--fpr-sources", "30"])
        assert code == 0
        assert "False positive rates" in capsys.readouterr().out


class TestStats:
    def test_stats_prints_summary(self, grid_db, capsys):
        db, _ = grid_db
        code = main(["stats", "--db", db, "SELECT mach_id FROM activity"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters and gauges:" in out
        assert "trac_reports_total" in out
        assert "trac_backend_queries_total" in out
        assert "spans (by name):" in out
        assert "trac.report" in out
        assert "most recent spans" in out

    def test_stats_repeat_and_multiple_queries(self, grid_db, capsys):
        db, _ = grid_db
        code = main(
            [
                "stats",
                "--db",
                db,
                "--repeat",
                "3",
                "SELECT mach_id FROM activity",
                "SELECT mach_id FROM routing",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "routing" in out
        # 2 queries x 3 repeats = 6 reports in the aggregates table.
        report_line = next(
            line for line in out.splitlines() if line.strip().startswith("trac.report")
        )
        assert " 6 " in report_line

    def test_stats_dump_files(self, grid_db, tmp_path, capsys):
        from repro.obs import parse_prometheus_text, spans_from_jsonl

        db, _ = grid_db
        spans_path = str(tmp_path / "spans.jsonl")
        prom_path = str(tmp_path / "metrics.prom")
        code = main(
            [
                "stats",
                "--db",
                db,
                "--spans-jsonl",
                spans_path,
                "--prometheus",
                prom_path,
                "SELECT mach_id FROM activity",
            ]
        )
        assert code == 0
        with open(spans_path) as handle:
            spans = spans_from_jsonl(handle.read())
        assert any(s["name"] == "trac.report" for s in spans)
        with open(prom_path) as handle:
            samples = parse_prometheus_text(handle.read())
        assert samples[("trac_reports_total", (("method", "focused"),))] == 1

    def test_stats_disables_telemetry_afterwards(self, grid_db, capsys):
        from repro import obs

        db, _ = grid_db
        main(["stats", "--db", db, "SELECT mach_id FROM activity"])
        assert not obs.get_default().enabled

    def test_stats_naive_method(self, grid_db, capsys):
        db, _ = grid_db
        code = main(
            ["stats", "--db", db, "--method", "naive", "SELECT mach_id FROM activity"]
        )
        assert code == 0
        assert "method=naive" in capsys.readouterr().out


class TestObservatory:
    def test_simulate_with_serve_and_flight_dir(self, tmp_path, capsys):
        plan = tmp_path / "faults.json"
        plan.write_text(
            '{"seed": 7, "faults": [{"kind": "silence", "source": "m2", "start": 5}]}'
        )
        flights = tmp_path / "flights"
        code = main(
            [
                "simulate",
                "--db", str(tmp_path / "g.sqlite"),
                "--machines", "4",
                "--duration", "400",
                "--faults", str(plan),
                "--silence-timeout", "30",
                "--serve", "0",
                "--flight-dir", str(flights),
                "--slo-target", "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "observatory serving on http://127.0.0.1:" in out
        assert "staleness SLO" in out
        assert "BREACHED" in out
        assert "flight recorder:" in out
        assert list(flights.glob("flight-*.json"))

    def test_simulate_serve_disables_telemetry_afterwards(self, tmp_path, capsys):
        from repro import obs

        main(
            [
                "simulate",
                "--db", str(tmp_path / "g.sqlite"),
                "--machines", "3",
                "--duration", "50",
                "--serve", "0",
            ]
        )
        assert not obs.get_default().enabled

    def test_simulate_top_renders_frames(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--db", str(tmp_path / "g.sqlite"),
                "--machines", "3",
                "--duration", "120",
                "--top",
                "--top-interval", "30",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trac top" in out
        assert "m1" in out

    def test_serve_exposes_database_status(self, grid_db, capsys):
        import json
        import threading
        import time
        import urllib.request

        db, _ = grid_db
        result = {}

        def run():
            result["code"] = main(["serve", "--db", db, "--port", "0", "--duration", "3"])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        url = None
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and url is None:
            out = capsys.readouterr().out
            for line in out.splitlines():
                if " on http://" in line:
                    url = line.split(" on ", 1)[1].split()[0]
            time.sleep(0.02)
        assert url, "serve never announced its URL"
        with urllib.request.urlopen(url + "/status", timeout=5.0) as response:
            doc = json.loads(response.read().decode("utf-8"))
        assert doc["sources"], "status document must list the DB's sources"
        assert {"id", "state", "recency", "age"} <= set(doc["sources"][0])
        thread.join(timeout=10.0)
        assert result["code"] == 0

    def test_top_polls_a_live_server(self, capsys):
        from repro.obs import Telemetry
        from repro.obs.server import ObservatoryServer

        status = {"now": 9.0, "sources": [{"id": "m1", "state": "healthy"}]}
        with ObservatoryServer(Telemetry(), status_provider=lambda: status) as server:
            code = main(
                [
                    "top",
                    "--url", server.url,
                    "--iterations", "2",
                    "--interval", "0.01",
                    "--no-clear",
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("trac top") == 2
        assert "m1" in out

    def test_top_unreachable_server_fails(self, capsys):
        code = main(["top", "--url", "http://127.0.0.1:9", "--iterations", "1"])
        assert code == 1
        assert "trac top:" in capsys.readouterr().out


class TestDurability:
    def simulate(self, tmp_path, *extra, duration="120"):
        db = str(tmp_path / "durable.sqlite")
        data = str(tmp_path / "data")
        code = main(
            [
                "simulate", "--db", db, "--machines", "4", "--seed", "9",
                "--duration", duration, "--data-dir", data, *extra,
            ]
        )
        return code, db, data

    def test_data_dir_writes_wal_and_checkpoint(self, tmp_path, capsys):
        code, _, data = self.simulate(tmp_path)
        assert code == 0
        names = os.listdir(data)
        assert any(n.startswith("wal-") for n in names)
        assert any(n.startswith("checkpoint-") for n in names)
        assert "durability:" in capsys.readouterr().out

    def test_resume_continues_a_previous_run(self, tmp_path, capsys):
        code, _, data = self.simulate(tmp_path, duration="100")
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "simulate", "--db", str(tmp_path / "resumed.sqlite"),
                "--duration", "200", "--data-dir", data, "--resume",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "recovered epoch" in out

    def test_resume_requires_data_dir(self, tmp_path, capsys):
        code = main(
            ["simulate", "--db", str(tmp_path / "g.sqlite"), "--resume"]
        )
        assert code == 1
        assert "--data-dir" in capsys.readouterr().err

    def test_recover_rebuilds_a_database(self, tmp_path, capsys):
        code, _, data = self.simulate(tmp_path)
        assert code == 0
        capsys.readouterr()
        rebuilt = str(tmp_path / "rebuilt.sqlite")
        code = main(["recover", "--data-dir", data, "--db", rebuilt])
        assert code == 0
        assert os.path.exists(rebuilt)
        out = capsys.readouterr().out
        assert "epoch" in out and "activity" in out

    def test_recover_missing_directory_errors(self, tmp_path, capsys):
        code = main(["recover", "--data-dir", str(tmp_path / "absent")])
        assert code == 1
        assert "no durability directory" in capsys.readouterr().err
