"""Brute-force oracle tests (Definitions 1 and 2 made executable)."""

import pytest

from repro import Column, MemoryBackend, TableSchema
from repro.core.bruteforce import (
    brute_force_relevant_sources,
    potential_relation,
    relevant_via,
)
from repro.errors import DomainError, TracError
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve


def resolved_for(sql, catalog):
    return resolve(parse_query(sql), catalog)


@pytest.fixture
def db(paper_memory_backend):
    return paper_memory_backend.db


class TestPotentialRelation:
    def test_cross_product_size(self, paper_catalog):
        resolved = resolved_for("SELECT mach_id FROM activity", paper_catalog)
        relation = potential_relation(resolved.bindings[0], {"mach_id", "value"})
        # 11 machines x 2 values x 1 placeholder event_time.
        assert len(relation) == 22

    def test_unreferenced_columns_use_placeholder(self, paper_catalog):
        resolved = resolved_for("SELECT mach_id FROM activity", paper_catalog)
        relation = potential_relation(resolved.bindings[0], {"mach_id"})
        event_times = {row[2] for row in relation}
        assert event_times == {None}

    def test_source_column_always_enumerated(self, paper_catalog):
        resolved = resolved_for("SELECT mach_id FROM activity", paper_catalog)
        relation = potential_relation(resolved.bindings[0], set())
        assert len({row[0] for row in relation}) == 11

    def test_infinite_referenced_domain_rejected(self, paper_catalog):
        resolved = resolved_for("SELECT mach_id FROM activity", paper_catalog)
        with pytest.raises(DomainError):
            potential_relation(resolved.bindings[0], {"event_time"})

    def test_budget_enforced(self, paper_catalog):
        resolved = resolved_for("SELECT mach_id FROM activity", paper_catalog)
        with pytest.raises(DomainError):
            potential_relation(resolved.bindings[0], {"mach_id", "value"}, max_tuples=5)


class TestSingleRelation:
    def test_definition1_ignores_existing_rows(self, db, paper_catalog):
        """A source is relevant if a *potential* tuple could match — m2 has
        no idle row, yet it is relevant to the idle query."""
        resolved = resolved_for(
            "SELECT mach_id FROM activity WHERE value = 'idle'", paper_catalog
        )
        result = brute_force_relevant_sources(db, resolved)
        assert result == set(f"m{i}" for i in range(1, 12))

    def test_source_predicate_restricts(self, db, paper_catalog):
        resolved = resolved_for(
            "SELECT mach_id FROM activity "
            "WHERE mach_id IN ('m1', 'm2') AND value = 'idle'",
            paper_catalog,
        )
        assert brute_force_relevant_sources(db, resolved) == {"m1", "m2"}

    def test_unsatisfiable_predicate_gives_empty(self, db, paper_catalog):
        resolved = resolved_for(
            "SELECT mach_id FROM activity WHERE value = 'zzz'", paper_catalog
        )
        assert brute_force_relevant_sources(db, resolved) == set()

    def test_mixed_predicate_exact(self, db, paper_catalog):
        """The brute force handles mixed predicates exactly — this is where
        it beats the Focused upper bound."""
        resolved = resolved_for(
            "SELECT mach_id FROM routing WHERE mach_id = neighbor AND mach_id = 'm1'",
            paper_catalog,
        )
        assert brute_force_relevant_sources(db, resolved) == {"m1"}


class TestMultiRelation:
    def test_paper_q2(self, db, paper_catalog):
        resolved = resolved_for(
            "SELECT A.mach_id FROM routing R, activity A "
            "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
            "AND R.neighbor = A.mach_id",
            paper_catalog,
        )
        assert brute_force_relevant_sources(db, resolved) == {"m1", "m3"}

    def test_relevant_via_each_relation(self, db, paper_catalog):
        resolved = resolved_for(
            "SELECT A.mach_id FROM routing R, activity A "
            "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
            "AND R.neighbor = A.mach_id",
            paper_catalog,
        )
        via_r = relevant_via(db, resolved, resolved.binding("r"))
        via_a = relevant_via(db, resolved, resolved.binding("a"))
        assert via_r == {"m1"}
        assert via_a == {"m3"}

    def test_empty_other_relation_blocks_relevance_via_it(self, paper_catalog):
        backend = MemoryBackend(paper_catalog)
        backend.insert_rows("activity", [("m1", "idle", 1.0)])
        # routing is empty: nothing is relevant via activity (Definition 2
        # needs an existing routing tuple), but EVERY source is relevant via
        # routing — any machine could report ('s', neighbor='m1') and join.
        resolved = resolved_for(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE R.neighbor = A.mach_id",
            paper_catalog,
        )
        from repro.core.bruteforce import relevant_via

        assert relevant_via(backend.db, resolved, resolved.binding("a")) == set()
        assert relevant_via(backend.db, resolved, resolved.binding("r")) == {
            f"m{i}" for i in range(1, 12)
        }

    def test_both_relations_empty_nothing_relevant(self, paper_catalog):
        backend = MemoryBackend(paper_catalog)
        resolved = resolved_for(
            "SELECT A.mach_id FROM activity A, routing R "
            "WHERE R.neighbor = A.mach_id",
            paper_catalog,
        )
        assert brute_force_relevant_sources(backend.db, resolved) == set()

    def test_paper_busy_variant(self, paper_catalog):
        """The paper's sequence-of-updates example: with all machines busy,
        S(Q2, R) is empty but S(Q2, A) = {m3}."""
        backend = MemoryBackend(paper_catalog)
        backend.insert_rows(
            "activity",
            [("m1", "busy", 1.0), ("m2", "busy", 2.0), ("m3", "busy", 3.0)],
        )
        backend.insert_rows("routing", [("m1", "m3", 4.0), ("m2", "m3", 5.0)])
        resolved = resolved_for(
            "SELECT A.mach_id FROM routing R, activity A "
            "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
            "AND R.neighbor = A.mach_id",
            paper_catalog,
        )
        via_r = relevant_via(backend.db, resolved, resolved.binding("r"))
        via_a = relevant_via(backend.db, resolved, resolved.binding("a"))
        assert via_r == set()
        assert via_a == {"m3"}

    def test_missing_source_column_rejected(self, paper_catalog):
        from repro.catalog import Column, TableSchema

        paper_catalog.add(
            TableSchema("sourceless", [Column("x", "TEXT")], source_column=None)
        )
        resolved = resolved_for("SELECT x FROM sourceless", paper_catalog)
        with pytest.raises(TracError):
            brute_force_relevant_sources(MemoryBackend(paper_catalog).db, resolved)

    def test_heartbeat_queries_need_finite_source_domain(self, paper_catalog):
        # Heartbeat's own source column carries an (infinite) text domain,
        # so the oracle refuses rather than enumerate it.
        from repro.errors import DomainError

        resolved = resolved_for(
            "SELECT source_id FROM heartbeat WHERE source_id = 'm1'", paper_catalog
        )
        with pytest.raises(DomainError):
            brute_force_relevant_sources(MemoryBackend(paper_catalog).db, resolved)
