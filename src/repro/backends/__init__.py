"""Storage backends.

The paper's prototype ran inside PostgreSQL; the essential property it used
is that the user query and the system-generated recency query execute
against the *same snapshot* (Section 3.2's first requirement — PostgreSQL
MVCC gives this for free inside one statement/transaction).

We expose that property behind a small :class:`~repro.backends.base.Backend`
interface with two implementations:

* :class:`~repro.backends.sqlite.SQLiteBackend` — a real DBMS (stdlib
  ``sqlite3``) in WAL mode, where a deferred read transaction sees a stable
  snapshot while writer connections proceed;
* :class:`~repro.backends.memory.MemoryBackend` — the pure-Python mini
  engine, whose snapshots are row-list copies. It requires nothing outside
  this repository and doubles as ground truth in differential tests.
"""

from repro.backends.base import Backend, Snapshot
from repro.backends.sqlite import SQLiteBackend
from repro.backends.memory import MemoryBackend

__all__ = ["Backend", "Snapshot", "SQLiteBackend", "MemoryBackend"]
