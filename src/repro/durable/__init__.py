"""Crash-safe durability: WAL-backed ingest, checkpoints, and recovery.

The subsystem has three layers:

* :mod:`repro.durable.wal` — CRC32-framed append-only journals with
  configurable fsync policies and torn-tail (truncate-and-continue)
  recovery;
* :mod:`repro.durable.checkpoint` — atomic, epoch-numbered checkpoints of
  a consistent database snapshot plus simulator/ingest state, after which
  the WAL rotates;
* :mod:`repro.durable.recover` / :mod:`repro.durable.manager` — replay the
  latest checkpoint plus the WAL tail exactly-once, and bind the whole
  machinery into a live :class:`~repro.grid.simulator.GridSimulator`.

See docs/ROBUSTNESS.md ("Crash-safe durability") for the invariants and
`tools/crash_matrix.py` for the SIGKILL proof harness.
"""

from repro.durable.checkpoint import (
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    write_checkpoint,
)
from repro.durable.manager import DurabilityManager, DurabilityPolicy, DurableLogFile
from repro.durable.recover import RecoveredState, recover
from repro.durable.wal import (
    FSYNC_POLICIES,
    FrameScan,
    FrameWriter,
    list_wal_segments,
    read_wal,
    repair_torn_tail,
    scan_frames,
    wal_path,
)

__all__ = [
    "DurabilityManager",
    "DurabilityPolicy",
    "DurableLogFile",
    "RecoveredState",
    "recover",
    "FrameWriter",
    "FrameScan",
    "FSYNC_POLICIES",
    "scan_frames",
    "repair_torn_tail",
    "read_wal",
    "wal_path",
    "list_wal_segments",
    "write_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
    "latest_valid_checkpoint",
]
