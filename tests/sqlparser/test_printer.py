"""Printer tests, including parse/print round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlparser.parser import parse_expression, parse_query
from repro.sqlparser.printer import expr_to_sql, literal_to_sql, to_sql


class TestLiterals:
    def test_string_quoting(self):
        assert literal_to_sql("idle") == "'idle'"

    def test_string_escaping(self):
        assert literal_to_sql("it's") == "'it''s'"

    def test_null(self):
        assert literal_to_sql(None) == "NULL"

    def test_booleans(self):
        assert literal_to_sql(True) == "TRUE"
        assert literal_to_sql(False) == "FALSE"

    def test_numbers(self):
        assert literal_to_sql(42) == "42"
        assert literal_to_sql(2.5) == "2.5"


class TestExpressionPrinting:
    @pytest.mark.parametrize(
        "text",
        [
            "a = 1",
            "a <> 'x'",
            "a < 3 AND b >= 4",
            "mach_id IN ('m1', 'm2')",
            "mach_id NOT IN ('m1')",
            "x BETWEEN 1 AND 10",
            "x NOT BETWEEN 1 AND 10",
            "name LIKE 'Tao%'",
            "name NOT LIKE '_x%'",
            "x IS NULL",
            "x IS NOT NULL",
        ],
    )
    def test_print_parse_fixpoint(self, text):
        parsed = parse_expression(text)
        printed = expr_to_sql(parsed)
        assert parse_expression(printed) == parsed

    def test_or_inside_and_is_parenthesized(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        printed = expr_to_sql(expr)
        assert parse_expression(printed) == expr

    def test_not_printed_with_parens(self):
        expr = parse_expression("NOT (a = 1 AND b = 2)")
        printed = expr_to_sql(expr)
        assert parse_expression(printed) == expr


class TestQueryPrinting:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM t",
            "SELECT a, b FROM t",
            "SELECT DISTINCT a FROM t",
            "SELECT COUNT(*) FROM t",
            "SELECT COUNT(DISTINCT a) FROM t",
            "SELECT a AS x FROM t",
            "SELECT a FROM t WHERE a = 1",
            "SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3",
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            "SELECT 1 FROM t LIMIT 1",
            "SELECT A.x FROM t1 A, t2 B WHERE A.x = B.y",
        ],
    )
    def test_round_trip(self, sql):
        first = parse_query(sql)
        printed = to_sql(first)
        assert parse_query(printed) == first

    def test_printed_sql_is_valid_sqlite(self):
        import sqlite3

        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'x')")
        printed = to_sql(
            parse_query("SELECT a FROM t WHERE a BETWEEN 0 AND 5 AND b LIKE 'x%'")
        )
        assert conn.execute(printed).fetchall() == [(1,)]


# ---------------------------------------------------------------------------
# Property-based round trip over generated expressions
# ---------------------------------------------------------------------------

_columns = st.sampled_from(["a", "b", "c", "t.a", "t.b"])
_values = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.sampled_from(["'x'", "'y'", "'it''s'"]),
)


def _atom(draw_col, draw_val):
    return st.builds(lambda c, op, v: f"{c} {op} {v}", draw_col, st.sampled_from(
        ["=", "<>", "<", "<=", ">", ">="]), draw_val)


_expr_text = st.recursive(
    st.one_of(
        _atom(_columns, _values),
        st.builds(lambda c, vs: f"{c} IN ({', '.join(map(str, vs))})", _columns,
                  st.lists(st.integers(0, 9), min_size=1, max_size=3)),
        st.builds(lambda c: f"{c} IS NULL", _columns),
        st.builds(lambda c, lo, hi: f"{c} BETWEEN {lo} AND {hi}", _columns,
                  st.integers(0, 5), st.integers(5, 9)),
    ),
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} AND {b})", inner, inner),
        st.builds(lambda a, b: f"({a} OR {b})", inner, inner),
        st.builds(lambda a: f"NOT ({a})", inner),
    ),
    max_leaves=8,
)


class TestPropertyRoundTrip:
    @given(_expr_text)
    @settings(max_examples=150, deadline=None)
    def test_parse_print_parse_is_identity(self, text):
        parsed = parse_expression(text)
        printed = expr_to_sql(parsed)
        assert parse_expression(printed) == parsed

    @given(_expr_text)
    @settings(max_examples=60, deadline=None)
    def test_printing_is_deterministic(self, text):
        parsed = parse_expression(text)
        assert expr_to_sql(parsed) == expr_to_sql(parse_expression(text))
