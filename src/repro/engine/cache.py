"""The resolved-query cache: parse + resolve once per (SQL, catalog state).

Every recency report re-executes the same generated subquery and guard SQL
strings (and ``trac stats`` / the bench sweeps repeat user queries
verbatim), and each execution used to pay a full lex + parse + resolve.
This module keeps a process-wide LRU of :class:`ResolvedQuery` objects
keyed by ``(catalog.identity, sql, lineage)``.

The cache used to key on ``catalog.generation`` — a ticket bumped on
*every* catalog mutation — which meant registering table ``U`` evicted
(by unreachability) every cached query over unrelated table ``T``.
Resolution only depends on the schemas of the tables a query actually
references, so entries now validate per *referenced table*: each entry
records the ``(table, generation)`` pairs it was resolved against (see
:meth:`repro.catalog.Catalog.table_generation`) and a hit is served only
while every one still matches. This gives:

* a schema change to a referenced table bumps that table's generation,
  so stale resolutions can never be served;
* a schema change to an *unreferenced* table leaves every dependency
  generation untouched, so hot entries survive it;
* two different catalogs never collide, even when they contain tables
  with the same names, because ``catalog.identity`` is drawn once per
  catalog and never reused.

Cached :class:`ResolvedQuery` objects are shared, which is safe because
resolution annotates the tree once and everything downstream (executor,
relevance planner, constraints) treats resolved trees as read-only.

The lineage flag is part of the key: a lineage-enabled resolution carries
an attached :class:`~repro.engine.lineage.LineagePlan` (the per-binding
source-column probes the executor reads per output row), which a
lineage-free resolution deliberately lacks. Serving one where the other
was requested would either drop lineage from a lineage-requesting
execution or tax every plain execution with a plan it never uses, so the
two populations never share entries.

Hits and misses are counted on the cache itself (always, cheaply) and
additionally recorded as telemetry counters when a live
:class:`~repro.obs.Telemetry` is passed. Size is configurable through
``TRAC_QUERY_CACHE_SIZE`` (default 256; ``0`` disables caching).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.catalog import Catalog
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import ResolvedQuery, resolve

DEFAULT_MAXSIZE = 256


class ResolvedQueryCache:
    """A thread-safe LRU of resolved queries keyed by (catalog identity,
    SQL, lineage flag), validated by the referenced tables' schema
    generations."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        self.maxsize = max(0, int(maxsize))
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, str, bool], Tuple[ResolvedQuery, Tuple[Tuple[str, int], ...]]]" = (
            OrderedDict()
        )

    @staticmethod
    def _dependencies(
        resolved: ResolvedQuery, catalog: Catalog
    ) -> Tuple[Tuple[str, int], ...]:
        """The (table, generation) pairs this resolution depends on."""
        names = {b.schema.name.lower() for b in resolved.bindings}
        return tuple(
            (name, catalog.table_generation(name)) for name in sorted(names)
        )

    def resolve(
        self,
        sql: str,
        catalog: Catalog,
        telemetry: Optional[object] = None,
        lineage: bool = False,
    ) -> ResolvedQuery:
        """Parse + resolve ``sql`` against ``catalog``, through the cache.

        ``lineage`` requests a lineage-enabled resolution: the returned
        (and cached) :class:`ResolvedQuery` carries a ``lineage_plan``
        attribute, and the entry is keyed apart from lineage-free
        resolutions of the same SQL — the two are not interchangeable.
        """
        if self.maxsize == 0:
            return self._resolve_fresh(sql, catalog, lineage)
        key = (catalog.identity, sql, lineage)
        cached: Optional[ResolvedQuery] = None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                resolved_entry, deps = entry
                if all(
                    catalog.table_generation(name) == generation
                    for name, generation in deps
                ):
                    self._entries.move_to_end(key)
                    self.hits += 1
                    cached = resolved_entry
                else:
                    # A referenced table's schema changed: this resolution
                    # can never be valid again (generations are unique).
                    del self._entries[key]
        if cached is not None:
            self._record(telemetry, hit=True)
            return cached
        resolved = self._resolve_fresh(sql, catalog, lineage)
        evicted = []
        with self._lock:
            self.misses += 1
            self._entries[key] = (resolved, self._dependencies(resolved, catalog))
            while len(self._entries) > self.maxsize:
                evicted.append(self._entries.popitem(last=False)[0])
        self._record(telemetry, hit=False)
        if evicted and telemetry is not None and getattr(telemetry, "enabled", False):
            from repro.obs.events import EVT_CACHE_EVICTED

            for identity, evicted_sql, evicted_lineage in evicted:
                telemetry.emit(
                    EVT_CACHE_EVICTED,
                    severity="debug",
                    catalog=identity,
                    sql=evicted_sql[:200],
                    lineage=evicted_lineage,
                )
        return resolved

    @staticmethod
    def _resolve_fresh(sql: str, catalog: Catalog, lineage: bool) -> ResolvedQuery:
        resolved = resolve(parse_query(sql), catalog)
        if lineage:
            from repro.engine.lineage import build_lineage_plan

            resolved.lineage_plan = build_lineage_plan(resolved)
        return resolved

    @staticmethod
    def _record(telemetry: Optional[object], hit: bool) -> None:
        if telemetry is not None and getattr(telemetry, "enabled", False):
            from repro.obs import instrument as obs

            obs.record_query_cache(telemetry, hit)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.hits = 0
            self.misses = 0
        from repro.obs import instrument as obs

        tel = obs.get_default()
        if tel.enabled:
            from repro.obs.events import EVT_CACHE_CLEARED

            tel.emit(EVT_CACHE_CLEARED, severity="debug", dropped=dropped)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResolvedQueryCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _env_maxsize() -> int:
    raw = os.environ.get("TRAC_QUERY_CACHE_SIZE", "").strip()
    if not raw:
        return DEFAULT_MAXSIZE
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MAXSIZE


_global_cache = ResolvedQueryCache(_env_maxsize())


def get_cache() -> ResolvedQueryCache:
    """The process-wide resolved-query cache."""
    return _global_cache


def configure(maxsize: int) -> ResolvedQueryCache:
    """Replace the process-wide cache with a fresh one of ``maxsize``
    entries (``0`` disables caching); returns the new cache."""
    global _global_cache
    _global_cache = ResolvedQueryCache(maxsize)
    return _global_cache


def resolve_cached(
    sql: str,
    catalog: Catalog,
    telemetry: Optional[object] = None,
    lineage: bool = False,
) -> ResolvedQuery:
    """Module-level convenience over :meth:`ResolvedQueryCache.resolve`."""
    return _global_cache.resolve(sql, catalog, telemetry, lineage=lineage)


__all__ = [
    "ResolvedQueryCache",
    "DEFAULT_MAXSIZE",
    "get_cache",
    "configure",
    "resolve_cached",
]
