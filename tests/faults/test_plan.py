"""Unit tests for the FaultPlan decision logic: determinism, scripted
one-shots, record filtering and the JSON document form."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.faults import FaultPlan, InjectedFault, plan_from_json
from repro.grid.events import EventKind, LogEvent


def _heartbeat(ts: float, source: str = "m1") -> LogEvent:
    return LogEvent(ts, source, EventKind.HEARTBEAT, {})


def _state(ts: float, source: str = "m1") -> LogEvent:
    return LogEvent(ts, source, EventKind.MACHINE_STATE, {"value": "idle"})


class TestBuilders:
    def test_chaining_returns_self(self):
        plan = FaultPlan(seed=1)
        assert plan.poll_error("m1", probability=0.5) is plan
        assert plan.silence("m2", start=10.0) is plan

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan().poll_error("m1", probability=1.5)
        with pytest.raises(SimulationError):
            FaultPlan().drop_records("m1", probability=-0.1)

    def test_rule_that_never_fires_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan().poll_error("m1")  # no probability, no scripted times

    def test_backend_error_op_validated(self):
        with pytest.raises(SimulationError):
            FaultPlan().backend_error("m1", op="query", probability=0.5)

    def test_silence_needs_concrete_source_and_ordered_window(self):
        with pytest.raises(SimulationError):
            FaultPlan().silence("*", start=0.0)
        with pytest.raises(SimulationError):
            FaultPlan().silence("m1", start=10.0, end=5.0)
        with pytest.raises(SimulationError):
            FaultPlan().silence("m1", start=-1.0)


class TestScriptedTriggers:
    def test_scripted_poll_error_fires_once(self):
        plan = FaultPlan(seed=0).poll_error("m1", at=[10.0])
        plan.check_poll("m1", 5.0)  # before the scripted time: nothing
        with pytest.raises(InjectedFault):
            plan.check_poll("m1", 12.0)
        plan.check_poll("m1", 13.0)  # one-shot: consumed
        assert plan.injected == {"poll_error": 1}

    def test_wildcard_scripted_rule_fires_once_per_source(self):
        plan = FaultPlan(seed=0).backend_error("*", op="heartbeat", at=[20.0])
        with pytest.raises(InjectedFault):
            plan.check_backend("m1", 25.0, "heartbeat")
        with pytest.raises(InjectedFault):
            plan.check_backend("m2", 25.0, "heartbeat")
        plan.check_backend("m1", 26.0, "heartbeat")  # consumed for m1

    def test_permanent_flag_propagates(self):
        plan = FaultPlan(seed=0).poll_error("m1", at=[1.0], transient=False)
        with pytest.raises(InjectedFault) as excinfo:
            plan.check_poll("m1", 2.0)
        assert excinfo.value.transient is False
        assert excinfo.value.kind == "poll_error"
        assert excinfo.value.source == "m1"


class TestDeterminism:
    def _decisions(self, plan: FaultPlan, source: str, n: int = 200):
        out = []
        for i in range(n):
            try:
                plan.check_poll(source, float(i))
                out.append(False)
            except InjectedFault:
                out.append(True)
        return out

    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=42).poll_error("m1", probability=0.3)
        b = FaultPlan(seed=42).poll_error("m1", probability=0.3)
        assert self._decisions(a, "m1") == self._decisions(b, "m1")

    def test_different_seed_different_decisions(self):
        a = FaultPlan(seed=1).poll_error("m1", probability=0.3)
        b = FaultPlan(seed=2).poll_error("m1", probability=0.3)
        assert self._decisions(a, "m1") != self._decisions(b, "m1")

    def test_sources_draw_independent_streams(self):
        """m1's decisions must not depend on whether m2 is also consulted."""
        alone = FaultPlan(seed=7).poll_error("*", probability=0.3)
        m1_alone = self._decisions(alone, "m1")

        interleaved = FaultPlan(seed=7).poll_error("*", probability=0.3)
        m1_mixed = []
        for i in range(200):
            try:
                interleaved.check_poll("m2", float(i))
            except InjectedFault:
                pass
            try:
                interleaved.check_poll("m1", float(i))
                m1_mixed.append(False)
            except InjectedFault:
                m1_mixed.append(True)
        assert m1_alone == m1_mixed


class TestRecordFiltering:
    def test_scripted_drop_discards_the_next_batch(self):
        plan = FaultPlan(seed=0).drop_records("m1", at=[10.0])
        events = [_state(8.0), _state(9.0)]
        assert plan.filter_events("m1", 12.0, events) == []
        # One-shot: the following batch passes through.
        assert plan.filter_events("m1", 13.0, events) == events
        assert plan.injected["drop_records"] == 2

    def test_spare_heartbeats_keeps_liveness_signal(self):
        plan = FaultPlan(seed=0).drop_records("m1", probability=1.0, spare_heartbeats=True)
        events = [_state(1.0), _heartbeat(2.0), _state(3.0), _heartbeat(4.0)]
        survivors = plan.filter_events("m1", 5.0, events)
        assert [e.kind for e in survivors] == [EventKind.HEARTBEAT, EventKind.HEARTBEAT]

    def test_duplicates_appear_in_order(self):
        plan = FaultPlan(seed=0).duplicate_records("m1", at=[1.0])
        events = [_state(0.5), _state(0.8)]
        out = plan.filter_events("m1", 2.0, events)
        # The scripted trigger duplicates the whole batch, preserving order.
        assert out == [events[0], events[0], events[1], events[1]]

    def test_empty_batch_passes_through(self):
        plan = FaultPlan(seed=0).drop_records("m1", probability=1.0)
        assert plan.filter_events("m1", 1.0, []) == []

    def test_other_sources_unaffected(self):
        plan = FaultPlan(seed=0).drop_records("m1", probability=1.0)
        events = [_state(1.0, "m2")]
        assert plan.filter_events("m2", 2.0, events) == events


class TestSilence:
    def test_window_semantics(self):
        plan = FaultPlan().silence("m1", start=10.0, end=20.0)
        assert not plan.is_silenced("m1", 9.0)
        assert plan.is_silenced("m1", 10.0)
        assert plan.is_silenced("m1", 19.9)
        assert not plan.is_silenced("m1", 20.0)
        assert not plan.is_silenced("m2", 15.0)

    def test_open_ended_silence(self):
        plan = FaultPlan().silence("m1", start=5.0)
        assert plan.is_silenced("m1", 1e9)
        assert plan.silenced_sources() == {"m1"}
        assert plan.silenced_sources(1.0) == set()
        assert plan.silenced_sources(6.0) == {"m1"}


class TestJson:
    def test_round_trip(self):
        plan = (
            FaultPlan(seed=9)
            .silence("m3", start=120.0, end=240.0)
            .poll_error("m2", probability=0.2)
            .poll_error("m4", at=[30.0, 35.0], transient=False)
            .drop_records("m5", probability=0.1, spare_heartbeats=True)
            .duplicate_records("*", probability=0.05)
            .backend_error("m6", op="heartbeat", at=[50.0])
        )
        clone = plan_from_json(plan.to_json())
        assert clone.to_json() == plan.to_json()
        assert clone.seed == 9
        assert clone.silenced_sources() == {"m3"}

    def test_loaded_plan_behaves_like_the_original(self):
        text = '{"seed": 3, "faults": [{"kind": "poll_error", "source": "m1", "probability": 0.5}]}'
        a, b = plan_from_json(text), plan_from_json(text)
        decisions = []
        for plan in (a, b):
            row = []
            for i in range(50):
                try:
                    plan.check_poll("m1", float(i))
                    row.append(False)
                except InjectedFault:
                    row.append(True)
            decisions.append(row)
        assert decisions[0] == decisions[1]
        assert any(decisions[0])

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            "[]",
            '{"seed": 0, "faults": [{"kind": "nope", "source": "m1"}]}',
            '{"seed": 0, "faults": [{"kind": "silence", "source": "m1"}]}',
            '{"seed": 0, "faults": [{"kind": "poll_error", "source": "m1", "bogus": 1}]}',
            '{"seed": 0, "bogus": []}',
            '{"seed": 0, "faults": [{"kind": "poll_error", "source": "m1", "at": 5}]}',
        ],
    )
    def test_malformed_documents_rejected(self, text):
        with pytest.raises(SimulationError):
            plan_from_json(text)


class TestRpcFaults:
    """The rpc_* kinds: advisory (returned, not raised), aimed at shards.

    ``source`` here is a shard id and ``now`` is the shard's simulation
    clock — the same (source, now) addressing as every other rule, so
    one plan file can script both data-layer and transport-layer chaos.
    """

    def test_kind_registry_includes_rpc(self):
        from repro.faults import KINDS, RPC_KINDS

        assert set(RPC_KINDS) == {
            "rpc_drop", "rpc_delay", "rpc_duplicate", "rpc_garbage",
        }
        assert set(RPC_KINDS) <= set(KINDS)

    def test_builder_validates_kind(self):
        with pytest.raises(SimulationError):
            FaultPlan().rpc_fault("s0", "rpc_nonsense", probability=0.5)

    def test_scripted_rpc_fault_is_one_shot(self):
        plan = FaultPlan(seed=0).rpc_fault("s0", "rpc_drop", at=[10.0])
        assert plan.check_rpc("s0", 5.0) is None
        assert plan.check_rpc("s0", 12.0) == "rpc_drop"
        assert plan.check_rpc("s0", 13.0) is None  # consumed
        assert plan.injected == {"rpc_drop": 1}

    def test_check_rpc_returns_instead_of_raising(self):
        plan = FaultPlan(seed=0).rpc_fault("s1", "rpc_garbage", at=[0.0])
        kind = plan.check_rpc("s1", 1.0)
        assert kind == "rpc_garbage"
        assert plan.check_rpc("s2", 1.0) is None  # other shards untouched

    def test_precedence_drop_beats_delay(self):
        plan = (
            FaultPlan(seed=0)
            .rpc_fault("s0", "rpc_delay", at=[10.0])
            .rpc_fault("s0", "rpc_drop", at=[10.0])
        )
        assert plan.check_rpc("s0", 11.0) == "rpc_drop"
        # The delay rule was not consumed by the drop's win.
        assert plan.check_rpc("s0", 12.0) == "rpc_delay"

    def test_probabilistic_rpc_fault_is_deterministic_per_seed(self):
        def decisions(plan):
            return [plan.check_rpc("s0", float(i)) for i in range(100)]

        a = decisions(FaultPlan(seed=4).rpc_fault("s0", "rpc_drop", probability=0.3))
        b = decisions(FaultPlan(seed=4).rpc_fault("s0", "rpc_drop", probability=0.3))
        c = decisions(FaultPlan(seed=5).rpc_fault("s0", "rpc_drop", probability=0.3))
        assert a == b
        assert a != c
        assert any(kind == "rpc_drop" for kind in a)

    def test_json_round_trip(self):
        plan = (
            FaultPlan(seed=2)
            .rpc_fault("s0", "rpc_drop", at=[5.0])
            .rpc_fault("*", "rpc_delay", probability=0.1)
            .rpc_fault("s1", "rpc_duplicate", at=[7.0])
            .rpc_fault("s2", "rpc_garbage", probability=0.05)
        )
        clone = plan_from_json(plan.to_json())
        assert clone.to_json() == plan.to_json()
        assert clone.check_rpc("s0", 6.0) == "rpc_drop"

    def test_malformed_rpc_kind_rejected(self):
        text = '{"seed": 0, "faults": [{"kind": "rpc_smash", "source": "s0", "at": [1.0]}]}'
        with pytest.raises(SimulationError):
            plan_from_json(text)
