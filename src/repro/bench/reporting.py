"""Plain-text table, chart, CSV and JSON output for benchmark results."""

from __future__ import annotations

import csv
import json
import math
from typing import Dict, List, Sequence, Tuple


def format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a boxed, column-aligned plain-text table."""
    formatted = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    divider = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = [divider]
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(divider)
    for row in formatted:
        lines.append("| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |")
    lines.append(divider)
    return "\n".join(lines)


def write_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Dump results to CSV (for external plotting)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def rows_from_dicts(records: Sequence[Dict[str, object]], headers: Sequence[str]) -> List[List[object]]:
    """Project a list of dicts onto an ordered header list."""
    return [[record.get(h, "") for h in headers] for record in records]


def write_json(path: str, records: Sequence[Dict[str, object]]) -> None:
    """Dump benchmark records as a JSON array (one object per record,
    per-phase breakdowns included when present)."""
    with open(path, "w") as handle:
        json.dump(list(records), handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


#: Marker characters assigned to series, in declaration order.
_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render named (x, y) series as a character-grid chart.

    Matching the paper's figures, both axes can be logarithmic (Figure 1
    plots overhead against a data ratio swept by factors of ten). Points
    from different series landing on the same cell show the later series'
    marker. Returns a multi-line string.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"

    def tx(value: float) -> float:
        if log_x:
            return math.log10(max(value, 1e-12))
        return value

    def ty(value: float) -> float:
        if log_y:
            return math.log10(max(value, 1e-12))
        return value

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            column = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    y_bottom = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    label_width = max(len(y_top), len(y_bottom))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = y_top.rjust(label_width)
        elif i == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_cells)}|")
    x_left = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_right = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}+")
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(f"{' ' * label_width}  {x_left}{' ' * gap}{x_right}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  legend: {legend}")
    return "\n".join(lines)
