"""Hammering the service concurrently: no corruption, exact admission."""

import threading

import pytest

from repro.obs import Telemetry
from repro.obs.instrument import SERVE_REQUEST_SECONDS
from repro.serve import QueryService, ServeConfig
from repro.serve.quota import QuotaExceeded, TenantQuotas
from tests.conftest import BASE_TIME

SQL = "SELECT mach_id FROM activity"


def hammer(threads: int, work):
    """Run ``work(index)`` on N threads released by a barrier; re-raise errors."""
    barrier = threading.Barrier(threads)
    errors = []

    def runner(index):
        barrier.wait(timeout=10.0)
        try:
            work(index)
        except Exception as exc:  # noqa: BLE001 - collected for the assert below
            errors.append(exc)

    workers = [threading.Thread(target=runner, args=(i,)) for i in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in workers), "a hammer thread hung"
    return errors


class TestConcurrentQueries:
    THREADS = 12
    PER_THREAD = 5

    def test_parallel_queries_with_concurrent_writes(self, paper_memory_backend):
        """Readers on CoW snapshots race a writer mutating the live tables."""
        tel = Telemetry()
        config = ServeConfig(workers=6, queue_depth=256, tenant_rate=10_000.0,
                             tenant_burst=10_000.0, max_inflight=256)
        stop_writing = threading.Event()

        def write_forever():
            beat = 0
            while not stop_writing.is_set():
                beat += 1
                paper_memory_backend.upsert_heartbeat("m1", BASE_TIME + beat)
                paper_memory_backend.insert_rows(
                    "activity", [(f"m{1 + beat % 3}", "busy", BASE_TIME + beat)]
                )

        docs = []
        docs_lock = threading.Lock()
        with QueryService(paper_memory_backend, config, telemetry=tel) as svc:
            writer = threading.Thread(target=write_forever)
            writer.start()
            try:
                def work(index):
                    for _ in range(self.PER_THREAD):
                        doc = svc.query(SQL, tenant=f"t{index % 3}")
                        with docs_lock:
                            docs.append(doc)

                errors = hammer(self.THREADS, work)
            finally:
                stop_writing.set()
                writer.join(timeout=10.0)
            counts = svc.counts()

        assert errors == []
        total = self.THREADS * self.PER_THREAD
        assert len(docs) == total
        assert counts["ok"] == total
        for doc in docs:
            # Every response is internally consistent: a snapshot saw the
            # three seed machines plus whatever the writer had appended.
            assert doc["columns"] == ["mach_id"]
            machines = {row[0] for row in doc["rows"]}
            assert {"m1", "m2", "m3"} <= machines <= {"m1", "m2", "m3", "m4"}
            assert len(doc["trace_id"]) == 32

    def test_telemetry_survives_the_hammer_uncorrupted(self, paper_memory_backend):
        tel = Telemetry()
        config = ServeConfig(workers=6, queue_depth=256, tenant_rate=10_000.0,
                             tenant_burst=10_000.0, max_inflight=256)
        with QueryService(paper_memory_backend, config, telemetry=tel) as svc:
            errors = hammer(
                self.THREADS,
                lambda i: [svc.query(SQL, tenant=f"t{i % 3}")
                           for _ in range(self.PER_THREAD)],
            )
        assert errors == []
        total = self.THREADS * self.PER_THREAD

        # Histogram: per-tenant counts sum exactly — no lost updates.
        histograms = [m for m in tel.metrics.collect()
                      if m.name == SERVE_REQUEST_SECONDS]
        assert sum(h.count for h in histograms) == total
        assert {dict(h.labels)["tenant"] for h in histograms} == {"t0", "t1", "t2"}
        for h in histograms:
            # Bucket counts are cumulative and monotone when consistent.
            counts = [c for _, c in h.bucket_counts()]
            assert counts == sorted(counts)
            assert counts[-1] == h.count

        # Tracer: one serve span per request, each with a distinct trace.
        serve_spans = [s for s in tel.tracer.finished_spans()
                       if s.name == "serve.request"]
        assert len(serve_spans) == total
        assert len({s.trace_id for s in serve_spans}) == total

        # Rings stayed structurally sound (snapshots are lists, JSON-able).
        assert isinstance(tel.profiles.snapshot(), list)
        for event in tel.events.tail(50):
            assert event.to_dict()

    def test_quota_rejections_are_exact_under_contention(self, paper_memory_backend):
        """rate=0, burst=B, N simultaneous submits: exactly B admitted."""
        burst = 4
        threads = 16
        config = ServeConfig(workers=4, queue_depth=64, tenant_rate=0.0,
                             tenant_burst=float(burst), max_inflight=64)
        outcomes = []
        lock = threading.Lock()
        with QueryService(paper_memory_backend, config) as svc:
            def work(index):
                try:
                    doc = svc.query(SQL)
                    with lock:
                        outcomes.append(("ok", doc))
                except QuotaExceeded as exc:
                    with lock:
                        outcomes.append(("rejected", exc))

            errors = hammer(threads, work)
            counts = svc.counts()

        assert errors == []
        tally = {"ok": 0, "rejected": 0}
        for kind, _ in outcomes:
            tally[kind] += 1
        assert tally == {"ok": burst, "rejected": threads - burst}
        assert counts["ok"] == burst
        assert counts["rejected_quota"] == threads - burst

    def test_raw_quota_admission_is_atomic(self):
        """The primitive itself: concurrent admits never over-admit."""
        burst = 5
        threads = 32
        quotas = TenantQuotas(rate=0.0, burst=float(burst), max_inflight=threads)
        admitted = []
        rejected = []
        lock = threading.Lock()

        def work(index):
            try:
                quotas.admit("shared")
                with lock:
                    admitted.append(index)
            except QuotaExceeded:
                with lock:
                    rejected.append(index)

        errors = hammer(threads, work)
        assert errors == []
        assert len(admitted) == burst
        assert len(rejected) == threads - burst
        assert quotas.inflight("shared") == burst

    def test_inflight_ceiling_holds_under_contention(self):
        quotas = TenantQuotas(rate=0.0, burst=1000.0, max_inflight=3)
        admitted = []
        lock = threading.Lock()

        def work(index):
            try:
                quotas.admit("shared")
                with lock:
                    admitted.append(index)
            except QuotaExceeded as exc:
                assert exc.kind == "inflight"

        errors = hammer(20, work)
        assert errors == []
        assert len(admitted) == 3


class TestConcurrentBackendSafety:
    def test_snapshot_during_writes_sees_consistent_rows(self, paper_memory_backend):
        """Direct backend hammer: snapshots never observe torn state."""
        stop = threading.Event()

        def write_forever():
            tick = 0
            while not stop.is_set():
                tick += 1
                paper_memory_backend.insert_rows(
                    "activity", [("m1", "idle", BASE_TIME + tick)]
                )

        writer = threading.Thread(target=write_forever)
        writer.start()
        try:
            def work(index):
                for _ in range(20):
                    with paper_memory_backend.snapshot() as snap:
                        rows = snap.execute(SQL).rows
                        assert len(rows) >= 3
                        assert all(len(row) == 1 for row in rows)

            errors = hammer(8, work)
        finally:
            stop.set()
            writer.join(timeout=10.0)
        assert errors == []


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
