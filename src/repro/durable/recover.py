"""Crash recovery: latest valid checkpoint + idempotent WAL replay.

Recovery proceeds in three steps:

1. Load the newest valid checkpoint (corrupt ones are skipped, falling
   back to the previous epoch).  If a backend is supplied, its tables and
   heartbeats are reset to the checkpointed snapshot.
2. Replay every WAL segment whose epoch is >= the recovered epoch, in
   ascending order.  Torn tails are truncated and counted, never fatal.
3. Dedupe replayed records by ``(source, offset)`` watermarks so each
   applied event is exactly-once: offsets below the watermark are skipped
   (they were already in the checkpoint, or in an earlier segment replayed
   after a fall-back), the offset *at* the watermark is applied, and an
   offset *beyond* it is a gap — a broken invariant worth dying over,
   because silently continuing would hide lost acknowledged writes.
   Heartbeats are applied only when they advance a source's recency, which
   keeps per-source recency monotonically non-decreasing across restarts.

The result also carries the per-source offsets / recency / last-loaded
timestamps that :class:`~repro.durable.manager.DurabilityManager` feeds
back into the sniffers, so ingest resumes exactly where the journal left
off.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.catalog import HEARTBEAT_TABLE
from repro.durable.checkpoint import latest_valid_checkpoint
from repro.durable.wal import FrameScan, decode_record, list_wal_segments, repair_torn_tail
from repro.errors import DurabilityError
from repro.obs import instrument as obs
from repro.obs.events import EVT_RECOVERED, EVT_WAL_TORN

__all__ = ["RecoveredState", "recover", "restore_database"]

_NEG_INF = float("-inf")


class RecoveredState:
    """Everything recovery learned: checkpoint state plus replay watermarks."""

    __slots__ = (
        "data_dir",
        "epoch",
        "state",
        "offsets",
        "recency",
        "last_loaded",
        "replayed_events",
        "replayed_heartbeats",
        "skipped_records",
        "torn_segments",
        "invalid_checkpoints",
        "segments",
    )

    def __init__(self, data_dir: str) -> None:
        self.data_dir = data_dir
        self.epoch = 0
        #: The checkpoint ``state`` payload, or ``None`` when recovering
        #: from WAL segments alone (or from an empty directory).
        self.state: Optional[dict] = None
        self.offsets: Dict[str, int] = {}
        self.recency: Dict[str, float] = {}
        self.last_loaded: Dict[str, float] = {}
        self.replayed_events = 0
        self.replayed_heartbeats = 0
        self.skipped_records = 0
        self.torn_segments: List[str] = []
        self.invalid_checkpoints: List[str] = []
        self.segments: List[str] = []

    @property
    def has_checkpoint(self) -> bool:
        return self.state is not None

    @property
    def empty(self) -> bool:
        """True when there was nothing at all to recover."""
        return self.state is None and not self.segments

    def summary(self) -> dict:
        return {
            "epoch": self.epoch,
            "has_checkpoint": self.has_checkpoint,
            "segments": len(self.segments),
            "replayed_events": self.replayed_events,
            "replayed_heartbeats": self.replayed_heartbeats,
            "skipped_records": self.skipped_records,
            "torn_segments": len(self.torn_segments),
            "invalid_checkpoints": len(self.invalid_checkpoints),
            "sources": len(self.offsets),
        }


def restore_database(backend, database_state: dict) -> None:
    """Reset ``backend`` tables + heartbeats to a checkpointed snapshot.

    Backend-agnostic: uses only ``delete_all`` / ``insert_rows`` /
    ``upsert_heartbeat``, so it works for both MemoryBackend and
    SQLiteBackend targets.
    """
    for table, rows in database_state.get("tables", {}).items():
        backend.delete_all(table)
        if rows:
            backend.insert_rows(table, [tuple(row) for row in rows])
    backend.delete_all(HEARTBEAT_TABLE)
    for source, recency in database_state.get("heartbeats", []):
        backend.upsert_heartbeat(source, float(recency))


def _apply_line(backend, line: str) -> float:
    """Apply one formatted log line to ``backend``; return its timestamp."""
    from repro.grid.logformat import parse_line
    from repro.grid.sniffer import apply_event

    event = parse_line(line)
    if backend is not None:
        apply_event(backend, event)
    return event.timestamp


def recover(
    data_dir: str,
    backend=None,
    telemetry=None,
    repair: bool = True,
) -> RecoveredState:
    """Recover the durable state under ``data_dir``.

    When ``backend`` is given, the checkpointed snapshot is restored into
    it and replayed records are applied; with ``backend=None`` this is a
    dry scan that still computes offsets/recency watermarks.  ``repair``
    truncates torn WAL tails in place (truncate-and-continue) so the
    segment can keep accepting appends.
    """
    tel = obs.resolve(telemetry)
    recovered = RecoveredState(data_dir)
    if not os.path.isdir(data_dir):
        return recovered

    epoch, state, invalid = latest_valid_checkpoint(data_dir)
    recovered.invalid_checkpoints = invalid
    if state is not None:
        recovered.epoch = epoch if epoch is not None else 0
        recovered.state = state
        if backend is not None:
            restore_database(backend, state.get("database", {}))
        ingest = state.get("ingest", {})
        recovered.offsets = {s: int(o) for s, o in ingest.get("offsets", {}).items()}
        recovered.recency = {s: float(r) for s, r in ingest.get("recency", {}).items()}
        recovered.last_loaded = {
            s: float(t) for s, t in ingest.get("last_loaded", {}).items()
        }

    for segment_epoch, path in list_wal_segments(data_dir):
        if segment_epoch < recovered.epoch:
            continue
        recovered.segments.append(path)
        scan = repair_torn_tail(path) if repair else None
        if scan is None:
            from repro.durable.wal import scan_frames

            scan = scan_frames(path)
        _replay_segment(recovered, scan, backend, tel)

    if tel.enabled:
        obs.record_recovery(
            tel,
            events=recovered.replayed_events,
            heartbeats=recovered.replayed_heartbeats,
            skipped=recovered.skipped_records,
            torn=len(recovered.torn_segments),
        )
        tel.emit(
            EVT_RECOVERED,
            severity="info",
            **recovered.summary(),
        )
    return recovered


def _replay_segment(recovered: RecoveredState, scan: FrameScan, backend, tel) -> None:
    if scan.torn is not None and scan.torn != "missing file":
        recovered.torn_segments.append(scan.path)
        if tel.enabled:
            tel.emit(EVT_WAL_TORN, severity="warning", path=scan.path, reason=scan.torn)
    for payload in scan.payloads:
        record = decode_record(payload)
        kind = record["k"]
        source = record["s"]
        if kind == "ev":
            offset = record["o"]
            watermark = recovered.offsets.get(source, 0)
            if offset < watermark:
                recovered.skipped_records += 1
                continue
            if offset > watermark:
                raise DurabilityError(
                    f"gap in journaled offsets for {source}: expected {watermark}, "
                    f"found {offset} in {scan.path}"
                )
            recovered.last_loaded[source] = _apply_line(backend, record["l"])
            recovered.offsets[source] = offset + 1
            recovered.replayed_events += 1
        elif kind == "bat":
            start, end = record["a"], record["b"]
            watermark = recovered.offsets.get(source, 0)
            if end <= watermark:
                recovered.skipped_records += 1
                continue
            if start > watermark:
                raise DurabilityError(
                    f"gap in journaled offsets for {source}: expected {watermark}, "
                    f"found batch [{start}, {end}) in {scan.path}"
                )
            for line in record["l"]:
                recovered.last_loaded[source] = _apply_line(backend, line)
                recovered.replayed_events += 1
            recovered.offsets[source] = end
        else:  # "hb"
            recency = float(record["r"])
            if recency > recovered.recency.get(source, _NEG_INF):
                if backend is not None:
                    backend.upsert_heartbeat(source, recency)
                recovered.recency[source] = recency
                recovered.replayed_heartbeats += 1
            else:
                recovered.skipped_records += 1
