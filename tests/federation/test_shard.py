"""The shard server: RPC ops, fragments, durable restart, injected faults."""

import math

import pytest

from repro.faults import FaultPlan
from repro.federation import ShardServer, rpc
from repro.federation.rpc import RPCError
from repro.grid.simulator import SimulationConfig


def make_shard(shard_id="s0", machines=3, start=1, seed=7, **kwargs):
    config = SimulationConfig(num_machines=machines, seed=seed, machine_id_start=start)
    return ShardServer(shard_id, config, **kwargs)


def settle(shard, ticks=30):
    """Advance the shard's simulator deterministically (no wall-clock wait)."""
    with shard._lock:
        for _ in range(ticks):
            shard.sim.step()


class TestInfoOps:
    def test_hello_reports_identity_and_machines(self):
        with make_shard(start=4) as shard:
            settle(shard)
            reply = rpc.call(shard.host, shard.port, {"op": "hello"}, timeout=2.0)
        assert reply["ok"] is True
        assert reply["shard_id"] == "s0"
        assert reply["machines"] == ["m4", "m5", "m6"]

    def test_heartbeat_carries_reported_recency(self):
        with make_shard() as shard:
            settle(shard, ticks=60)
            reply = rpc.call(shard.host, shard.port, {"op": "heartbeat"}, timeout=2.0)
        assert set(reply["recency"]) <= {"m1", "m2", "m3"}
        assert reply["recency"]  # something has reported by t=60
        assert all(math.isfinite(v) for v in reply["recency"].values())

    def test_unknown_op_is_an_error_reply(self):
        with make_shard() as shard:
            reply = rpc.call(shard.host, shard.port, {"op": "nope"}, timeout=2.0)
        assert reply["ok"] is False
        assert "unknown op" in reply["error"]

    def test_stop_op_sets_stopping(self):
        shard = make_shard().start()
        try:
            reply = rpc.call(shard.host, shard.port, {"op": "stop"}, timeout=2.0)
            assert reply["stopping"] is True
            assert shard.stopping
        finally:
            shard.close()


class TestFragment:
    def test_all_mode_returns_every_reporting_source(self):
        with make_shard() as shard:
            settle(shard, ticks=60)
            reply = rpc.call(
                shard.host,
                shard.port,
                {"op": "fragment", "mode": "all", "subqueries": []},
                timeout=2.0,
            )
        assert reply["ok"] is True
        assert len(reply["results"]) == 1
        sources = {sid for sid, _ in reply["results"][0]}
        assert sources <= {"m1", "m2", "m3"}
        assert sources

    def test_focused_mode_runs_subqueries_and_guards_verbatim(self):
        sub_sql = (
            "SELECT trac_h.source_id, trac_h.recency FROM heartbeat trac_h "
            "WHERE trac_h.source_id = 'm1'"
        )
        guard = "SELECT mach_id FROM activity WHERE value = 'busy'"
        with make_shard() as shard:
            settle(shard, ticks=60)
            reply = rpc.call(
                shard.host,
                shard.port,
                {
                    "op": "fragment",
                    "mode": "focused",
                    "subqueries": [{"sql": sub_sql, "guards": [guard]}],
                },
                timeout=2.0,
            )
        assert reply["ok"] is True
        assert guard in reply["guards"]
        assert isinstance(reply["guards"][guard], bool)
        for sid, recency in reply["results"][0]:
            assert sid == "m1"
            assert isinstance(recency, float)

    def test_empty_mode_returns_no_results(self):
        with make_shard() as shard:
            reply = rpc.call(
                shard.host,
                shard.port,
                {"op": "fragment", "mode": "empty", "subqueries": []},
                timeout=2.0,
            )
        assert reply["results"] == []
        assert reply["guards"] == {}

    def test_malformed_subquery_becomes_error_reply_not_crash(self):
        with make_shard() as shard:
            reply = rpc.call(
                shard.host,
                shard.port,
                {
                    "op": "fragment",
                    "mode": "focused",
                    "subqueries": [{"sql": "THIS IS NOT SQL", "guards": []}],
                },
                timeout=2.0,
            )
            # The server survives and keeps answering.
            assert reply["ok"] is False
            again = rpc.call(shard.host, shard.port, {"op": "hello"}, timeout=2.0)
        assert again["ok"] is True


class TestDurableRestart:
    def test_kill_and_resume_preserves_acked_recency(self, tmp_path):
        from repro.durable import DurabilityManager, DurabilityPolicy

        data_dir = tmp_path / "shard-0"
        policy = DurabilityPolicy(fsync="always", checkpoint_interval=10.0)
        durability = DurabilityManager(str(data_dir), policy=policy)
        config = SimulationConfig(num_machines=2, seed=3, machine_id_start=1)
        shard = ShardServer("s0", config, durability=durability)
        shard.server.start()  # step manually: no background stepping thread
        settle(shard, ticks=90)
        before = dict(durability.acked()["recency"])
        assert before
        # Simulated crash: drop everything on the floor, no close().
        shard.server.stop()
        shard.sim.backend.close()

        resumed = DurabilityManager(str(data_dir), policy=policy, resume=True)
        saved = resumed.saved_config()
        assert saved is not None
        shard2 = ShardServer(
            "s0", SimulationConfig.from_dict(saved), durability=resumed
        )
        try:
            shard2.server.start()
            after = resumed.acked()["recency"]
            for machine, recency in before.items():
                assert after.get(machine) is not None
                assert after[machine] >= recency
            assert shard2.sim.machine_ids == ["m1", "m2"]
        finally:
            shard2.close()

    def test_machine_id_start_round_trips_through_checkpoint(self, tmp_path):
        from repro.durable import DurabilityManager, DurabilityPolicy

        policy = DurabilityPolicy(fsync="always", checkpoint_interval=5.0)
        durability = DurabilityManager(str(tmp_path / "d"), policy=policy)
        config = SimulationConfig(num_machines=2, seed=3, machine_id_start=7)
        shard = ShardServer("s1", config, durability=durability)
        settle(shard, ticks=30)
        shard.close()

        resumed = DurabilityManager(str(tmp_path / "d"), policy=policy, resume=True)
        saved = SimulationConfig.from_dict(resumed.saved_config())
        assert saved.machine_id_start == 7
        resumed.close(0.0)


class TestRPCFaultInjection:
    def test_rpc_drop_fault_starves_the_client(self):
        plan = FaultPlan(seed=1).rpc_fault("s0", "rpc_drop", at=[0.0])
        with make_shard(fault_plan=plan) as shard:
            settle(shard, ticks=5)
            with pytest.raises(RPCError):
                rpc.call(shard.host, shard.port, {"op": "hello"}, timeout=0.5)
            # One-shot scripted fault: the next call gets through.
            reply = rpc.call(shard.host, shard.port, {"op": "hello"}, timeout=2.0)
        assert reply["ok"] is True
        assert plan.injected.get("rpc_drop") == 1

    def test_status_reports_injected_rpc_faults(self):
        plan = FaultPlan(seed=1).rpc_fault("s0", "rpc_duplicate", at=[0.0])
        with make_shard(fault_plan=plan) as shard:
            settle(shard, ticks=5)
            rpc.call(shard.host, shard.port, {"op": "hello"}, timeout=2.0)
            reply = rpc.call(shard.host, shard.port, {"op": "status"}, timeout=2.0)
        assert reply["faults_injected"].get("rpc_duplicate") == 1


class TestDisjointIdSpaces:
    def test_shards_never_alias_machine_ids(self):
        a = SimulationConfig(num_machines=3, seed=1, machine_id_start=1)
        b = SimulationConfig(num_machines=3, seed=1, machine_id_start=4)
        with ShardServer("s0", a) as s0, ShardServer("s1", b) as s1:
            ids0 = set(s0.sim.machine_ids)
            ids1 = set(s1.sim.machine_ids)
        assert ids0 == {"m1", "m2", "m3"}
        assert ids1 == {"m4", "m5", "m6"}
        assert not (ids0 & ids1)
