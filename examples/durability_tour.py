#!/usr/bin/env python
"""Crash-safe durability end to end: journal, kill, recover, verify.

The monitoring database the paper cares about is long-lived; the processes
feeding it are not. This tour runs a durable grid simulation, "crashes" it
mid-run (abandoning the process state, exactly what SIGKILL leaves behind),
resumes from the write-ahead log and checkpoint, and shows that the
survivor is byte-identical to a run that never crashed. It closes with the
torn-tail contract: a journal cut mid-frame yields its valid prefix, never
an exception.

Run:  python examples/durability_tour.py
"""

import os
import tempfile

from repro.backends.memory import MemoryBackend
from repro.durable import DurabilityManager, DurabilityPolicy, recover
from repro.durable.wal import FrameWriter, scan_frames
from repro.grid.simulator import GridSimulator, SimulationConfig, monitoring_catalog

SEED = 2006
MACHINES = 6
CRASH_AT = 150.0
TOTAL = 300.0


def database_state(backend, catalog):
    state = {
        schema.name: sorted(backend.execute(f"SELECT * FROM {schema.name}").rows)
        for schema in catalog.monitored_tables()
    }
    state["heartbeat"] = sorted(backend.heartbeat_rows())
    return state


def durable_policy():
    # fsync="always" acknowledges every record; checkpoints every 60
    # simulated seconds bound how much WAL a recovery has to replay.
    return DurabilityPolicy(fsync="always", checkpoint_interval=60.0)


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="trac-durability-tour-")
    config = SimulationConfig(num_machines=MACHINES, seed=SEED)

    print(f"--- Part 1: a journaled run (data dir: {data_dir}) ---")
    manager = DurabilityManager(data_dir, policy=durable_policy())
    sim = GridSimulator(config, durability=manager)
    sim.run(CRASH_AT)
    stats = manager.stats()
    print(f"  simulated {sim.now:.0f}s of grid activity")
    print(
        f"  journal: {stats['wal_records']} WAL records, "
        f"{stats['checkpoints_written']} checkpoints (epoch {stats['epoch']})"
    )
    artifacts = sorted(
        n for n in os.listdir(data_dir) if n.endswith((".wal", ".json"))
    )
    print(f"  on disk: {', '.join(artifacts)}")

    print("\n--- Part 2: crash and resume ---")
    # No close(), no final checkpoint: this is what SIGKILL leaves behind.
    del sim, manager
    resumed_manager = DurabilityManager(data_dir, policy=durable_policy(), resume=True)
    resumed = GridSimulator(config, durability=resumed_manager)
    summary = resumed_manager.recovered.summary()
    print(
        f"  recovered epoch {summary['epoch']} at t={resumed.now:.0f}s: "
        f"{summary['replayed_events']} events and "
        f"{summary['replayed_heartbeats']} heartbeats replayed from "
        f"{summary['segments']} WAL segment(s)"
    )
    resumed.run(TOTAL - resumed.now)
    resumed_manager.close(resumed.now)
    print(f"  resumed run finished at t={resumed.now:.0f}s")

    oracle = GridSimulator(config)
    oracle.run(TOTAL)
    match = database_state(resumed.backend, resumed.catalog) == database_state(
        oracle.backend, oracle.catalog
    )
    print(f"  survivor equals a never-crashed oracle: {match}")

    print("\n--- Part 3: offline recovery into a fresh database ---")
    fresh = MemoryBackend(monitoring_catalog(resumed.machine_ids))
    recovered = recover(data_dir, backend=fresh)
    print(
        f"  rebuilt {sum(1 for _ in fresh.heartbeat_rows())} heartbeat rows, "
        f"{fresh.row_count('activity')} activity rows "
        f"(epoch {recovered.epoch}, {len(recovered.segments)} segment(s))"
    )
    offline_match = database_state(fresh, resumed.catalog) == database_state(
        resumed.backend, resumed.catalog
    )
    print(f"  offline recovery equals the live database: {offline_match}")

    print("\n--- Part 4: the torn-tail contract ---")
    torn_path = os.path.join(data_dir, "demo.wal")
    with FrameWriter(torn_path, fsync="never") as writer:
        writer.append(b"record-1")
        writer.append(b"record-2")
    with open(torn_path, "rb+") as fp:
        fp.truncate(os.path.getsize(torn_path) - 3)  # SIGKILL mid-frame
    scan = scan_frames(torn_path)
    print("  cut the journal 3 bytes short of a frame boundary")
    print(f"  scan yields {len(scan.payloads)} valid record(s); torn: {scan.torn!r}")
    print("  recovery truncates the tail and the journal keeps accepting appends")


if __name__ == "__main__":
    main()
