"""Exact relevant-source computation by domain enumeration.

This is the "conceptually simple, impractical" algorithm of Section 4.1,
kept — exactly as the paper kept it (Section 5.2) — as the ground truth for
measuring false-positive rates. It requires every column of the enumerated
relation to carry a finite domain.

For each relation ``R_i`` of the query it materializes the *potential
relation*: the cross product of ``R_i``'s column domains. It then runs

    SELECT DISTINCT R_i.c_s  FROM  R_1, ..., potential(R_i), ..., R_n
    WHERE <the user query's predicates>

on the mini engine with ``R_i`` substituted, which by Definition 2 yields
exactly the sources relevant via ``R_i``; Corollary 4's union over ``i``
gives ``S(Q)``.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set

from repro.engine import Database, Relation
from repro.engine.evaluate import execute_query
from repro.errors import DomainError, TracError
from repro.sqlparser import ast
from repro.sqlparser.resolver import RelationBinding, ResolvedQuery

#: Default budget on the size of one potential relation.
DEFAULT_MAX_TUPLES = 500000


def potential_relation(
    binding: RelationBinding,
    referenced_columns: Optional[Set[str]] = None,
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> Relation:
    """Materialize the cross product of a relation's column domains.

    Columns that no predicate references (``referenced_columns``, lower-
    cased; ``None`` means "assume all referenced") are represented by a
    single placeholder value: their value cannot influence predicate
    satisfaction, so one representative witnesses the existential
    quantification of Definitions 1/2 without blowing up the product. The
    data source column is always enumerated — it is what we project.

    Raises
    ------
    DomainError
        If an enumerated column's domain is infinite or the product exceeds
        the budget.
    """
    schema = binding.schema
    value_lists: List[List[object]] = []
    total = 1
    for column in schema.columns:
        is_source = schema.is_source_column(column.name)
        needed = (
            is_source
            or referenced_columns is None
            or column.name.lower() in referenced_columns
        )
        if not needed:
            value_lists.append([None])
            continue
        if not column.domain.is_finite:
            raise DomainError(
                f"column {schema.name}.{column.name} has an infinite domain; "
                "brute force needs finite domains for every referenced column"
            )
        values = list(column.domain.iter_values())
        total *= max(len(values), 1)
        if total > max_tuples:
            raise DomainError(
                f"potential relation for {schema.name!r} exceeds {max_tuples} tuples"
            )
        value_lists.append(values)
    relation = Relation(schema)
    for combo in itertools.product(*value_lists):
        relation.insert(combo)
    return relation


def brute_force_relevant_sources(
    db: Database,
    resolved: ResolvedQuery,
    max_tuples: int = DEFAULT_MAX_TUPLES,
    use_constraints: bool = True,
) -> Set[str]:
    """Compute ``S(Q)`` exactly (Definitions 1 and 2).

    Parameters
    ----------
    db:
        The in-memory database holding the *current* relation instances
        (used for the "existing tuples" side of Definition 2).
    resolved:
        The resolved user query.
    max_tuples:
        Budget for each relation's potential cross product.
    use_constraints:
        Analyze ``Q'`` (query plus schema constraints, Section 3.4) so the
        potential tuples are restricted to legal ones — must match the
        planner's setting for fpr comparisons to be apples-to-apples.
    """
    relevant: Set[str] = set()
    for binding in resolved.bindings:
        if binding.schema.source_column is None:
            raise TracError(
                f"table {binding.schema.name!r} has no data source column"
            )
        relevant |= relevant_via(db, resolved, binding, max_tuples, use_constraints)
    return relevant


def _probe_where(resolved: ResolvedQuery, use_constraints: bool):
    if use_constraints and any(b.schema.constraints for b in resolved.bindings):
        from repro.core.constraints import augmented_where

        return augmented_where(resolved)
    return resolved.query.where


def relevant_via(
    db: Database,
    resolved: ResolvedQuery,
    binding: RelationBinding,
    max_tuples: int = DEFAULT_MAX_TUPLES,
    use_constraints: bool = True,
) -> Set[str]:
    """Sources relevant via one relation (``S(Q, R_i)`` of Section 4.1.2)."""
    where = _probe_where(resolved, use_constraints)
    referenced: Set[str] = set()
    if where is not None:
        for ref in ast.column_refs(where):
            if ref.binding_key == binding.key:
                referenced.add(ref.name.lower())
    potential = potential_relation(binding, referenced, max_tuples)

    source_ref = ast.ColumnRef(binding.schema.source_column, qualifier=binding.key)  # type: ignore[arg-type]
    source_ref.binding_key = binding.key
    source_ref.is_source = True

    probe = ast.Query(
        select_items=[ast.SelectItem(source_ref)],
        tables=resolved.query.tables,
        where=where,
        distinct=True,
    )
    probe_resolved = _reuse_resolution(resolved, probe)
    result = execute_query(db, probe_resolved, relation_override={binding.key: potential})
    return {value for (value,) in result.rows if value is not None}  # type: ignore[misc]


def _reuse_resolution(resolved: ResolvedQuery, query: ast.Query) -> ResolvedQuery:
    """Wrap a derived query that shares the original's (already resolved)
    FROM clause and predicate trees."""
    return ResolvedQuery(query, list(resolved.bindings), resolved.catalog)
