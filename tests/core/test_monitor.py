"""Watch-rule / alerting tests for the monitoring layer."""

import pytest

from repro.core.monitor import RecencyMonitor, WatchRule
from repro.errors import TracError
from repro.grid import GridSimulator, SimulationConfig

IDLE = "SELECT mach_id FROM activity WHERE value = 'idle'"


class TestWatchRuleValidation:
    def test_needs_a_name(self):
        with pytest.raises(TracError):
            WatchRule("", IDLE, max_staleness=1.0)

    def test_needs_a_condition(self):
        with pytest.raises(TracError):
            WatchRule("r", IDLE)

    def test_duplicate_rule_rejected(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend)
        monitor.add_rule(WatchRule("r", IDLE, max_staleness=1.0))
        with pytest.raises(TracError):
            monitor.add_rule(WatchRule("r", IDLE, max_staleness=2.0))

    def test_remove_rule(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend)
        monitor.add_rule(WatchRule("r", IDLE, max_staleness=1.0))
        monitor.remove_rule("r")
        assert monitor.rules == []


class TestConditions:
    """Against the conftest paper data: normal sources span 20 minutes;
    m2 is a month stale (exceptional)."""

    def test_inconsistency_bound_trips(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend, clock=lambda: 0.0)
        monitor.add_rule(WatchRule("tight", IDLE, max_inconsistency=60.0))
        alerts = monitor.check()
        assert [a.kind for a in alerts] == ["inconsistency"]
        assert "00:20:00" in alerts[0].message

    def test_inconsistency_bound_passes_when_loose(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend, clock=lambda: 0.0)
        monitor.add_rule(WatchRule("loose", IDLE, max_inconsistency=3600.0))
        assert monitor.check() == []

    def test_staleness_trips_relative_to_clock(self, paper_memory_backend):
        from tests.conftest import BASE_TIME

        monitor = RecencyMonitor(
            paper_memory_backend, clock=lambda: BASE_TIME + 2 * 3600.0
        )
        monitor.add_rule(WatchRule("fresh", IDLE, max_staleness=600.0))
        alerts = monitor.check()
        assert [a.kind for a in alerts] == ["staleness"]
        assert "m1" in alerts[0].message  # least recent normal source

    def test_exceptional_trips(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend, clock=lambda: 0.0)
        monitor.add_rule(WatchRule("clean", IDLE, forbid_exceptional=True))
        alerts = monitor.check()
        assert [a.kind for a in alerts] == ["exceptional"]
        assert "m2" in alerts[0].message

    def test_require_minimal_trips_on_upper_bound(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend, clock=lambda: 0.0)
        monitor.add_rule(
            WatchRule(
                "exact",
                "SELECT mach_id FROM routing WHERE mach_id = neighbor",
                require_minimal=True,
            )
        )
        alerts = monitor.check()
        assert [a.kind for a in alerts] == ["non_minimal"]

    def test_require_minimal_passes_when_minimal(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend, clock=lambda: 0.0)
        monitor.add_rule(WatchRule("exact", IDLE, require_minimal=True))
        assert monitor.check() == []

    def test_multiple_conditions_can_trip_together(self, paper_memory_backend):
        from tests.conftest import BASE_TIME

        monitor = RecencyMonitor(
            paper_memory_backend, clock=lambda: BASE_TIME + 2 * 3600.0
        )
        monitor.add_rule(
            WatchRule(
                "strict",
                IDLE,
                max_inconsistency=60.0,
                max_staleness=600.0,
                forbid_exceptional=True,
            )
        )
        kinds = sorted(a.kind for a in monitor.check())
        assert kinds == ["exceptional", "inconsistency", "staleness"]

    def test_history_accumulates(self, paper_memory_backend):
        monitor = RecencyMonitor(paper_memory_backend, clock=lambda: 0.0)
        monitor.add_rule(WatchRule("tight", IDLE, max_inconsistency=1.0))
        monitor.check()
        monitor.check()
        assert len(monitor.history) == 2


class TestWithSimulator:
    def test_alert_fires_when_machines_die(self):
        """End to end: a healthy grid passes; after machines fail and time
        passes, the exceptional-source rule trips."""
        sim = GridSimulator(
            SimulationConfig(
                num_machines=30,
                seed=13,
                heartbeat_interval=10.0,
                machine_recover_probability=0.0,
            )
        )
        sim.run(120)
        monitor = RecencyMonitor(sim.backend, clock=lambda: sim.now)
        monitor.add_rule(
            WatchRule("liveness", "SELECT mach_id FROM activity", forbid_exceptional=True)
        )
        assert monitor.check() == []

        sim.machines["m5"].fail()
        sim.run(3600)
        sim.drain()
        alerts = monitor.check()
        assert len(alerts) == 1
        assert "m5" in alerts[0].message


class TestRulesFromJson:
    def test_load_valid_rules(self):
        from repro.core.monitor import rules_from_json

        rules = rules_from_json(
            '[{"name": "r1", "sql": "SELECT mach_id FROM activity", '
            '"max_staleness": 60, "forbid_exceptional": true}]'
        )
        assert len(rules) == 1
        assert rules[0].name == "r1"
        assert rules[0].max_staleness == 60
        assert rules[0].forbid_exceptional

    def test_malformed_json(self):
        from repro.core.monitor import rules_from_json

        with pytest.raises(TracError):
            rules_from_json("{nope")

    def test_non_list(self):
        from repro.core.monitor import rules_from_json

        with pytest.raises(TracError):
            rules_from_json('{"name": "x"}')

    def test_unknown_field(self):
        from repro.core.monitor import rules_from_json

        with pytest.raises(TracError, match="unknown fields"):
            rules_from_json('[{"name": "r", "sql": "S", "frequency": 5}]')

    def test_missing_name(self):
        from repro.core.monitor import rules_from_json

        with pytest.raises(TracError):
            rules_from_json('[{"sql": "SELECT 1 FROM t"}]')


class TestWatchCli:
    def test_watch_pass_and_trip(self, tmp_path, capsys):
        import json

        from repro.cli import main

        db = str(tmp_path / "g.sqlite")
        assert main(["simulate", "--db", db, "--machines", "4", "--duration", "60"]) == 0
        capsys.readouterr()

        rules_path = tmp_path / "rules.json"
        rules_path.write_text(
            json.dumps(
                [
                    {
                        "name": "liveness",
                        "sql": "SELECT mach_id FROM activity",
                        "max_staleness": 1e9,
                    }
                ]
            )
        )
        # Simulated timestamps live near epoch 0: pin the clock via --now.
        assert main(["watch", "--db", db, "--rules", str(rules_path), "--now", "60"]) == 0
        assert "pass" in capsys.readouterr().out

        strict = tmp_path / "strict.json"
        strict.write_text(
            json.dumps(
                [
                    {
                        "name": "impossible",
                        "sql": "SELECT mach_id FROM activity",
                        "max_staleness": 0.0001,
                    }
                ]
            )
        )
        assert main(["watch", "--db", db, "--rules", str(strict), "--now", "60"]) == 2
        assert "ALERT [staleness]" in capsys.readouterr().out
