"""The staleness-derived quality model (``repro.core.quality``)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quality import (
    DEFAULT_DEGRADED_PENALTY,
    DEFAULT_EXCEPTIONAL_PENALTY,
    ProvenanceRecord,
    QualityModel,
    QualitySummary,
)
from repro.core.slo import StalenessSLO
from repro.core.statistics import SourceRecency


class TestFreshness:
    def test_zero_staleness_scores_one(self):
        assert QualityModel().freshness(0.0) == 1.0

    def test_half_life_halves(self):
        model = QualityModel(half_life=60.0)
        assert math.isclose(model.freshness(60.0), 0.5)
        assert math.isclose(model.freshness(120.0), 0.25)

    def test_negative_staleness_clamps_to_one(self):
        assert QualityModel().freshness(-5.0) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.0, 1e5), st.floats(0.0, 1e5))
    def test_monotone_nonincreasing_in_staleness(self, a, b):
        model = QualityModel(half_life=30.0)
        lo, hi = sorted((a, b))
        assert model.freshness(hi) <= model.freshness(lo)

    def test_half_life_must_be_positive(self):
        with pytest.raises(ValueError):
            QualityModel(half_life=0.0)

    def test_from_slo_uses_p95_target(self):
        slo = StalenessSLO(target_p95=42.0)
        assert QualityModel.from_slo(slo).half_life == 42.0


class TestScoreSources:
    def test_reference_is_freshest_source(self):
        model = QualityModel(half_life=60.0)
        scores = model.score_sources(
            [SourceRecency("new", 100.0), SourceRecency("old", 40.0)]
        )
        assert scores["new"].quality == 1.0
        assert math.isclose(scores["old"].quality, 0.5)
        assert scores["old"].staleness == 60.0

    def test_now_override_anchors_reference(self):
        model = QualityModel(half_life=60.0)
        scores = model.score_sources([SourceRecency("s", 40.0)], now=100.0)
        assert math.isclose(scores["s"].quality, 0.5)

    def test_exceptional_and_degraded_penalties(self):
        model = QualityModel(half_life=60.0)
        scores = model.score_sources(
            [SourceRecency("e", 100.0), SourceRecency("d", 100.0), SourceRecency("n", 100.0)],
            exceptional={"e"},
            degraded={"d"},
        )
        assert scores["n"].quality == 1.0
        assert scores["e"].quality == DEFAULT_EXCEPTIONAL_PENALTY
        assert scores["d"].quality == DEFAULT_DEGRADED_PENALTY
        assert scores["e"].exceptional and not scores["e"].degraded
        assert scores["d"].degraded and not scores["d"].exceptional

    def test_degraded_source_without_heartbeat_scores_zero(self):
        scores = QualityModel().score_sources(
            [SourceRecency("alive", 10.0)], degraded={"silent"}
        )
        assert scores["silent"].quality == 0.0
        assert scores["silent"].recency is None
        assert scores["silent"].degraded

    def test_empty_inputs_yield_no_scores(self):
        assert QualityModel().score_sources([]) == {}


class TestRowQuality:
    def test_min_combine(self):
        model = QualityModel(half_life=60.0)
        scores = model.score_sources(
            [SourceRecency("good", 100.0), SourceRecency("bad", 40.0)]
        )
        assert math.isclose(model.row_quality({"good", "bad"}, scores), 0.5)

    def test_cited_but_unscored_source_pins_to_zero(self):
        model = QualityModel()
        scores = model.score_sources([SourceRecency("known", 10.0)])
        assert model.row_quality({"known", "ghost"}, scores) == 0.0

    def test_empty_lineage_is_unattributed(self):
        assert QualityModel().row_quality([], {}) is None

    def test_quality_degrades_monotonically_with_injected_staleness(self):
        """The acceptance property: aging one contributor can only lower
        (never raise) every row quality that cites it."""
        model = QualityModel(half_life=60.0)
        lineages = [frozenset({"a"}), frozenset({"a", "b"})]
        previous = [1.1, 1.1]
        for staleness in (0.0, 30.0, 90.0, 400.0):
            scores = model.score_sources(
                [SourceRecency("a", 1000.0 - staleness), SourceRecency("b", 1000.0)],
                now=1000.0,
            )
            summary = model.summarize(lineages, scores)
            for prior, current in zip(previous, summary.row_quality):
                assert current <= prior
            previous = summary.row_quality


class TestSummarize:
    def _summary(self) -> QualitySummary:
        model = QualityModel(half_life=60.0)
        scores = model.score_sources(
            [SourceRecency("a", 100.0), SourceRecency("b", 40.0)],
            exceptional={"b"},
        )
        lineages = [frozenset({"a"}), frozenset({"a", "b"}), frozenset()]
        return model.summarize(lineages, scores)

    def test_counts(self):
        summary = self._summary()
        assert summary.rows == 3
        assert summary.attributed_rows == 2
        assert summary.unattributed_rows == 1
        assert summary.rows_from_exceptional == 1
        assert summary.rows_from_degraded == 0
        assert summary.per_source_rows == {"a": 2, "b": 1}
        assert math.isclose(summary.worst_row_quality, 0.5 * DEFAULT_EXCEPTIONAL_PENALTY)
        assert summary.row_quality[2] is None

    def test_top_sources_ranked_by_row_count_then_id(self):
        summary = self._summary()
        assert summary.top_sources(2) == [("a", 2), ("b", 1)]
        assert summary.top_sources(0) == []

    def test_to_dict_shape(self):
        doc = self._summary().to_dict()
        assert doc["rows"] == 3
        assert {s["source_id"] for s in doc["sources"]} == {"a", "b"}
        assert "row_quality" not in doc  # the parallel list stays in-process


class TestProvenanceRecord:
    def test_duck_types_for_the_profile_ring(self):
        record = ProvenanceRecord(
            "SELECT 1", "ab" * 16, "focused", [frozenset({"b", "a"})], None
        )
        assert record.sql == "SELECT 1"
        assert record.trace_id == "ab" * 16
        assert record.row_provenance == [["a", "b"]]  # sorted for stable output
        doc = record.to_dict()
        assert doc["row_provenance"] == [["a", "b"]]
        assert doc["quality"] is None
