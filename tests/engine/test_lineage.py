"""Row-level lineage: algebra laws, alignment, and the cache-key split.

The lineage algebra has three laws the engine must uphold for every query
shape (checked here with Hypothesis, and at scale by
``tools/fuzz_lineage.py``):

* a join row's lineage is the union of its parents' lineages;
* projection and filtering never *invent* sources — every cited source
  exists in the base data;
* the compiled and interpreted paths produce identical lineage (both
  funnel through the same projection, so this is by construction — the
  test pins it against regressions).

Plus the satellite regression: the resolved-query cache key includes the
lineage flag, so a lineage-free cached entry can never serve a
lineage-requesting execution (or vice versa).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, FiniteDomain, TableSchema
from repro.engine import Database, execute_sql
from repro.engine.cache import ResolvedQueryCache, resolve_cached
from repro.engine.lineage import (
    EMPTY_LINEAGE,
    build_lineage_plan,
    env_lineage,
    union_lineage,
)
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve


def catalog() -> Catalog:
    return Catalog(
        [
            TableSchema(
                "t1",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("x", "INTEGER"),
                ],
                source_column="s",
            ),
            TableSchema(
                "t2",
                [
                    Column("s", "TEXT", FiniteDomain({"a", "b", "c"})),
                    Column("y", "INTEGER"),
                ],
                source_column="s",
            ),
        ]
    )


def make_db(rows1, rows2) -> Database:
    db = Database(catalog())
    db.insert_many("t1", rows1)
    db.insert_many("t2", rows2)
    return db


_row1 = st.tuples(st.sampled_from(["a", "b", "c"]), st.one_of(st.none(), st.integers(-2, 4)))
_row2 = st.tuples(st.sampled_from(["a", "b", "c"]), st.one_of(st.none(), st.integers(-2, 4)))

_where = st.sampled_from(
    [
        "t1.s = t2.s",
        "t1.s <> t2.s",
        "t1.x = t2.y",
        "t1.x > 0 AND t1.s = t2.s",
        "t1.x IS NULL OR t2.y IS NOT NULL",
        "t1.s IN ('a', 'b')",
    ]
)


class TestLineagePlan:
    def test_probes_cover_source_bearing_bindings(self):
        resolved = resolve(
            parse_query("SELECT t1.x FROM t1, t2 WHERE t1.s = t2.s"), catalog()
        )
        plan = build_lineage_plan(resolved)
        assert plan.fanin == 2
        assert sorted(key for key, _ in plan.probes) == ["t1", "t2"]

    def test_null_source_values_are_skipped(self):
        schema = TableSchema(
            "t3", [Column("s", "TEXT"), Column("x", "INTEGER")], source_column="s"
        )
        db = Database(Catalog([schema]))
        db.insert_many("t3", [(None, 1), ("a", 2)])
        result = execute_sql(db, "SELECT t3.x FROM t3", lineage=True, cache=False)
        assert result.lineage == [EMPTY_LINEAGE, frozenset({"a"})]

    def test_union_lineage(self):
        assert union_lineage([frozenset({"a"}), frozenset({"b"})]) == frozenset(
            {"a", "b"}
        )
        assert union_lineage([]) == EMPTY_LINEAGE

    def test_env_lineage_reads_bound_rows(self):
        env = {"t1": ("a", 1), "t2": ("b", 2)}
        assert env_lineage(env, [("t1", 0), ("t2", 0)]) == frozenset({"a", "b"})


class TestLineageAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_row1, max_size=5), st.lists(_row2, max_size=4), _where)
    def test_join_lineage_is_union_of_parents(self, rows1, rows2, where):
        db = make_db(rows1, rows2)
        sql = f"SELECT t1.s, t2.s FROM t1, t2 WHERE {where}"
        result = execute_sql(db, sql, lineage=True, cache=False)
        assert result.lineage is not None
        assert len(result.lineage) == len(result.rows)
        for row, lineage in zip(result.rows, result.lineage):
            # Each parent scan contributes exactly its own source value,
            # so the join row's lineage is their union.
            assert lineage == frozenset(v for v in row if v is not None)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_row1, max_size=5), st.lists(_row2, max_size=4), _where)
    def test_projection_and_filter_never_invent_sources(self, rows1, rows2, where):
        db = make_db(rows1, rows2)
        base = {r[0] for r in rows1} | {r[0] for r in rows2}
        sql = f"SELECT t1.x FROM t1, t2 WHERE {where}"
        result = execute_sql(db, sql, lineage=True, cache=False)
        for lineage in result.lineage:
            assert lineage <= base

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_row1, max_size=5), st.lists(_row2, max_size=4), _where)
    def test_compiled_and_interpreted_lineage_identical(self, rows1, rows2, where):
        db = make_db(rows1, rows2)
        for select in ("t1.s, t2.y", "COUNT(*)", "DISTINCT t1.s"):
            sql = f"SELECT {select} FROM t1, t2 WHERE {where}"
            interpreted = execute_sql(db, sql, compiled=False, lineage=True, cache=False)
            compiled = execute_sql(db, sql, compiled=True, lineage=True, cache=False)
            assert interpreted.rows == compiled.rows, sql
            assert interpreted.lineage == compiled.lineage, sql

    def test_aggregate_unions_group_contributors(self):
        db = make_db([("a", 1), ("b", 2)], [("a", 1), ("b", 2)])
        result = execute_sql(
            db, "SELECT COUNT(*) FROM t1, t2 WHERE t1.s = t2.s", lineage=True, cache=False
        )
        assert result.lineage == [frozenset({"a", "b"})]

    def test_aggregate_over_empty_input_has_empty_lineage(self):
        db = make_db([], [])
        result = execute_sql(db, "SELECT COUNT(*) FROM t1", lineage=True, cache=False)
        assert result.rows == [(0,)]
        assert result.lineage == [EMPTY_LINEAGE]

    def test_group_by_splits_lineage_per_group(self):
        db = make_db([("a", 1), ("a", 2), ("b", 3)], [])
        result = execute_sql(
            db,
            "SELECT t1.s, COUNT(*) FROM t1 GROUP BY t1.s ORDER BY t1.s",
            lineage=True,
            cache=False,
        )
        assert result.rows == [("a", 2), ("b", 1)]
        assert result.lineage == [frozenset({"a"}), frozenset({"b"})]

    def test_distinct_merges_duplicate_rows_lineage(self):
        # 'a' and 'b' rows both project x=1; DISTINCT keeps one row whose
        # lineage is the union of the collapsed duplicates (why-provenance).
        db = make_db([("a", 1), ("b", 1)], [])
        result = execute_sql(db, "SELECT DISTINCT t1.x FROM t1", lineage=True, cache=False)
        assert result.rows == [(1,)]
        assert result.lineage == [frozenset({"a", "b"})]

    def test_order_by_and_limit_keep_lineage_aligned(self):
        db = make_db([("a", 3), ("b", 1), ("c", 2)], [])
        result = execute_sql(
            db,
            "SELECT t1.x FROM t1 ORDER BY t1.x DESC LIMIT 2",
            lineage=True,
            cache=False,
        )
        assert result.rows == [(3,), (2,)]
        assert result.lineage == [frozenset({"a"}), frozenset({"c"})]

    def test_lineage_disabled_returns_none(self):
        db = make_db([("a", 1)], [])
        assert execute_sql(db, "SELECT t1.x FROM t1", cache=False).lineage is None


class TestLineageCacheKey:
    """Satellite: the resolved-query LRU keys on the lineage flag."""

    def test_lineage_free_entry_never_serves_lineage_execution(self):
        db = make_db([("a", 1), ("b", 2)], [])
        sql = "SELECT t1.x FROM t1"
        plain = execute_sql(db, sql)  # populates the lineage-free entry
        assert plain.lineage is None
        with_lineage = execute_sql(db, sql, lineage=True)
        assert with_lineage.lineage == [frozenset({"a"}), frozenset({"b"})]
        # And back: the lineage-enabled entry must not leak into plain runs.
        plain_again = execute_sql(db, sql)
        assert plain_again.lineage is None

    def test_cache_entries_are_split_by_flag(self):
        cache = ResolvedQueryCache(maxsize=8)
        sql = "SELECT t1.x FROM t1"
        cat = catalog()
        plain = cache.resolve(sql, cat)
        lineaged = cache.resolve(sql, cat, lineage=True)
        assert plain is not lineaged
        assert not hasattr(plain, "lineage_plan")
        assert lineaged.lineage_plan.fanin == 1
        # Both entries hit independently.
        assert cache.resolve(sql, cat) is plain
        assert cache.resolve(sql, cat, lineage=True) is lineaged
        assert cache.stats()["hits"] == 2

    def test_module_level_cache_attaches_plan_only_when_asked(self):
        sql = "SELECT t2.y FROM t2"
        cat = catalog()
        plain = resolve_cached(sql, cat)
        lineaged = resolve_cached(sql, cat, lineage=True)
        assert not hasattr(plain, "lineage_plan")
        assert hasattr(lineaged, "lineage_plan")
