"""The anomaly flight recorder: post-hoc debuggable chaos runs.

A chaos run (PR 3's fault plans) produces anomalies — a source degrades,
the silence watchdog fires, a report marks a source exceptional — and by
the time a human looks, the interesting context has scrolled out of every
ring buffer. The :class:`FlightRecorder` subscribes to the telemetry
event log and, whenever a **trigger** event fires, snapshots everything
an investigation needs into one timestamped JSON file:

* the triggering event itself plus the last ``max_events`` events before
  it (ordered, span-correlated);
* the most recent ``max_spans`` finished spans and every currently open
  span (so you can see what the system was *in the middle of*);
* every metric value (:func:`~repro.obs.export.metrics_snapshot`);
* recent per-operator query profiles plus the trigger's ``trace_id``
  (a ``query.slow`` dump therefore carries both the span tree and the
  operator-level profile of the offending query);
* recent row-provenance records with their quality summaries, when the
  reporter runs with lineage enabled (so a slow dump also answers *which
  sources fed the answer and how stale were they*);
* the health registry's view of each source, when wired;
* the SLO tracker's status and each source's retained lag series, when
  wired.

Dumps are rate-limited by a wall-clock ``cooldown`` (one degraded source
can emit many triggers in a burst), guarded against re-entrancy (the
recorder emits :data:`~repro.obs.events.EVT_FLIGHT_DUMPED` after each
dump, which must not re-trigger it), and named
``flight-<timestamp>-<seq>-<trigger>.json`` under the recorder's
directory. ``trac simulate --flight-dir`` installs one; the shell's
``.flight`` command takes a manual snapshot.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, List, Optional

from repro.obs.events import EVT_FLIGHT_DUMPED, Event
from repro.obs.export import metrics_snapshot

#: Event names that trigger an automatic dump (per the observatory spec):
#: a source degrading, the watchdog detecting silence, a report marking a
#: source exceptional, and a report crossing the slow-query threshold.
#: ``flight.dumped`` is deliberately NOT a trigger.
DEFAULT_TRIGGERS = frozenset(
    {"source.degraded", "watchdog.silence", "report.exceptional", "query.slow"}
)

#: Wall-clock seconds between automatic dumps.
DEFAULT_COOLDOWN = 30.0


class FlightRecorder:
    """Dump telemetry context to disk when anomaly events fire.

    Parameters
    ----------
    telemetry:
        The :class:`~repro.obs.instrument.Telemetry` whose event log,
        tracer and metrics to snapshot. Must be an enabled (non-null)
        telemetry — a null telemetry's event log never notifies.
    directory:
        Where dump files land; created on first dump.
    triggers:
        Event names that fire an automatic dump.
    cooldown:
        Minimum wall-clock seconds between automatic dumps (manual
        :meth:`dump` calls ignore it).
    max_events / max_spans:
        Retention caps for the dumped context.
    slo / health:
        Optional :class:`~repro.core.slo.StalenessSLO` and
        :class:`~repro.core.health.SourceHealth` to embed.
    clock:
        Wall-clock callable, injectable for tests (default
        :func:`time.time`).
    """

    def __init__(
        self,
        telemetry,
        directory: str,
        triggers: frozenset = DEFAULT_TRIGGERS,
        cooldown: float = DEFAULT_COOLDOWN,
        max_events: int = 256,
        max_spans: int = 256,
        slo=None,
        health=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.telemetry = telemetry
        self.directory = directory
        self.triggers = frozenset(triggers)
        self.cooldown = cooldown
        self.max_events = max_events
        self.max_spans = max_spans
        self.slo = slo
        self.health = health
        self._clock = clock or time.time
        self._lock = threading.Lock()
        self._last_dump_wall: Optional[float] = None
        self._dumping = False
        self._installed = False
        self._seq = 0
        #: Paths of every dump written, in order.
        self.dumps: List[str] = []

    # -- subscription -------------------------------------------------------

    def install(self) -> "FlightRecorder":
        """Subscribe to the telemetry event log; returns self."""
        if not self._installed:
            self.telemetry.events.subscribe(self._on_event)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.telemetry.events.unsubscribe(self._on_event)
            self._installed = False

    def _on_event(self, event: Event) -> None:
        if event.name not in self.triggers:
            return
        with self._lock:
            if self._dumping:
                return
            now = self._clock()
            if (
                self._last_dump_wall is not None
                and now - self._last_dump_wall < self.cooldown
            ):
                return
        self.dump(reason=event.name, trigger=event)

    # -- dumping ------------------------------------------------------------

    def dump(self, reason: str = "manual", trigger: Optional[Event] = None) -> str:
        """Write one flight dump now; returns its path."""
        with self._lock:
            if self._dumping:
                raise RuntimeError("flight dump already in progress")
            self._dumping = True
            self._seq += 1
            seq = self._seq
            wall = self._clock()
            self._last_dump_wall = wall
        try:
            payload = self._snapshot(reason, trigger, wall)
            os.makedirs(self.directory, exist_ok=True)
            slug = reason.replace(".", "-").replace("/", "-") or "manual"
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(wall))
            path = os.path.join(self.directory, f"flight-{stamp}-{seq:04d}-{slug}.json")
            # Write-then-rename so a crash mid-dump never leaves a torn
            # JSON file where an investigation expects a complete one.
            tmp_path = path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as fp:
                json.dump(payload, fp, sort_keys=True, indent=2, default=str)
                fp.write("\n")
                fp.flush()
                os.fsync(fp.fileno())
            os.rename(tmp_path, path)
            self.dumps.append(path)
        finally:
            with self._lock:
                self._dumping = False
        self.telemetry.emit(EVT_FLIGHT_DUMPED, severity="info", reason=reason, path=path)
        return path

    def _snapshot(self, reason: str, trigger: Optional[Event], wall: float) -> dict:
        tracer = self.telemetry.tracer
        finished = tracer.finished_spans()[-self.max_spans :]
        # The listener runs on the emitting thread, so that thread's span
        # stack is exactly the work in flight around the anomaly.
        stack = getattr(tracer, "_stack", None)
        open_spans = [s.to_dict() for s in stack()] if callable(stack) else []
        payload: dict = {
            "format": "trac-flight-v1",
            "reason": reason,
            "wall": wall,
            "trigger": trigger.to_dict() if trigger is not None else None,
            "events": [
                e.to_dict() for e in self.telemetry.events.tail(self.max_events)
            ],
            "events_dropped": self.telemetry.events.dropped,
            "spans": [s.to_dict() for s in finished],
            "open_spans": open_spans,
            "metrics": metrics_snapshot(self.telemetry.metrics),
        }
        # Trace correlation: the trigger's trace id (when stamped) plus
        # recent query profiles, so a query.slow dump carries the span
        # tree AND the per-operator profile of the offending query.
        if trigger is not None and trigger.trace_id:
            payload["trigger_trace_id"] = trigger.trace_id
        profile_log = getattr(self.telemetry, "profiles", None)
        if profile_log is not None:
            payload["profiles"] = [
                p.to_dict() for p in profile_log.tail(self.max_events)
            ]
        provenance_log = getattr(self.telemetry, "provenance", None)
        if provenance_log is not None:
            payload["provenance"] = [
                p.to_dict() for p in provenance_log.tail(self.max_events)
            ]
        if self.health is not None:
            payload["health"] = self.health.to_dict()
        if self.slo is not None:
            payload["slo"] = self.slo.status().to_dict()
            payload["lag_series"] = {
                source: [[t, lag] for t, lag in series]
                for source, series in self.slo.lag_series().items()
            }
        return payload

    def __repr__(self) -> str:
        state = "installed" if self._installed else "detached"
        return (
            f"FlightRecorder({self.directory!r}, {state}, "
            f"dumps={len(self.dumps)}, triggers={sorted(self.triggers)})"
        )
