"""A self-contained SQL lexer/parser/printer for the paper's SPJ subset.

The paper assumes "a query contains only a single SPJ expression"
(Section 3.4). This package parses exactly that subset:

* ``SELECT [DISTINCT] <select list | * | aggregates>``
* ``FROM table [alias], table [alias], ...``
* ``WHERE`` predicates built from comparisons (``= <> != < <= > >=``),
  ``[NOT] IN (value list)``, ``[NOT] BETWEEN``, ``[NOT] LIKE``,
  ``IS [NOT] NULL``, combined with ``AND`` / ``OR`` / ``NOT`` and parentheses.

Aggregates ``COUNT/SUM/AVG/MIN/MAX`` are allowed in the select list (the
paper's test queries use ``COUNT(*)``); they do not affect relevance, which
is a property of the FROM and WHERE clauses only.
"""

from repro.sqlparser.tokens import Token, TokenType
from repro.sqlparser.lexer import tokenize
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query, parse_expression
from repro.sqlparser.printer import to_sql, expr_to_sql
from repro.sqlparser.resolver import ResolvedQuery, RelationBinding, resolve

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "ast",
    "parse_query",
    "parse_expression",
    "to_sql",
    "expr_to_sql",
    "resolve",
    "ResolvedQuery",
    "RelationBinding",
]
