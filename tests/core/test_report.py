"""End-to-end recency report tests (the Section 5.1 table function)."""

import pytest

from repro.core.report import RecencyReporter, recency_report
from repro.errors import TracError

IDLE_QUERY = "SELECT mach_id, value FROM activity A WHERE value = 'idle'"


class TestReportBasics:
    def test_result_rows_match_plain_query(self, paper_backend):
        reporter = RecencyReporter(paper_backend)
        report = reporter.report(IDLE_QUERY)
        plain = paper_backend.execute(IDLE_QUERY)
        assert sorted(report.result.rows) == sorted(plain.rows)

    def test_all_sources_relevant_for_pr_only_query(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        assert report.relevant_source_ids == {f"m{i}" for i in range(1, 12)}
        assert report.minimal

    def test_focused_restricts_to_in_list(self, paper_backend):
        report = RecencyReporter(paper_backend).report(
            "SELECT mach_id FROM activity "
            "WHERE mach_id IN ('m1', 'm2') AND value = 'idle'"
        )
        assert report.relevant_source_ids == {"m1", "m2"}

    def test_naive_reports_everything(self, paper_backend):
        report = RecencyReporter(paper_backend).report(
            "SELECT mach_id FROM activity WHERE mach_id = 'm1'", method="naive"
        )
        assert len(report.relevant_source_ids) == 11
        assert not report.minimal

    def test_hardcoded_requires_plan(self, paper_backend):
        reporter = RecencyReporter(paper_backend)
        with pytest.raises(TracError):
            reporter.report(IDLE_QUERY, method="focused_hardcoded")

    def test_hardcoded_with_plan_matches_focused(self, paper_backend):
        reporter = RecencyReporter(paper_backend)
        plan = reporter.plan_for(IDLE_QUERY)
        hardcoded = reporter.report(IDLE_QUERY, method="focused_hardcoded", plan=plan)
        focused = reporter.report(IDLE_QUERY, method="focused")
        assert hardcoded.relevant_source_ids == focused.relevant_source_ids
        assert hardcoded.timings.parse_generate == 0.0

    def test_unknown_method_rejected(self, paper_backend):
        with pytest.raises(TracError):
            RecencyReporter(paper_backend).report(IDLE_QUERY, method="bogus")

    def test_convenience_function(self, paper_backend):
        report = recency_report(paper_backend, IDLE_QUERY)
        assert report.method == "focused"


class TestSection51Transcript:
    """The exact behaviours shown in the paper's interactive session."""

    def test_exceptional_source_detected(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        assert [s.source_id for s in report.exceptional_sources] == ["m2"]

    def test_least_and_most_recent(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        assert report.statistics.least_recent.source_id == "m1"
        assert report.statistics.most_recent.source_id == "m3"

    def test_bound_of_inconsistency_is_twenty_minutes(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        assert report.statistics.inconsistency_bound == pytest.approx(20 * 60.0)

    def test_normal_table_has_ten_rows(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        assert len(report.normal_sources) == 10

    def test_notices_format(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        notices = report.notices()
        assert any("Exceptional relevant data sources" in n for n in notices)
        assert any("The least recent data source: m1" in n for n in notices)
        assert any("The most recent data source: m3" in n for n in notices)
        assert any("Bound of inconsistency: 00:20:00" in n for n in notices)
        assert any('All "normal" relevant data sources' in n for n in notices)

    def test_temp_tables_queryable(self, paper_backend):
        reporter = RecencyReporter(paper_backend)
        report = reporter.report(IDLE_QUERY)
        normal = paper_backend.execute(
            f"SELECT sid FROM {report.temp_tables.normal}"
        )
        exceptional = paper_backend.execute(
            f"SELECT sid FROM {report.temp_tables.exceptional}"
        )
        assert len(normal.rows) == 10
        assert exceptional.rows == [("m2",)]

    def test_no_relevant_sources_notice(self, paper_backend):
        report = RecencyReporter(paper_backend).report(
            "SELECT mach_id FROM activity WHERE value = 'not_a_state'"
        )
        assert report.relevant_source_ids == set()
        assert any("No relevant data sources" in n for n in report.notices())


class TestTimings:
    def test_breakdown_populated(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        t = report.timings
        assert t.parse_generate > 0
        assert t.user_query > 0
        assert t.recency_query > 0
        assert t.statistics >= 0
        assert t.total >= t.parse_generate + t.user_query + t.recency_query

    def test_naive_has_no_parse_cost(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY, method="naive")
        assert report.timings.parse_generate == 0.0

    def test_run_plain(self, paper_backend):
        result = RecencyReporter(paper_backend).run_plain(IDLE_QUERY)
        assert sorted(result.rows) == sorted(paper_backend.execute(IDLE_QUERY).rows)

    def test_to_dict_mirrors_attributes(self, paper_backend):
        t = RecencyReporter(paper_backend).report(IDLE_QUERY).timings
        assert t.to_dict() == {
            "parse_generate": t.parse_generate,
            "user_query": t.user_query,
            "recency_query": t.recency_query,
            "statistics": t.statistics,
            "total": t.total,
        }

    def test_to_dict_is_json_serializable(self, paper_backend):
        import json

        t = RecencyReporter(paper_backend).report(IDLE_QUERY).timings
        round_tripped = json.loads(json.dumps(t.to_dict()))
        assert round_tripped["total"] == t.total

    def test_repr_names_every_phase(self):
        from repro.core.report import ReportTimings

        t = ReportTimings(0.001, 0.002, 0.003, 0.004, 0.011)
        text = repr(t)
        assert "parse=0.001000s" in text
        assert "user=0.002000s" in text
        assert "recency=0.003000s" in text
        assert "stats=0.004000s" in text
        assert "total=0.011000s" in text

    def test_report_telemetry_none_when_disabled(self, paper_backend):
        report = RecencyReporter(paper_backend).report(IDLE_QUERY)
        assert report.telemetry is None

    def test_report_telemetry_is_root_span_when_enabled(self, paper_backend):
        from repro import obs

        tel = obs.Telemetry()
        report = RecencyReporter(paper_backend, telemetry=tel).report(IDLE_QUERY)
        assert report.telemetry is not None
        assert report.telemetry.name == "trac.report"
        # Timings are a thin view over the same phase spans.
        children = {s.name: s for s in tel.tracer.children_of(report.telemetry)}
        assert set(children) == {
            "report.parse_generate",
            "report.user_query",
            "report.recency_query",
            "report.statistics",
        }


class TestConsistency:
    def test_report_uses_one_snapshot(self, tmp_path, paper_catalog):
        """Writes committed between the user query and the recency query
        must not be visible: both run in one snapshot."""
        from repro import SQLiteBackend

        backend = SQLiteBackend(paper_catalog, str(tmp_path / "db.sqlite"))
        backend.insert_rows("activity", [("m1", "idle", 1.0)])
        backend.upsert_heartbeat("m1", 100.0)

        writer = backend.writer_connection()
        reporter = RecencyReporter(backend, create_temp_tables=False)

        calls = {"n": 0}

        def hooked(self, sql):
            calls["n"] += 1
            result = type(self)._original_execute(self, sql)
            if calls["n"] == 1:
                # Sneak a write in right after the user query finished and
                # before the recency query runs.
                writer.execute("INSERT INTO heartbeat VALUES ('m999', 999.0)")
                writer.commit()
            return result

        from repro.backends.sqlite import _SQLiteSnapshot

        _SQLiteSnapshot._original_execute = _SQLiteSnapshot.execute
        _SQLiteSnapshot.execute = hooked
        try:
            report = reporter.report(IDLE_QUERY)
        finally:
            _SQLiteSnapshot.execute = _SQLiteSnapshot._original_execute
            del _SQLiteSnapshot._original_execute
            writer.close()

        # m999 was committed mid-report but must not appear.
        assert "m999" not in report.relevant_source_ids
        # It is visible to a fresh query afterwards.
        assert backend.heartbeat_of("m999") == 999.0
        backend.close()


class TestZThreshold:
    def test_custom_threshold_changes_split(self, paper_backend):
        strict = RecencyReporter(paper_backend, z_threshold=0.5).report(IDLE_QUERY)
        default = RecencyReporter(paper_backend).report(IDLE_QUERY)
        assert len(strict.exceptional_sources) >= len(default.exceptional_sources)


class TestReporterLifecycle:
    def test_context_manager_drops_temp_tables(self, paper_backend):
        with RecencyReporter(paper_backend) as reporter:
            reporter.report(IDLE_QUERY)
            assert len(paper_backend.list_temp_tables()) == 2
        assert paper_backend.list_temp_tables() == []

    def test_create_temp_tables_false(self, paper_backend):
        reporter = RecencyReporter(paper_backend, create_temp_tables=False)
        report = reporter.report(IDLE_QUERY)
        assert report.temp_tables is None
        assert paper_backend.list_temp_tables() == []
