"""One shard of the federated grid: a ``GridSimulator`` partition behind RPC.

A :class:`ShardServer` owns a :class:`~repro.grid.simulator.GridSimulator`
over a *disjoint* slice of the machine-id space (``machine_id_start`` gives
shard ``k`` the ids ``m{k*M+1}..m{(k+1)*M}``), steps it on a wall-clock
cadence in a background thread, and answers the federation RPC ops:

``hello`` / ``heartbeat``
    Membership and liveness: shard id, owned machines, simulated clock and
    the per-source reported recency map (the registry's health signal).
``fragment``
    The recency-report fragment: executes the coordinator's recency
    subqueries *and* guard queries verbatim inside one backend snapshot
    and returns raw ``(source, recency)`` rows plus per-guard verdicts.
    The shard never computes its own z-score split — a per-shard split
    would not compose into the global one — and never decides guard
    outcomes alone, because a guard can be satisfied by another shard's
    rows. Both decisions belong to the coordinator.
``status``
    Everything ``heartbeat`` carries plus degraded sources, durability
    acked watermarks and fault counters (the chaos harness's oracle).
``stop``
    Graceful shutdown: stop stepping, flush the WAL, final checkpoint.

With ``data_dir`` the shard reuses the :mod:`repro.durable` WAL/checkpoint
layer unchanged, so a SIGKILLed shard restarted with ``resume=True`` comes
back with every acked heartbeat intact.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core.recency_query import build_all_sources_query, subquery_sql
from repro.errors import TracError
from repro.faults.plan import FaultPlan
from repro.federation.rpc import RPCServer
from repro.grid.simulator import GridSimulator, SimulationConfig
from repro.grid.supervisor import SupervisorPolicy
from repro.obs import instrument as obs


class ShardServer:
    """Serve one grid partition's recency-report fragments over RPC.

    Parameters
    ----------
    shard_id:
        Stable name of this shard (e.g. ``"s0"``); the registry keys
        membership, breakers and fragment caches by it.
    config:
        The shard's :class:`~repro.grid.simulator.SimulationConfig`. Use
        ``machine_id_start`` to give each shard a disjoint id range.
    host / port:
        RPC bind address; ``port=0`` picks an ephemeral port.
    durability:
        An optional :class:`~repro.durable.DurabilityManager` for
        crash-safe per-shard state (WAL + checkpoints, exactly as the
        single-process simulator uses it).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`. Its ingest fault kinds
        drive the shard's supervisors as usual; its ``rpc_*`` kinds are
        injected below the RPC protocol layer on this shard's replies.
    step_interval:
        Wall seconds between simulator ticks in the stepping thread.
    """

    def __init__(
        self,
        shard_id: str,
        config: Optional[SimulationConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        durability: Optional[object] = None,
        fault_plan: Optional[FaultPlan] = None,
        supervisor_policy: Optional[SupervisorPolicy] = None,
        telemetry: Optional[object] = None,
        step_interval: float = 0.02,
    ) -> None:
        if not shard_id:
            raise TracError("shard_id must be non-empty")
        self.shard_id = shard_id
        self.telemetry = telemetry
        self.step_interval = step_interval
        self.fault_plan = fault_plan
        self.durability = durability
        self.sim = GridSimulator(
            config,
            fault_plan=fault_plan,
            supervisor_policy=supervisor_policy,
            telemetry=telemetry,
            durability=durability,
        )
        # One lock serializes simulator steps against RPC reads; fragment
        # queries additionally run inside one backend snapshot, so a reply
        # is consistent even mid-step.
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._sim_thread: Optional[threading.Thread] = None
        self.server = RPCServer(
            self._handle,
            host=host,
            port=port,
            fault_hook=self._rpc_fault,
        )
        self.host = self.server.host
        self.port = self.server.port

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ShardServer":
        self.server.start()
        self._sim_thread = threading.Thread(
            target=self._step_loop, name=f"shard-sim:{self.shard_id}", daemon=True
        )
        self._sim_thread.start()
        return self

    def _step_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                self.sim.step()
            self._stop.wait(self.step_interval)

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def close(self) -> None:
        """Graceful shutdown: drain, flush the WAL, final checkpoint.

        Safe to call twice. Ordering matters: stop the stepping thread and
        the RPC acceptor first, then take the simulator lock (which drains
        any in-flight fragment), then let the durability manager write its
        final checkpoint and sync/close the WAL.
        """
        self._stop.set()
        if self._sim_thread is not None:
            self._sim_thread.join(timeout=5.0)
            self._sim_thread = None
        self.server.stop()
        with self._lock:
            if self.durability is not None:
                self.durability.close(self.sim.now)
                self.durability = None
            self.sim.backend.close()

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- RPC ----------------------------------------------------------------

    def _rpc_fault(self, request: dict) -> Optional[str]:
        if self.fault_plan is None:
            return None
        with self._lock:
            now = self.sim.now
        return self.fault_plan.check_rpc(self.shard_id, now)

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op in ("hello", "heartbeat"):
            return self._info()
        if op == "status":
            return self._info(full=True)
        if op == "fragment":
            return self._fragment(request)
        if op == "stop":
            # Reply first (the flag only stops the step loop); the caller
            # or signal handler runs close() for the WAL/checkpoint flush.
            self._stop.set()
            return {"ok": True, "shard_id": self.shard_id, "stopping": True}
        return {"ok": False, "shard_id": self.shard_id, "error": f"unknown op {op!r}"}

    def _info(self, full: bool = False) -> dict:
        with self._lock:
            recency: Dict[str, float] = {}
            for mid, sniffer in self.sim.sniffers.items():
                reported = sniffer._reported_recency
                if reported != float("-inf"):
                    recency[mid] = reported
            doc: dict = {
                "ok": True,
                "shard_id": self.shard_id,
                "now": self.sim.now,
                "machines": list(self.sim.machine_ids),
                "recency": recency,
            }
            if full:
                doc["degraded"] = (
                    self.sim.health.degraded_sources()
                    if self.sim.health is not None
                    else []
                )
                if self.durability is not None:
                    doc["acked"] = self.durability.acked()
                    doc["durability"] = self.durability.stats()
                if self.fault_plan is not None:
                    doc["faults_injected"] = dict(self.fault_plan.injected)
        return doc

    def _fragment(self, request: dict) -> dict:
        mode = request.get("mode", "focused")
        subqueries = request.get("subqueries", [])
        tel = self.telemetry if self.telemetry is not None else obs.get_default()
        with self._lock:
            with obs.PhaseTimer(tel, "federation.fragment", shard=self.shard_id):
                results: List[List[List[object]]] = []
                guards: Dict[str, bool] = {}
                with self.sim.backend.snapshot() as snap:
                    if mode == "all":
                        rows = snap.execute(
                            subquery_sql(build_all_sources_query())
                        ).rows
                        results.append(
                            [[str(sid), float(rec)] for sid, rec in rows]
                        )
                    elif mode != "empty":
                        for sub in subqueries:
                            for guard in sub.get("guards", ()):
                                if guard not in guards:
                                    guards[guard] = bool(snap.execute(guard).rows)
                            rows = snap.execute(sub["sql"]).rows
                            results.append(
                                [
                                    [str(sid), float(rec)]
                                    for sid, rec in rows
                                    if sid is not None
                                ]
                            )
                degraded = (
                    self.sim.health.degraded_sources()
                    if self.sim.health is not None
                    else []
                )
                now = self.sim.now
        return {
            "ok": True,
            "shard_id": self.shard_id,
            "now": now,
            "mode": mode,
            "results": results,
            "guards": guards,
            "degraded": degraded,
        }

    def __repr__(self) -> str:
        return (
            f"ShardServer({self.shard_id!r}, {self.host}:{self.port}, "
            f"machines={len(self.sim.machine_ids)})"
        )
