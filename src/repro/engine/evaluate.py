"""Query execution against in-memory relations.

The executor handles the full supported dialect. Conjunctive WHERE clauses
get a lightweight plan — per-relation predicate push-down, greedy join
ordering, hash joins on equality join terms — while arbitrary boolean
WHERE clauses fall back to an (incrementally built) cross product with the
predicate applied at the end. Both paths produce identical results; the
planner only changes the work done to get there.

Two execution modes exist for predicates and projections: the *compiled*
mode (default) lowers each expression once per query to closed-over
lambdas via :mod:`repro.engine.compile`, and the *interpreted* mode walks
the AST per row via :mod:`repro.predicates.evaluate`. The interpreted mode
is the semantic oracle; ``tools/fuzz_engine.py`` differentially checks the
two (and SQLite). Select per call with ``execute_query(..., compiled=...)``
or globally with :func:`repro.engine.compile.set_compiled_default` /
``TRAC_INTERPRETED=1``.

``execute_sql`` additionally fronts parse+resolve with the process-wide
resolved-query cache (:mod:`repro.engine.cache`), so repeated SQL strings
— recency subqueries, guards, benchmark loops — skip the parser entirely.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.engine import compile as compile_mod
from repro.engine.cache import get_cache, resolve_cached
from repro.engine.profile import (
    OP_AGGREGATE,
    OP_CROSS,
    OP_FILTER,
    OP_JOIN,
    OP_LIMIT,
    OP_PROJECT,
    OP_SCAN,
    OP_SORT,
    QueryProfile,
)
from repro.engine.relation import Database, Relation, Row
from repro.errors import EngineError, UnsupportedQueryError
from repro.predicates.dnf import basic_terms_of
from repro.predicates.evaluate import evaluate_predicate
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import ResolvedQuery, resolve

#: An intermediate tuple: binding key -> source row.
_Env = Dict[str, Row]


class QueryResult:
    """Result of executing a query: column names plus rows of tuples.

    ``lineage`` is ``None`` unless the query ran with lineage enabled
    (``execute_sql(..., lineage=True)``); then it is a list parallel to
    ``rows`` of frozensets naming the data sources whose tuples produced
    each row (see :mod:`repro.engine.lineage`).
    """

    __slots__ = ("columns", "rows", "lineage")

    def __init__(
        self,
        columns: List[str],
        rows: List[Tuple[object, ...]],
        lineage: Optional[List[FrozenSet[str]]] = None,
    ) -> None:
        self.columns = columns
        self.rows = rows
        self.lineage = lineage

    def scalar(self) -> object:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise EngineError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, index: int = 0) -> List[object]:
        """All values of one output column."""
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns!r}, rows={len(self.rows)})"


def execute_sql(
    db: Database,
    sql: str,
    telemetry=None,
    compiled: Optional[bool] = None,
    cache: bool = True,
    in_snapshot: bool = False,
    lineage: bool = False,
) -> QueryResult:
    """Parse, resolve and execute a SQL string against ``db``.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, enabled) additionally
    records the scan upper bound — the total base-table rows the executor
    may read for this query — and builds a per-operator
    :class:`~repro.engine.profile.QueryProfile`, stamped with the current
    trace id and recorded into ``telemetry.profiles``; the memory backend
    threads its telemetry through here. ``in_snapshot`` marks the profile
    as snapshot-scoped.

    ``cache`` (default True) routes parse+resolve through the process-wide
    resolved-query cache; pass False for throwaway catalogs (e.g. the
    temp-table shadow database) whose generations would only pollute it.
    ``compiled`` overrides the compiled/interpreted default for this call.
    ``lineage`` (default False) attaches per-row source lineage to the
    result (:attr:`QueryResult.lineage`, see :mod:`repro.engine.lineage`);
    the disabled path never touches the lineage machinery.
    """
    profiling = telemetry is not None and telemetry.enabled
    cache_hit: Optional[bool] = None
    if cache:
        hits_before = get_cache().stats()["hits"] if profiling else 0
        resolved = resolve_cached(sql, db.catalog, telemetry, lineage=lineage)
        if profiling:
            cache_hit = get_cache().stats()["hits"] > hits_before
    else:
        resolved = resolve(parse_query(sql), db.catalog)
    if not profiling:
        return execute_query(db, resolved, compiled=compiled, lineage=lineage)

    from repro.obs import instrument as obs

    scanned = sum(
        len(db.relation(b.schema.name).rows)
        for b in resolved.bindings
        if db.has(b.schema.name)
    )
    obs.record_backend_scan(telemetry, "memory", scanned)
    profile = QueryProfile(sql)
    profile.cache_hit = cache_hit
    profile.snapshot = in_snapshot
    span = telemetry.tracer.current_span()
    if span is not None and span.trace_id:
        profile.trace_id = span.trace_id_hex
    start = time.perf_counter()
    result = execute_query(
        db, resolved, compiled=compiled, profile=profile, lineage=lineage
    )
    profile.finish(result, time.perf_counter() - start)
    telemetry.profiles.record(profile)
    return result


def execute_query(
    db: Database,
    resolved: ResolvedQuery,
    relation_override: Optional[Dict[str, Relation]] = None,
    trace: Optional[List[str]] = None,
    compiled: Optional[bool] = None,
    profile: Optional[QueryProfile] = None,
    lineage: bool = False,
) -> QueryResult:
    """Execute a resolved query.

    Parameters
    ----------
    db:
        The database providing base relations.
    resolved:
        The resolved query to run.
    relation_override:
        Optional map from *binding key* to a replacement
        :class:`Relation` — how the brute-force oracle substitutes a
        relation by the cross product of its column domains.
    trace:
        Optional list that receives plan-decision messages as execution
        proceeds (push-downs, join order, join methods) — the legacy
        string form of EXPLAIN ANALYZE.
    compiled:
        ``True`` forces the compiled predicate/projection path, ``False``
        the interpreted oracle; ``None`` (default) follows
        :func:`repro.engine.compile.compiled_default`.
    profile:
        Optional :class:`~repro.engine.profile.QueryProfile` that receives
        one structured operator record (rows in/out, wall seconds,
        selectivity) per executed plan step — the structured EXPLAIN
        ANALYZE. ``None`` (default) skips all profiling work.
    lineage:
        When True, attach per-row source lineage to the result
        (:attr:`QueryResult.lineage`); see :mod:`repro.engine.lineage`.
        The default (False) path never touches the lineage machinery.
    """
    if compiled is None:
        compiled = compile_mod.compiled_default()
    query = resolved.query
    relations: Dict[str, Relation] = {}
    for binding in resolved.bindings:
        override = (relation_override or {}).get(binding.key)
        relations[binding.key] = override if override is not None else db.relation(
            binding.schema.name
        )

    index_of = _build_index_map(resolved)
    envs = _join(resolved, relations, index_of, trace, compiled, profile)
    if query.order_by and not (query.has_aggregates or query.group_by or query.distinct):
        t0 = time.perf_counter() if profile is not None else 0.0
        envs = _sort_envs(query.order_by, envs, index_of, compiled)
        if profile is not None:
            profile.add(
                OP_SORT, "rows", len(envs), len(envs),
                time.perf_counter() - t0, "ORDER BY before projection",
            )
    t0 = time.perf_counter() if profile is not None else 0.0
    result = _project(resolved, envs, index_of, compiled, lineage)
    if profile is not None:
        op = OP_AGGREGATE if (query.has_aggregates or query.group_by) else OP_PROJECT
        detail = "aggregate/group" if op == OP_AGGREGATE else (
            "select *" if query.select_items and query.select_items[0].is_star
            else "select list"
        )
        if query.distinct:
            detail += ", distinct"
        profile.add(op, "output", len(envs), len(result.rows),
                    time.perf_counter() - t0, detail)
    if query.order_by and (query.has_aggregates or query.group_by or query.distinct):
        t0 = time.perf_counter() if profile is not None else 0.0
        _sort_rows(query, result)
        if profile is not None:
            profile.add(
                OP_SORT, "output", len(result.rows), len(result.rows),
                time.perf_counter() - t0, "ORDER BY over aggregated output",
            )
    if query.limit is not None:
        before = len(result.rows)
        result.rows = result.rows[: query.limit]
        if result.lineage is not None:
            result.lineage = result.lineage[: query.limit]
        if profile is not None:
            profile.add(OP_LIMIT, "output", before, len(result.rows), 0.0,
                        f"LIMIT {query.limit}")
    if lineage and profile is not None:
        from repro.engine.lineage import annotate_profile, lineage_plan_for

        annotate_profile(profile, lineage_plan_for(resolved), result.lineage)
    return result


def _env_predicate(
    expr: ast.Expr, index_of: Dict[Tuple[str, str], int], compiled: bool
) -> Callable[[_Env], bool]:
    """A reusable env -> bool predicate, compiled or interpreted."""
    if compiled:
        return compile_mod.compile_predicate(expr, index_of)
    return lambda env: evaluate_predicate(expr, _make_lookup(env, index_of))


def _env_scalar(
    expr: ast.Expr, index_of: Dict[Tuple[str, str], int], compiled: bool
) -> Callable[[_Env], object]:
    """A reusable env -> value getter, compiled or interpreted."""
    if compiled:
        return compile_mod.compile_scalar(expr, index_of)
    return lambda env: _scalar_value(expr, _make_lookup(env, index_of))


class _SortKey:
    """SQLite-style ordering: NULL < numbers < text; stable across types."""

    __slots__ = ("rank", "value")

    def __init__(self, value: object) -> None:
        if value is None:
            self.rank, self.value = 0, 0
        elif isinstance(value, bool):
            self.rank, self.value = 1, int(value)
        elif isinstance(value, (int, float)):
            self.rank, self.value = 1, value
        else:
            self.rank, self.value = 2, str(value)

    def __lt__(self, other: "_SortKey") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.value < other.value  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _SortKey)
            and self.rank == other.rank
            and self.value == other.value
        )


def _sort_envs(
    order_by,
    envs: List[_Env],
    index_of: Dict[Tuple[str, str], int],
    compiled: bool = False,
) -> List[_Env]:
    # Stable sorts applied minor-key-first honor mixed ASC/DESC directions.
    out = list(envs)
    for item in reversed(order_by):
        getter = _env_scalar(item.expr, index_of, compiled)

        def key(env, getter=getter):
            return _SortKey(getter(env))

        out.sort(key=key, reverse=item.descending)
    return out


def _sort_rows(query: ast.Query, result: QueryResult) -> None:
    """ORDER BY over aggregated/distinct output: keys must name output
    columns (alias or plain column name)."""
    lowered = [c.lower() for c in result.columns]
    indexes: List[Tuple[int, bool]] = []
    for item in query.order_by:
        if not isinstance(item.expr, ast.ColumnRef):
            raise EngineError("ORDER BY supports column references only")
        name = item.expr.name.lower()
        if name not in lowered:
            raise EngineError(
                f"ORDER BY column {item.expr.display()!r} must appear in the "
                "select list of an aggregated or DISTINCT query"
            )
        indexes.append((lowered.index(name), item.descending))
    if result.lineage is not None:
        # Lineage is positional: co-sort it with the rows it annotates.
        paired = list(zip(result.rows, result.lineage))
        for index, descending in reversed(indexes):
            paired.sort(key=lambda pair: _SortKey(pair[0][index]), reverse=descending)
        result.rows = [row for row, _ in paired]
        result.lineage = [lin for _, lin in paired]
        return
    for index, descending in reversed(indexes):
        result.rows.sort(key=lambda row: _SortKey(row[index]), reverse=descending)


# ---------------------------------------------------------------------------
# Join pipeline
# ---------------------------------------------------------------------------


def _build_index_map(resolved: ResolvedQuery) -> Dict[Tuple[str, str], int]:
    index_of: Dict[Tuple[str, str], int] = {}
    for binding in resolved.bindings:
        for i, column in enumerate(binding.schema.columns):
            index_of[(binding.key, column.name.lower())] = i
    return index_of


def _make_lookup(env: _Env, index_of: Dict[Tuple[str, str], int]) -> Callable[[ast.ColumnRef], object]:
    def lookup(ref: ast.ColumnRef) -> object:
        if ref.binding_key is None:
            raise EngineError(f"unresolved column {ref.display()!r}")
        return env[ref.binding_key][index_of[(ref.binding_key, ref.name.lower())]]

    return lookup


def _term_keys(term: ast.Expr) -> Set[str]:
    keys: Set[str] = set()
    for ref in ast.column_refs(term):
        if ref.binding_key is None:
            raise EngineError(f"unresolved column {ref.display()!r}")
        keys.add(ref.binding_key)
    return keys


def _join(
    resolved: ResolvedQuery,
    relations: Dict[str, Relation],
    index_of: Dict[Tuple[str, str], int],
    trace: Optional[List[str]] = None,
    compiled: bool = False,
    profile: Optional[QueryProfile] = None,
) -> List[_Env]:
    where = resolved.query.where
    conjunctive_terms: Optional[List[ast.Expr]] = None
    if where is None:
        conjunctive_terms = []
    else:
        try:
            conjunctive_terms = basic_terms_of(where)
        except UnsupportedQueryError:
            conjunctive_terms = None

    if conjunctive_terms is not None:
        if trace is not None:
            trace.append("plan: conjunctive (push-down + ordered joins)")
        return _join_conjunctive(
            resolved, relations, index_of, conjunctive_terms, trace, compiled, profile
        )
    if trace is not None:
        trace.append("plan: general boolean (filtered cross product)")
    return _join_general(resolved, relations, index_of, where, compiled, profile)


def _join_general(
    resolved: ResolvedQuery,
    relations: Dict[str, Relation],
    index_of: Dict[Tuple[str, str], int],
    where: Optional[ast.Expr],
    compiled: bool = False,
    profile: Optional[QueryProfile] = None,
) -> List[_Env]:
    keys = [b.key for b in resolved.bindings]
    t0 = time.perf_counter() if profile is not None else 0.0
    predicate = None if where is None else _env_predicate(where, index_of, compiled)
    out: List[_Env] = []
    for combo in itertools.product(*(relations[k].rows for k in keys)):
        env = dict(zip(keys, combo))
        if predicate is None or predicate(env):
            out.append(env)
    if profile is not None:
        combos = 1
        for k in keys:
            combos *= len(relations[k].rows)
        detail = "filtered cross product" if predicate is not None else "cross product"
        profile.add(OP_CROSS, " x ".join(keys), combos, len(out),
                    time.perf_counter() - t0, detail)
    return out


def _join_conjunctive(
    resolved: ResolvedQuery,
    relations: Dict[str, Relation],
    index_of: Dict[Tuple[str, str], int],
    terms: List[ast.Expr],
    trace: Optional[List[str]] = None,
    compiled: bool = False,
    profile: Optional[QueryProfile] = None,
) -> List[_Env]:
    keys = [b.key for b in resolved.bindings]

    # Push single-relation (and constant) terms down to base scans.
    selection: Dict[str, List[ast.Expr]] = {k: [] for k in keys}
    multi_terms: List[ast.Expr] = []
    constant_terms: List[ast.Expr] = []
    for term in terms:
        term_keys = _term_keys(term)
        if not term_keys:
            constant_terms.append(term)
        elif len(term_keys) == 1:
            selection[next(iter(term_keys))].append(term)
        else:
            multi_terms.append(term)

    # A constant contradiction empties the result outright.
    for term in constant_terms:
        if not _env_predicate(term, index_of, compiled)({}):
            if profile is not None:
                profile.add(OP_FILTER, "constant", 0, 0, 0.0,
                            "constant contradiction, result empty")
            return []

    filtered: Dict[str, List[Row]] = {}
    for key in keys:
        rows = relations[key].rows
        preds = selection[key]
        t0 = time.perf_counter() if profile is not None else 0.0
        if preds:
            conj = ast.And(preds) if len(preds) > 1 else preds[0]
            if compiled:
                # Compiled push-down takes the row tuple directly: column
                # indexes are resolved once and no per-row env is built.
                row_pred = compile_mod.compile_row_predicate(conj, key, index_of)
                kept = [row for row in rows if row_pred(row)]
            else:
                kept = []
                for row in rows:
                    env = {key: row}
                    if evaluate_predicate(conj, _make_lookup(env, index_of)):
                        kept.append(row)
            filtered[key] = kept
            if trace is not None:
                trace.append(
                    f"scan {key}: {len(preds)} pushed predicate(s), "
                    f"{len(rows)} -> {len(kept)} rows"
                )
            if profile is not None:
                profile.add(OP_SCAN, key, len(rows), len(kept),
                            time.perf_counter() - t0,
                            f"{len(preds)} pushed predicate(s)")
        else:
            filtered[key] = list(rows)
            if trace is not None:
                trace.append(f"scan {key}: full ({len(rows)} rows)")
            if profile is not None:
                profile.add(OP_SCAN, key, len(rows), len(rows),
                            time.perf_counter() - t0, "full scan")

    # Greedy join order: start with the smallest filtered relation, then
    # repeatedly add the relation connected by an applicable term (preferring
    # hash-joinable equality terms), falling back to the smallest remaining.
    remaining = set(keys)
    start = min(remaining, key=lambda k: len(filtered[k]))
    remaining.discard(start)
    current_keys: Set[str] = {start}
    envs: List[_Env] = [{start: row} for row in filtered[start]]
    pending = list(multi_terms)
    if trace is not None and len(keys) > 1:
        trace.append(f"join order starts at {start} ({len(envs)} rows)")

    while remaining:
        next_key, equi_terms = _pick_next(current_keys, remaining, pending, filtered)
        remaining.discard(next_key)
        t0 = time.perf_counter() if profile is not None else 0.0
        envs_in = len(envs)
        envs = _join_step(envs, next_key, filtered[next_key], equi_terms, index_of)
        current_keys.add(next_key)
        method = f"hash join on {len(equi_terms)} key(s)" if equi_terms else "nested loop"
        if trace is not None:
            trace.append(f"join {next_key}: {method} -> {len(envs)} rows")
        if profile is not None:
            profile.add(OP_JOIN, next_key, envs_in, len(envs),
                        time.perf_counter() - t0,
                        f"{method}, build side {len(filtered[next_key])} rows")
        # Apply every pending term that is now fully bound.
        applicable = [t for t in pending if _term_keys(t) <= current_keys]
        if applicable:
            pending = [t for t in pending if t not in applicable]
            t0 = time.perf_counter() if profile is not None else 0.0
            before = len(envs)
            conj = ast.And(applicable) if len(applicable) > 1 else applicable[0]
            residual = _env_predicate(conj, index_of, compiled)
            envs = [env for env in envs if residual(env)]
            if profile is not None:
                profile.add(OP_FILTER, next_key, before, len(envs),
                            time.perf_counter() - t0,
                            f"{len(applicable)} residual term(s)")
        if not envs:
            return []

    if pending:
        t0 = time.perf_counter() if profile is not None else 0.0
        before = len(envs)
        conj = ast.And(pending) if len(pending) > 1 else pending[0]
        residual = _env_predicate(conj, index_of, compiled)
        envs = [env for env in envs if residual(env)]
        if profile is not None:
            profile.add(OP_FILTER, "residual", before, len(envs),
                        time.perf_counter() - t0,
                        f"{len(pending)} residual term(s)")
    return envs


def _pick_next(
    current_keys: Set[str],
    remaining: Set[str],
    pending: List[ast.Expr],
    filtered: Dict[str, List[Row]],
) -> Tuple[str, List[ast.Comparison]]:
    """Choose the next relation to join and the equality terms usable for a
    hash join against the current intermediate."""
    best: Optional[str] = None
    best_terms: List[ast.Comparison] = []
    for key in remaining:
        equi = _equi_terms(current_keys, key, pending)
        if equi and (best is None or len(filtered[key]) < len(filtered[best])):
            best = key
            best_terms = equi
    if best is not None:
        return best, best_terms
    # No connecting equality term: smallest remaining relation, cross join.
    fallback = min(remaining, key=lambda k: len(filtered[k]))
    return fallback, []


def _equi_terms(
    current_keys: Set[str], candidate: str, pending: List[ast.Expr]
) -> List[ast.Comparison]:
    out: List[ast.Comparison] = []
    for term in pending:
        if not isinstance(term, ast.Comparison) or term.op != "=":
            continue
        if not isinstance(term.left, ast.ColumnRef) or not isinstance(term.right, ast.ColumnRef):
            continue
        left_key, right_key = term.left.binding_key, term.right.binding_key
        if left_key == candidate and right_key in current_keys:
            out.append(term)
        elif right_key == candidate and left_key in current_keys:
            out.append(term)
    return out


def _join_step(
    envs: List[_Env],
    key: str,
    rows: List[Row],
    equi_terms: List[ast.Comparison],
    index_of: Dict[Tuple[str, str], int],
) -> List[_Env]:
    if not equi_terms:
        return [dict(env, **{key: row}) for env in envs for row in rows]

    # Hash join: build on the new relation, probe with the intermediate.
    new_side: List[ast.ColumnRef] = []
    old_side: List[ast.ColumnRef] = []
    for term in equi_terms:
        if term.left.binding_key == key:  # type: ignore[union-attr]
            new_side.append(term.left)  # type: ignore[arg-type]
            old_side.append(term.right)  # type: ignore[arg-type]
        else:
            new_side.append(term.right)  # type: ignore[arg-type]
            old_side.append(term.left)  # type: ignore[arg-type]

    new_indexes = [index_of[(key, ref.name.lower())] for ref in new_side]
    table: Dict[Tuple[object, ...], List[Row]] = {}
    for row in rows:
        hash_key = tuple(row[i] for i in new_indexes)
        if any(v is None for v in hash_key):
            continue  # NULL never joins
        table.setdefault(hash_key, []).append(row)

    # Probe-side (binding key, column index) pairs are resolved once, not
    # per intermediate tuple.
    old_indexes = [
        (ref.binding_key, index_of[(ref.binding_key, ref.name.lower())])
        for ref in old_side
    ]
    out: List[_Env] = []
    for env in envs:
        probe = tuple(env[k][i] for k, i in old_indexes)
        if any(v is None for v in probe):
            continue
        for row in table.get(probe, ()):  # type: ignore[arg-type]
            merged = dict(env)
            merged[key] = row
            out.append(merged)
    return out


# ---------------------------------------------------------------------------
# Projection and aggregation
# ---------------------------------------------------------------------------


def _project(
    resolved: ResolvedQuery,
    envs: List[_Env],
    index_of: Dict[Tuple[str, str], int],
    compiled: bool = False,
    lineage: bool = False,
) -> QueryResult:
    query = resolved.query

    if query.select_items and query.select_items[0].is_star:
        return _project_star(resolved, envs, lineage)

    if query.has_aggregates or query.group_by:
        return _project_aggregates(resolved, envs, index_of, compiled, lineage)

    columns = [_output_name(item) for item in query.select_items]
    rows: List[Tuple[object, ...]] = []
    if compiled:
        project_row = compile_mod.compile_projection(
            [item.expr for item in query.select_items], index_of
        )
        rows = [project_row(env) for env in envs]
    else:
        for env in envs:
            lookup = _make_lookup(env, index_of)
            rows.append(
                tuple(_scalar_value(item.expr, lookup) for item in query.select_items)  # type: ignore[arg-type]
            )
    lineages = _env_lineages(resolved, envs) if lineage else None
    if query.distinct:
        if lineages is not None:
            rows, lineages = _distinct_with_lineage(rows, lineages)
        else:
            rows = _distinct(rows)
    return QueryResult(columns, rows, lineages)


def _scalar_value(expr: ast.Expr, lookup: Callable[[ast.ColumnRef], object]) -> object:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return lookup(expr)
    raise EngineError(f"cannot project expression {expr!r}")


def _project_star(
    resolved: ResolvedQuery, envs: List[_Env], lineage: bool = False
) -> QueryResult:
    columns: List[str] = []
    for binding in resolved.bindings:
        prefix = f"{binding.key}." if len(resolved.bindings) > 1 else ""
        columns.extend(f"{prefix}{c.name}" for c in binding.schema.columns)
    rows: List[Tuple[object, ...]] = []
    for env in envs:
        row: List[object] = []
        for binding in resolved.bindings:
            row.extend(env[binding.key])
        rows.append(tuple(row))
    lineages = _env_lineages(resolved, envs) if lineage else None
    if resolved.query.distinct:
        if lineages is not None:
            rows, lineages = _distinct_with_lineage(rows, lineages)
        else:
            rows = _distinct(rows)
    return QueryResult(columns, rows, lineages)


def _project_aggregates(
    resolved: ResolvedQuery,
    envs: List[_Env],
    index_of: Dict[Tuple[str, str], int],
    compiled: bool = False,
    lineage: bool = False,
) -> QueryResult:
    query = resolved.query
    group_exprs = list(query.group_by)

    plain_items = [
        item
        for item in query.select_items
        if not isinstance(item.expr, (ast.AggregateCall, ast.Literal))
    ]
    for item in plain_items:
        if item.expr not in group_exprs:
            raise EngineError(
                f"column {_output_name(item)!r} must appear in GROUP BY "
                "when aggregates are present"
            )

    group_getters = [_env_scalar(e, index_of, compiled) for e in group_exprs]
    groups: Dict[Tuple[object, ...], List[_Env]] = {}
    order: List[Tuple[object, ...]] = []
    for env in envs:
        group_key = tuple(getter(env) for getter in group_getters)
        if group_key not in groups:
            groups[group_key] = []
            order.append(group_key)
        groups[group_key].append(env)

    if not group_exprs and not groups:
        # Aggregates over an empty input produce a single row.
        groups[()] = []
        order.append(())

    columns = [_output_name(item) for item in query.select_items]
    probes = None
    if lineage:
        from repro.engine.lineage import env_lineage, lineage_plan_for, union_lineage

        probes = lineage_plan_for(resolved).probes
    rows: List[Tuple[object, ...]] = []
    lineages: Optional[List[FrozenSet[str]]] = [] if lineage else None
    for group_key in order:
        member_envs = groups[group_key]
        out_row: List[object] = []
        for item in query.select_items:
            expr = item.expr
            if isinstance(expr, ast.AggregateCall):
                out_row.append(_aggregate(expr, member_envs, index_of, compiled))
            elif isinstance(expr, ast.Literal):
                out_row.append(expr.value)
            else:
                out_row.append(group_key[group_exprs.index(expr)])  # type: ignore[arg-type]
        rows.append(tuple(out_row))
        if lineages is not None:
            # An aggregate row derives from every member of its group.
            lineages.append(
                union_lineage(env_lineage(env, probes) for env in member_envs)
            )
    if query.distinct:
        if lineages is not None:
            rows, lineages = _distinct_with_lineage(rows, lineages)
        else:
            rows = _distinct(rows)
    return QueryResult(columns, rows, lineages)


def _aggregate(
    call: ast.AggregateCall,
    envs: List[_Env],
    index_of: Dict[Tuple[str, str], int],
    compiled: bool = False,
) -> object:
    if call.argument is None:  # COUNT(*)
        return len(envs)
    getter = _env_scalar(call.argument, index_of, compiled)
    values: List[object] = []
    for env in envs:
        value = getter(env)
        if value is not None:
            values.append(value)
    if call.distinct:
        values = list(dict.fromkeys(values))
    if call.func == "COUNT":
        return len(values)
    if not values:
        return None
    if call.func == "SUM":
        return sum(_require_number(v) for v in values)
    if call.func == "AVG":
        return sum(_require_number(v) for v in values) / len(values)
    if call.func == "MIN":
        return min(values)  # type: ignore[type-var]
    if call.func == "MAX":
        return max(values)  # type: ignore[type-var]
    raise EngineError(f"unknown aggregate {call.func!r}")


def _require_number(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EngineError(f"SUM/AVG over non-numeric value {value!r}")
    return value


def _output_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.Literal):
        return str(expr.value)
    if isinstance(expr, ast.AggregateCall):
        if expr.argument is None:
            return f"{expr.func}(*)"
        return f"{expr.func}({expr.argument.display()})"  # type: ignore[union-attr]
    return repr(expr)


def _distinct(rows: List[Tuple[object, ...]]) -> List[Tuple[object, ...]]:
    seen: Set[Tuple[object, ...]] = set()
    out: List[Tuple[object, ...]] = []
    for row in rows:
        if row in seen:
            continue
        seen.add(row)
        out.append(row)
    return out


def _env_lineages(
    resolved: ResolvedQuery, envs: List[_Env]
) -> List[FrozenSet[str]]:
    from repro.engine.lineage import env_lineage, lineage_plan_for

    probes = lineage_plan_for(resolved).probes
    return [env_lineage(env, probes) for env in envs]


def _distinct_with_lineage(
    rows: List[Tuple[object, ...]], lineages: List[FrozenSet[str]]
) -> Tuple[List[Tuple[object, ...]], List[FrozenSet[str]]]:
    """DISTINCT that unions the lineages of the duplicates it collapses."""
    position: Dict[Tuple[object, ...], int] = {}
    out_rows: List[Tuple[object, ...]] = []
    merged: List[Set[str]] = []
    for row, lineage in zip(rows, lineages):
        at = position.get(row)
        if at is None:
            position[row] = len(out_rows)
            out_rows.append(row)
            merged.append(set(lineage))
        else:
            merged[at] |= lineage
    return out_rows, [frozenset(s) for s in merged]
