"""Domain abstraction tests."""

import pytest

from repro.catalog.domains import (
    FiniteDomain,
    IntegerDomain,
    RealDomain,
    TextDomain,
    TimestampDomain,
)
from repro.errors import DomainError


class TestFiniteDomain:
    def test_contains(self):
        d = FiniteDomain({"a", "b"})
        assert d.contains("a")
        assert not d.contains("c")

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            FiniteDomain([])

    def test_iter_values_deterministic(self):
        d = FiniteDomain({"b", "a", "c"})
        assert list(d.iter_values()) == list(d.iter_values())

    def test_cardinality(self):
        assert FiniteDomain({1, 2, 3}).cardinality() == 3

    def test_is_finite(self):
        assert FiniteDomain({1}).is_finite

    def test_interval_intersection(self):
        d = FiniteDomain({1, 5, 9})
        assert d.intersects_interval(4, 6)
        assert not d.intersects_interval(2, 4)
        assert d.intersects_interval(None, 2)
        assert d.intersects_interval(9, 9)
        assert not d.intersects_interval(9, 9, high_inclusive=False)

    def test_mixed_type_values_skip_comparison(self):
        d = FiniteDomain({"x", 5})
        assert d.intersects_interval(1, 10)

    def test_equality_and_hash(self):
        assert FiniteDomain({1, 2}) == FiniteDomain({2, 1})
        assert hash(FiniteDomain({1, 2})) == hash(FiniteDomain({2, 1}))
        assert FiniteDomain({1}) != FiniteDomain({2})


class TestIntegerDomain:
    def test_contains_integers_only(self):
        d = IntegerDomain()
        assert d.contains(5)
        assert not d.contains(5.5)
        assert not d.contains("5")
        assert not d.contains(True)

    def test_bounds(self):
        d = IntegerDomain(0, 10)
        assert d.contains(0)
        assert d.contains(10)
        assert not d.contains(-1)
        assert not d.contains(11)

    def test_bounded_is_finite(self):
        assert IntegerDomain(0, 10).is_finite
        assert not IntegerDomain().is_finite

    def test_bounded_enumeration(self):
        assert list(IntegerDomain(1, 3).iter_values()) == [1, 2, 3]

    def test_unbounded_not_enumerable(self):
        with pytest.raises(DomainError):
            list(IntegerDomain().iter_values())

    def test_cardinality(self):
        assert IntegerDomain(0, 9).cardinality() == 10
        assert IntegerDomain().cardinality() is None

    def test_invalid_bounds(self):
        with pytest.raises(DomainError):
            IntegerDomain(5, 1)

    def test_interval_tightening_open_real_bounds(self):
        d = IntegerDomain()
        # (3, 4) contains no integer.
        assert not d.intersects_interval(3, 4, low_inclusive=False, high_inclusive=False)
        # (2.5, 3.5) contains 3.
        assert d.intersects_interval(2.5, 3.5, low_inclusive=False, high_inclusive=False)

    def test_interval_with_domain_bounds(self):
        d = IntegerDomain(0, 10)
        assert not d.intersects_interval(11, None)
        assert d.intersects_interval(10, None)


class TestRealDomain:
    def test_contains(self):
        d = RealDomain()
        assert d.contains(1.5)
        assert d.contains(2)
        assert not d.contains("x")
        assert not d.contains(False)

    def test_open_interval_nonempty(self):
        assert RealDomain().intersects_interval(3, 4, False, False)

    def test_point_interval(self):
        d = RealDomain()
        assert d.intersects_interval(3, 3)
        assert not d.intersects_interval(3, 3, low_inclusive=False)

    def test_clipping_by_domain(self):
        d = RealDomain(0.0, 1.0)
        assert not d.intersects_interval(2.0, 3.0)
        assert d.intersects_interval(0.5, 3.0)


class TestTextDomain:
    def test_contains_strings_only(self):
        d = TextDomain()
        assert d.contains("x")
        assert not d.contains(1)

    def test_intervals(self):
        d = TextDomain()
        assert d.intersects_interval("a", "b")
        assert not d.intersects_interval("b", "a")
        assert d.intersects_interval("a", "a")
        assert not d.intersects_interval("a", "a", high_inclusive=False)
        assert d.intersects_interval(None, "a")


class TestTimestampDomain:
    def test_contains_numbers(self):
        d = TimestampDomain()
        assert d.contains(1_142_368_000.0)
        assert d.contains(0)
        assert not d.contains("2006-03-15")

    def test_intervals(self):
        d = TimestampDomain()
        assert d.intersects_interval(0.0, 10.0)
        assert not d.intersects_interval(10.0, 0.0)
