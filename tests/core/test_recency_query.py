"""Unit tests for recency-subquery construction (rewrites, connected
components, guards) — the machinery behind Theorems 3/4's SQL."""

from repro.core.recency_query import (
    HEARTBEAT_ALIAS,
    build_all_sources_query,
    build_subquery,
    heartbeat_alias_for,
    rewrite_term,
    subquery_sql,
)
from repro.predicates.dnf import basic_terms_of
from repro.sqlparser.parser import parse_query
from repro.sqlparser.printer import expr_to_sql, to_sql
from repro.sqlparser.resolver import resolve


def resolved_q2(paper_catalog):
    return resolve(
        parse_query(
            "SELECT A.mach_id FROM routing R, activity A "
            "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
            "AND R.neighbor = A.mach_id"
        ),
        paper_catalog,
    )


class TestHeartbeatAlias:
    def test_default_alias(self, paper_catalog):
        resolved = resolved_q2(paper_catalog)
        assert heartbeat_alias_for(resolved) == HEARTBEAT_ALIAS

    def test_alias_collision_avoided(self, paper_catalog):
        resolved = resolve(
            parse_query("SELECT trac_h.mach_id FROM activity trac_h"), paper_catalog
        )
        alias = heartbeat_alias_for(resolved)
        assert alias != "trac_h"
        assert alias.startswith("trac_h")


class TestRewriteTerm:
    def test_source_ref_redirected_to_heartbeat(self, paper_catalog):
        resolved = resolved_q2(paper_catalog)
        term = basic_terms_of(resolved.query.where)[0]  # R.mach_id = 'm1'
        rewritten = rewrite_term(term, "r", "trac_h")
        assert expr_to_sql(rewritten) == "trac_h.source_id = 'm1'"

    def test_other_relations_requalified(self, paper_catalog):
        resolved = resolved_q2(paper_catalog)
        term = basic_terms_of(resolved.query.where)[1]  # A.value = 'idle'
        rewritten = rewrite_term(term, "r", "trac_h")
        assert expr_to_sql(rewritten) == "a.value = 'idle'"

    def test_join_term_via_each_side(self, paper_catalog):
        resolved = resolved_q2(paper_catalog)
        join_term = basic_terms_of(resolved.query.where)[2]  # R.neighbor = A.mach_id
        via_a = rewrite_term(join_term, "a", "trac_h")
        assert expr_to_sql(via_a) == "r.neighbor = trac_h.source_id"
        via_r = rewrite_term(join_term, "r", "trac_h")
        # R.neighbor is a regular column: not redirected via R.
        assert expr_to_sql(via_r) == "r.neighbor = a.mach_id"

    def test_original_tree_untouched(self, paper_catalog):
        resolved = resolved_q2(paper_catalog)
        term = basic_terms_of(resolved.query.where)[0]
        before = expr_to_sql(term)
        rewrite_term(term, "r", "trac_h")
        assert expr_to_sql(term) == before

    def test_all_node_types_rewritable(self, paper_catalog):
        resolved = resolve(
            parse_query(
                "SELECT mach_id FROM activity WHERE mach_id IN ('m1') "
                "AND mach_id BETWEEN 'a' AND 'z' AND mach_id LIKE 'm%' "
                "AND mach_id IS NOT NULL AND NOT (mach_id = 'm9' OR mach_id < 'a')"
            ),
            paper_catalog,
        )
        rewritten = rewrite_term(resolved.query.where, "activity", "trac_h")
        text = expr_to_sql(rewritten)
        assert "mach_id" not in text
        assert text.count("trac_h.source_id") >= 5


class TestBuildSubquery:
    def test_single_relation_shape(self, paper_catalog):
        resolved = resolve(
            parse_query("SELECT mach_id FROM activity WHERE mach_id = 'm1'"),
            paper_catalog,
        )
        binding = resolved.bindings[0]
        terms = basic_terms_of(resolved.query.where)
        query, guards = build_subquery(resolved, binding, terms, "trac_h")
        assert to_sql(query) == (
            "SELECT trac_h.source_id, trac_h.recency FROM heartbeat trac_h "
            "WHERE trac_h.source_id = 'm1'"
        )
        assert guards == []

    def test_connected_relation_joins_in(self, paper_catalog):
        resolved = resolved_q2(paper_catalog)
        binding = resolved.binding("a")
        terms = basic_terms_of(resolved.query.where)
        # Via A: keep Ps(a)=none, Js = join, Po = R.mach_id='m1'.
        retained = [terms[0], terms[2]]
        query, guards = build_subquery(resolved, binding, retained, "trac_h")
        sql = to_sql(query)
        assert "routing r" in sql
        assert "DISTINCT" in sql  # joins can duplicate
        assert guards == []

    def test_unconnected_component_becomes_guard(self, paper_catalog):
        resolved = resolved_q2(paper_catalog)
        binding = resolved.binding("r")
        terms = basic_terms_of(resolved.query.where)
        retained = [terms[0], terms[1]]  # Ps(r) + Po(a); Jrm dropped
        query, guards = build_subquery(resolved, binding, retained, "trac_h")
        sql = to_sql(query)
        assert "activity" not in sql  # factored out
        assert guards == ["SELECT 1 FROM activity a WHERE a.value = 'idle' LIMIT 1"]

    def test_unreferenced_relation_bare_guard(self, paper_catalog):
        resolved = resolve(
            parse_query(
                "SELECT A.mach_id FROM activity A, routing R WHERE A.mach_id = 'm1'"
            ),
            paper_catalog,
        )
        query, guards = build_subquery(
            resolved,
            resolved.binding("a"),
            basic_terms_of(resolved.query.where),
            "trac_h",
        )
        assert guards == ["SELECT 1 FROM routing r LIMIT 1"]

    def test_no_terms_all_sources(self, paper_catalog):
        resolved = resolve(parse_query("SELECT mach_id FROM activity"), paper_catalog)
        query, guards = build_subquery(resolved, resolved.bindings[0], [], "trac_h")
        assert to_sql(query) == (
            "SELECT trac_h.source_id, trac_h.recency FROM heartbeat trac_h"
        )
        assert guards == []

    def test_three_relation_components(self, paper_catalog):
        from repro.catalog import Column, FiniteDomain, TableSchema

        paper_catalog.add(
            TableSchema(
                "load",
                [
                    Column("mach_id", "TEXT", FiniteDomain({"m1"})),
                    Column("cpu", "REAL"),
                ],
                source_column="mach_id",
            )
        )
        resolved = resolve(
            parse_query(
                "SELECT A.mach_id FROM activity A, routing R, load L "
                "WHERE R.neighbor = A.mach_id AND L.cpu > 0.5"
            ),
            paper_catalog,
        )
        # Via A: Js links heartbeat<->routing; load's predicate is its own
        # component -> a guard.
        terms = basic_terms_of(resolved.query.where)
        query, guards = build_subquery(resolved, resolved.binding("a"), terms, "trac_h")
        sql = to_sql(query)
        assert "routing r" in sql
        assert "load" not in sql
        assert guards == ["SELECT 1 FROM load l WHERE l.cpu > 0.5 LIMIT 1"]


class TestAllSourcesQuery:
    def test_shape(self):
        assert subquery_sql(build_all_sources_query()) == (
            "SELECT source_id, recency FROM heartbeat"
        )
