"""Series builders for every figure/table of the paper's evaluation.

* :func:`figure1_series` — Figure 1: response-time overhead of the Focused,
  Focused-hardcoded and Naive methods for Q1–Q4 across the
  ``data_ratio x num_sources = total`` sweep;
* :func:`figure2_series` — Figure 2: absolute response times for the
  selective queries Q1 and Q3 with and without recency reporting;
* :func:`fpr_results` — the false-positive-rate numbers at the end of
  Section 5.2: measured exactly against the brute-force oracle at a small
  scale, plus the paper-scale closed forms.

Run as a script::

    python -m repro.bench.figures fig1 --total-rows 200000 --runs 5
    python -m repro.bench.figures fig2
    python -m repro.bench.figures fpr
    python -m repro.bench.figures all --csv-dir results/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.backends.base import Backend
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SQLiteBackend
from repro.bench.harness import measure_methods, time_call
from repro.bench.metrics import false_positive_rate, naive_fpr
from repro.bench.reporting import (
    ascii_chart,
    ascii_table,
    rows_from_dicts,
    write_csv,
    write_json,
)
from repro.core.bruteforce import brute_force_relevant_sources
from repro.core.report import RecencyReporter
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve
from repro.workload.generator import generate_workload, load_workload, workload_catalog
from repro.workload.queries import paper_queries, query_machine_indexes
from repro.workload.sweep import SweepConfig, sweep_points

#: Default Activity row total for the sweep (the paper used 10,000,000).
DEFAULT_TOTAL_ROWS = 200_000

_BACKENDS: Dict[str, Callable] = {
    "sqlite": lambda catalog: SQLiteBackend(catalog),
    "memory": lambda catalog: MemoryBackend(catalog),
}


def _loaded_backend(config, backend_kind: str) -> Backend:
    catalog = workload_catalog(config.num_sources)
    backend = _BACKENDS[backend_kind](catalog)
    data = generate_workload(config, query_machine_indexes(config.num_sources))
    load_workload(backend, data)
    return backend


def figure1_series(
    total_rows: int = DEFAULT_TOTAL_ROWS,
    runs: int = 5,
    backend_kind: str = "sqlite",
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Rows of Figure 1: one record per (query, sweep point, method)."""
    say = progress or (lambda message: None)
    records: List[Dict[str, object]] = []
    for config in sweep_points(SweepConfig(total_rows=total_rows)):
        say(f"fig1: ratio={config.data_ratio} sources={config.num_sources}")
        backend = _loaded_backend(config, backend_kind)
        reporter = RecencyReporter(backend, create_temp_tables=False)
        queries = paper_queries(config.num_sources)
        for name, sql in queries.items():
            measurements = measure_methods(reporter, sql, runs=runs)
            for method, m in measurements.items():
                record = {
                    "query": name,
                    "data_ratio": config.data_ratio,
                    "num_sources": config.num_sources,
                    "method": method,
                    "t_plain_s": m.t_plain,
                    "t_report_s": m.t_report,
                    "overhead_pct": 100.0 * m.overhead,
                    "relevant_sources": m.relevant_count,
                }
                for phase, seconds in sorted(m.phases.items()):
                    record[f"phase_{phase.split('.', 1)[-1]}_s"] = seconds
                for cache, count in sorted(m.caches.items()):
                    record[f"cache_{cache}"] = count
                records.append(record)
        backend.close()
    return records


def figure2_series(
    total_rows: int = DEFAULT_TOTAL_ROWS,
    runs: int = 5,
    backend_kind: str = "sqlite",
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Rows of Figure 2: absolute response times for Q1 and Q3, with and
    without the (auto-generated, Focused) recency report."""
    say = progress or (lambda message: None)
    records: List[Dict[str, object]] = []
    for config in sweep_points(SweepConfig(total_rows=total_rows)):
        say(f"fig2: ratio={config.data_ratio} sources={config.num_sources}")
        backend = _loaded_backend(config, backend_kind)
        reporter = RecencyReporter(backend, create_temp_tables=False)
        queries = paper_queries(config.num_sources)
        for name in ("Q1", "Q3"):
            sql = queries[name]
            t_without = time_call(lambda: reporter.run_plain(sql), runs)
            t_with = time_call(lambda: reporter.report(sql, method="focused"), runs)
            records.append(
                {
                    "query": name,
                    "data_ratio": config.data_ratio,
                    "num_sources": config.num_sources,
                    "without_report_s": t_without,
                    "with_report_s": t_with,
                }
            )
        backend.close()
    return records


def fpr_results(
    num_sources: int = 200,
    data_ratio: int = 10,
    paper_sources: int = 100_000,
) -> List[Dict[str, object]]:
    """The fpr table: measured (brute-force ground truth) at a small scale
    plus the paper-scale closed forms.

    The measured part uses the memory backend because the brute-force
    oracle runs on the mini engine; the Focused sets come from the full
    reporting pipeline, so this is an end-to-end precision check.
    """
    config_catalog = workload_catalog(num_sources)
    backend = MemoryBackend(config_catalog)
    from repro.workload.generator import WorkloadConfig

    data = generate_workload(
        WorkloadConfig(num_sources=num_sources, data_ratio=data_ratio),
        query_machine_indexes(num_sources),
    )
    load_workload(backend, data)
    reporter = RecencyReporter(backend, create_temp_tables=False)

    records: List[Dict[str, object]] = []
    for name, sql in paper_queries(num_sources).items():
        resolved = resolve(parse_query(sql), backend.catalog)
        exact = brute_force_relevant_sources(backend.db, resolved)
        focused = reporter.report(sql, method="focused").relevant_source_ids
        naive = reporter.report(sql, method="naive").relevant_source_ids
        # Paper-scale closed form: Q1/Q3 have 6 relevant sources; Q2/Q4 have
        # all but the 6 excluded ones.
        paper_relevant = 6 if name in ("Q1", "Q3") else paper_sources - 6
        records.append(
            {
                "query": name,
                "relevant_exact": len(exact),
                "fpr_focused": false_positive_rate(focused, exact),
                "fpr_naive": false_positive_rate(naive, exact),
                "paper_scale_fpr_naive": naive_fpr(paper_sources, paper_relevant),
            }
        )
    return records


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

_FIG1_HEADERS = [
    "query",
    "data_ratio",
    "num_sources",
    "method",
    "t_plain_s",
    "t_report_s",
    "overhead_pct",
    "relevant_sources",
    "phase_parse_generate_s",
    "phase_user_query_s",
    "phase_recency_query_s",
    "phase_statistics_s",
    "cache_query_hits",
    "cache_query_misses",
    "cache_plan_hits",
]
_FIG2_HEADERS = ["query", "data_ratio", "num_sources", "without_report_s", "with_report_s"]
_FPR_HEADERS = [
    "query",
    "relevant_exact",
    "fpr_focused",
    "fpr_naive",
    "paper_scale_fpr_naive",
]


def _emit(
    title: str,
    records: List[Dict[str, object]],
    headers: List[str],
    csv_dir: Optional[str],
    csv_name: str,
    json_dir: Optional[str] = None,
) -> None:
    print(f"\n== {title} ==")
    print(ascii_table(headers, rows_from_dicts(records, headers)))
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, csv_name)
        write_csv(path, headers, rows_from_dicts(records, headers))
        print(f"(written to {path})")
    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        path = os.path.join(json_dir, csv_name.replace(".csv", ".json"))
        write_json(path, records)
        print(f"(written to {path})")


def plot_figure1(records: List[Dict[str, object]]) -> str:
    """Render Figure 1 as one log-log ASCII panel per query, matching the
    paper's four-panel layout."""
    panels: List[str] = []
    for query in ("Q1", "Q2", "Q3", "Q4"):
        series: Dict[str, List[Tuple[float, float]]] = {}
        for record in records:
            if record["query"] != query:
                continue
            method = str(record["method"])
            # Clamp at a tiny positive floor so log scale accepts ~0/negative
            # (noise) overheads.
            overhead = max(float(record["overhead_pct"]), 0.01)  # type: ignore[arg-type]
            series.setdefault(method, []).append(
                (float(record["data_ratio"]), overhead)  # type: ignore[arg-type]
            )
        panels.append(
            ascii_chart(
                series,
                title=f"{query}: overhead (%) vs data ratio (log-log)",
                log_x=True,
                log_y=True,
            )
        )
    return "\n\n".join(panels)


def plot_figure2(records: List[Dict[str, object]]) -> str:
    panels: List[str] = []
    for query in ("Q1", "Q3"):
        series: Dict[str, List[Tuple[float, float]]] = {"without": [], "with": []}
        for record in records:
            if record["query"] != query:
                continue
            ratio = float(record["data_ratio"])  # type: ignore[arg-type]
            series["without"].append((ratio, float(record["without_report_s"])))  # type: ignore[arg-type]
            series["with"].append((ratio, float(record["with_report_s"])))  # type: ignore[arg-type]
        panels.append(
            ascii_chart(
                series,
                title=f"{query}: response time (s) vs data ratio (log-log)",
                log_x=True,
                log_y=True,
            )
        )
    return "\n\n".join(panels)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures/tables.")
    parser.add_argument("target", choices=["fig1", "fig2", "fpr", "all"])
    parser.add_argument("--total-rows", type=int, default=DEFAULT_TOTAL_ROWS)
    parser.add_argument("--runs", type=int, default=5)
    parser.add_argument("--backend", choices=sorted(_BACKENDS), default="sqlite")
    parser.add_argument("--fpr-sources", type=int, default=200)
    parser.add_argument("--csv-dir", default=None)
    parser.add_argument(
        "--json-dir", default=None, help="also write records (with per-phase breakdowns) as JSON"
    )
    parser.add_argument("--plot", action="store_true", help="also render ASCII charts")
    args = parser.parse_args(argv)

    say = lambda message: print(f"  ... {message}", file=sys.stderr)  # noqa: E731

    if args.target in ("fig1", "all"):
        records = figure1_series(args.total_rows, args.runs, args.backend, say)
        _emit(
            "Figure 1: recency-reporting overhead (%) vs data ratio",
            records,
            _FIG1_HEADERS,
            args.csv_dir,
            "figure1.csv",
            json_dir=args.json_dir,
        )
        if args.plot:
            print()
            print(plot_figure1(records))
    if args.target in ("fig2", "all"):
        records = figure2_series(args.total_rows, args.runs, args.backend, say)
        _emit(
            "Figure 2: response times for Q1/Q3 with and without recency report",
            records,
            _FIG2_HEADERS,
            args.csv_dir,
            "figure2.csv",
            json_dir=args.json_dir,
        )
        if args.plot:
            print()
            print(plot_figure2(records))
    if args.target in ("fpr", "all"):
        records = fpr_results(num_sources=args.fpr_sources)
        _emit(
            "False positive rates (measured vs paper-scale closed form)",
            records,
            _FPR_HEADERS,
            args.csv_dir,
            "fpr.csv",
            json_dir=args.json_dir,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
