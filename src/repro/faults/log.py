"""A log-file proxy whose *reads* drop or duplicate records.

The paper assumes reliable, append-only storage, and :class:`FaultyLog`
keeps that: writes go straight to the wrapped
:class:`~repro.grid.logfile.LogFile` and nothing is ever removed from it.
What the faults perturb is *delivery* — the slice of records a sniffer's
``read_from`` observes — which models the R-GMA-style failure reports of
lossy republishing (dropped records) and at-least-once redelivery
(duplicated records) without violating the log's durability contract.

The supervisor updates ``now`` each tick so scripted faults fire against
simulation time; before the first tick the read horizon is used instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # type-only: faults must not import grid at runtime
    from repro.grid.events import LogEvent  # pragma: no cover
    from repro.grid.logfile import LogFile  # pragma: no cover


class FaultyLog:
    """Wraps one machine's :class:`LogFile` with lossy delivery."""

    def __init__(self, inner: "LogFile", plan: FaultPlan, source: str) -> None:
        self.inner = inner
        self.plan = plan
        self.source = source
        #: Simulation time of the current poll (set by the supervisor).
        self.now: Optional[float] = None

    def read_from(self, offset: int, up_to_time: float) -> Tuple[List["LogEvent"], int]:
        events, new_offset = self.inner.read_from(offset, up_to_time)
        at = self.now if self.now is not None else up_to_time
        return self.plan.filter_events(self.source, at, events), new_offset

    # -- pass-through (the durable log underneath) ---------------------------

    def append(self, event: "LogEvent") -> None:
        self.inner.append(event)

    @property
    def owner(self) -> str:
        return self.inner.owner

    @property
    def last_timestamp(self) -> float:
        return self.inner.last_timestamp

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self):
        return iter(self.inner)

    def __repr__(self) -> str:
        return f"FaultyLog({self.inner!r})"
