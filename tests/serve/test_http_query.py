"""POST /v1/query over real sockets: happy path and adversarial inputs."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.obs import Telemetry
from repro.obs.server import MAX_BODY_BYTES, ObservatoryServer
from repro.serve import QueryService, ServeConfig

SQL = "SELECT mach_id FROM activity"


def post(url, body=None, raw=None, method="POST", headers=None):
    """Returns (status, parsed-JSON-body, response-headers)."""
    data = raw if raw is not None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers=headers or {"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}"), dict(exc.headers)


def raw_exchange(host, port, payload: bytes) -> str:
    """One raw TCP request; returns the decoded response."""
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks).decode("utf-8", "replace")


@pytest.fixture
def server(paper_memory_backend):
    tel = Telemetry()
    with QueryService(paper_memory_backend, ServeConfig(workers=2), telemetry=tel) as svc:
        with ObservatoryServer(tel, query_service=svc) as srv:
            yield srv


class TestHappyPath:
    def test_query_returns_rows_report_and_trace(self, server):
        status, doc, _ = post(
            server.url + "/v1/query", body={"sql": SQL, "tenant": "alice"}
        )
        assert status == 200
        assert sorted(r[0] for r in doc["rows"]) == ["m1", "m2", "m3"]
        assert doc["tenant"] == "alice"
        assert doc["exceptional_sources"] == ["m2"]
        assert len(doc["trace_id"]) == 32
        # The trace is queryable back through the observatory.
        with urllib.request.urlopen(
            server.url + f"/trace/{doc['trace_id']}", timeout=10.0
        ) as response:
            trace = json.loads(response.read())
        assert any(span["name"] == "serve.request" for span in trace["spans"])

    def test_tenant_defaults_when_omitted(self, server):
        status, doc, _ = post(server.url + "/v1/query", body={"sql": SQL})
        assert status == 200
        assert doc["tenant"] == "default"

    def test_status_gains_a_serving_block(self, server):
        post(server.url + "/v1/query", body={"sql": SQL})
        with urllib.request.urlopen(server.url + "/status", timeout=10.0) as response:
            status_doc = json.loads(response.read())
        serving = status_doc["serving"]
        assert serving["requests"]["ok"] == 1
        assert serving["workers"] == 2
        assert serving["p99_ms"] > 0


class TestClientErrors:
    def test_missing_sql_field(self, server):
        status, doc, _ = post(server.url + "/v1/query", body={"tenant": "a"})
        assert status == 400
        assert "sql" in doc["error"]

    def test_malformed_json_body(self, server):
        status, doc, _ = post(server.url + "/v1/query", raw=b"{nope")
        assert status == 400
        assert "JSON" in doc["error"]

    def test_non_object_body(self, server):
        status, doc, _ = post(server.url + "/v1/query", raw=b'["a", "list"]')
        assert status == 400
        assert "object" in doc["error"]

    def test_bad_sql_is_400_not_500(self, server):
        status, doc, _ = post(
            server.url + "/v1/query", body={"sql": "SELECT x FROM no_such_table"}
        )
        assert status == 400
        assert "no_such_table" in doc["error"]

    def test_bad_deadline_type(self, server):
        status, doc, _ = post(
            server.url + "/v1/query", body={"sql": SQL, "deadline_seconds": "soon"}
        )
        assert status == 400

    def test_negative_deadline(self, server):
        status, doc, _ = post(
            server.url + "/v1/query", body={"sql": SQL, "deadline_seconds": -1}
        )
        assert status == 400

    def test_oversized_body_is_413(self, server):
        response = raw_exchange(
            server.host,
            server.port,
            b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode(),
        )
        assert "413" in response.splitlines()[0]

    def test_missing_content_length_is_411(self, server):
        response = raw_exchange(
            server.host, server.port, b"POST /v1/query HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert "411" in response.splitlines()[0]

    def test_get_on_v1_query_is_405(self, server):
        status, _, headers = post(
            server.url + "/v1/query", raw=b"", method="GET", headers={}
        )
        assert status == 405
        assert headers.get("Allow") == "POST"


class TestQuotaOverHttp:
    def test_quota_exhaustion_returns_429_with_retry_after(self, paper_memory_backend):
        tel = Telemetry()
        config = ServeConfig(workers=1, tenant_rate=0.0, tenant_burst=1.0)
        with QueryService(paper_memory_backend, config, telemetry=tel) as svc:
            with ObservatoryServer(tel, query_service=svc) as server:
                first, _, _ = post(server.url + "/v1/query", body={"sql": SQL})
                second, doc, headers = post(
                    server.url + "/v1/query", body={"sql": SQL}
                )
        assert first == 200
        assert second == 429
        assert float(headers["Retry-After"]) > 0
        assert "rate" in doc["error"]

    def test_no_service_wired_is_503(self):
        tel = Telemetry()
        with ObservatoryServer(tel) as server:
            status, doc, _ = post(server.url + "/v1/query", body={"sql": SQL})
        assert status == 503
