"""Concurrency stress tests: reports stay internally consistent while
sniffer-like writers commit continuously through separate connections.

This is the deployment reality the paper targets: the monitoring database
is written around the clock, and every recencyReport must still observe one
snapshot.
"""

import threading
import time

import pytest

from repro import Catalog, Column, FiniteDomain, SQLiteBackend, TableSchema
from repro.core.report import RecencyReporter

SOURCES = [f"m{i}" for i in range(1, 6)]


def catalog():
    machines = FiniteDomain(SOURCES)
    return Catalog(
        [
            TableSchema(
                "activity",
                [
                    Column("mach_id", "TEXT", machines),
                    Column("value", "TEXT", FiniteDomain({"idle", "busy"})),
                    Column("seq", "INTEGER"),
                ],
                source_column="mach_id",
            )
        ]
    )


@pytest.mark.parametrize("rounds", [60])
def test_reports_see_consistent_snapshots_under_writes(tmp_path, rounds):
    """Invariant: within one report, the per-source activity row counts and
    the heartbeat values must come from the same instant. The writer keeps
    them coupled (it bumps heartbeat to the seq it just wrote), so a report
    mixing table states across writes would show heartbeat < max(seq)."""
    backend = SQLiteBackend(catalog(), str(tmp_path / "db.sqlite"))
    for source in SOURCES:
        backend.upsert_heartbeat(source, 0.0)

    stop = threading.Event()
    writer_error = []

    def writer():
        conn = backend.writer_connection()
        try:
            seq = 0
            while not stop.is_set():
                seq += 1
                for source in SOURCES:
                    conn.execute(
                        "INSERT INTO activity VALUES (?, 'idle', ?)", (source, seq)
                    )
                    conn.execute(
                        "UPDATE heartbeat SET recency = ? WHERE source_id = ?",
                        (float(seq), source),
                    )
                conn.commit()  # one atomic round for all sources
        except Exception as exc:  # pragma: no cover - surfaced in the assert
            writer_error.append(exc)
        finally:
            conn.close()

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        reporter = RecencyReporter(backend, create_temp_tables=False)
        # Wait for the writer's first committed round before checking.
        deadline = time.time() + 10.0
        while time.time() < deadline:
            if backend.execute("SELECT COUNT(*) FROM activity").scalar():
                break
            time.sleep(0.01)
        assert not writer_error, writer_error

        seen_progress = set()
        for _ in range(rounds):
            report = reporter.report("SELECT MAX(seq) FROM activity A")
            max_seq = report.result.scalar()
            if max_seq is None:
                continue
            recencies = {s.source_id: s.recency for s in report.normal_sources}
            recencies.update(
                {s.source_id: s.recency for s in report.exceptional_sources}
            )
            # Same snapshot: every source's heartbeat equals the round that
            # produced max(seq) — the writer commits them together.
            assert set(recencies) == set(SOURCES)
            for source, recency in recencies.items():
                assert recency == float(max_seq), (
                    f"report mixed snapshots: max(seq)={max_seq} but "
                    f"{source} heartbeat={recency}"
                )
            seen_progress.add(max_seq)
            time.sleep(0.002)
        # The writer really ran concurrently with the reports.
        assert len(seen_progress) >= 1
    finally:
        stop.set()
        thread.join(timeout=10)
        backend.close()
    assert not writer_error, writer_error


def test_many_sequential_reports_with_interleaved_writes(tmp_path):
    """Alternating writes and reports never deadlock and always terminate
    (WAL readers don't block the writer and vice versa)."""
    backend = SQLiteBackend(catalog(), str(tmp_path / "db.sqlite"))
    writer = backend.writer_connection()
    reporter = RecencyReporter(backend, create_temp_tables=False)
    try:
        for i in range(1, 40):
            source = SOURCES[i % len(SOURCES)]
            writer.execute("INSERT INTO activity VALUES (?, 'idle', ?)", (source, i))
            writer.execute(
                "INSERT INTO heartbeat VALUES (?, ?) "
                "ON CONFLICT(source_id) DO UPDATE SET recency = excluded.recency",
                (source, float(i)),
            )
            writer.commit()
            report = reporter.report(
                f"SELECT COUNT(*) FROM activity A WHERE A.mach_id = '{source}'"
            )
            assert report.relevant_source_ids == {source}
            assert report.result.scalar() >= 1
    finally:
        writer.close()
        backend.close()
