#!/usr/bin/env python
"""Profiling tour: distributed traces, exemplars and per-operator profiles.

Walks the end-to-end query tracing story, entirely in-process:

1. build a small monitoring database and run a recency report with
   telemetry on — every query it executes is profiled per operator;
2. print the user query's :class:`~repro.engine.profile.QueryProfile`
   (rows in/out, selectivity, wall ms per operator) straight off the
   :class:`~repro.core.report.RecencyReport`;
3. serve a query over HTTP through the observatory with an injected W3C
   ``traceparent`` header, then pull ``/trace/<id>`` to see the caller's
   trace id on every span, event and profile produced while serving it;
4. scrape ``/metrics`` and show the latency histograms carrying the
   trace id as an exemplar;
5. trip the slow-query threshold and watch ``query.slow`` fire.

The same surfaces are available from the command line::

    trac explain --db grid.sqlite --analyze "SELECT ..."
    trac shell --db grid.sqlite        # .profile SELECT ...

Run:  python examples/profiling_tour.py
"""

import json
import time
import urllib.parse
import urllib.request

from repro.backends.memory import MemoryBackend
from repro.catalog import Catalog, Column, TableSchema
from repro.core.report import RecencyReporter
from repro.obs import Telemetry
from repro.obs.server import ObservatoryServer

CALLER_TRACE = "1badb002" * 4  # a 32-hex trace id the "caller" minted


def scrape(url: str, headers=None) -> str:
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.read().decode("utf-8")


def build_reporter(telemetry: Telemetry) -> RecencyReporter:
    catalog = Catalog()
    catalog.add(
        TableSchema(
            "activity",
            [Column("mach_id", "TEXT"), Column("state", "TEXT"), Column("t", "REAL")],
        )
    )
    catalog.add(
        TableSchema(
            "trac_heartbeat", [Column("source_id", "TEXT"), Column("recency", "REAL")]
        )
    )
    backend = MemoryBackend(catalog, telemetry=telemetry)
    backend.create_tables()
    backend.insert_rows(
        "activity",
        [
            (f"m{i % 4 + 1}", "busy" if i % 3 else "idle", float(i))
            for i in range(40)
        ],
    )
    for i in range(4):
        backend.upsert_heartbeat(f"m{i + 1}", 100.0 + i)
    return RecencyReporter(backend, telemetry=telemetry)


def main() -> None:
    print("=== Profiling tour ===")
    telemetry = Telemetry()
    reporter = build_reporter(telemetry)
    sql = "SELECT state, COUNT(*) FROM activity GROUP BY state"

    print("\n--- 1. every traced report carries its user query's profile ---")
    report = reporter.report(sql, method="focused")
    print(f"report trace_id: {report.trace_id}")
    print(report.profile.render())

    print("\n--- 2. a query served over HTTP joins the caller's trace ---")
    with ObservatoryServer(telemetry, reporter=reporter) as server:
        traceparent = f"00-{CALLER_TRACE}-00f067aa0ba902b7-01"
        body = scrape(
            f"{server.url}/query?sql={urllib.parse.quote(sql)}",
            headers={"traceparent": traceparent},
        )
        doc = json.loads(body)
        print(f"injected  trace_id: {CALLER_TRACE}")
        print(f"report's  trace_id: {doc['trace_id']}")
        ops = ", ".join(op["op"] for op in doc["profile"]["operators"])
        print(f"profile operators over HTTP: {ops}")

        print("\n--- 3. /trace/<id> correlates spans, events and profiles ---")
        # The /query request's own span closes on the server thread just
        # after its response is sent; wait for it to land in the trace.
        deadline = time.monotonic() + 5.0
        while True:
            trace_doc = json.loads(scrape(f"{server.url}/trace/{CALLER_TRACE}"))
            names = sorted({span["name"] for span in trace_doc["spans"]})
            if "http.request" in names or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        print(f"spans in the caller's trace: {names}")
        print(
            f"correlated: {len(trace_doc['spans'])} spans, "
            f"{len(trace_doc['events'])} events, "
            f"{len(trace_doc['profiles'])} profiles"
        )

        print("\n--- 4. histogram latency series with trace-id exemplars ---")
        metrics = scrape(f"{server.url}/metrics")
        shown = 0
        for line in metrics.splitlines():
            if " # {" in line and shown < 2:
                print(f"  {line}")
                shown += 1
        assert "trac_http_request_seconds_bucket" in metrics

    print("\n--- 5. slow queries trip an event (and the flight recorder) ---")
    reporter.slow_query_seconds = 1e-9  # everything is "slow" now
    slow_report = reporter.report(sql, method="focused")
    slow_events = [
        event for event in telemetry.events.snapshot() if event.name == "query.slow"
    ]
    print(
        f"query.slow events: {len(slow_events)} "
        f"(trace {slow_events[-1].trace_id} == report {slow_report.trace_id})"
    )
    print(f"profiles retained this session: {telemetry.profiles.total}")
    reporter.close()
    print("\ndone: every query is traceable from caller to operator")


if __name__ == "__main__":
    main()
