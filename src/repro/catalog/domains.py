"""Column domains.

Definitions 1 and 2 of the paper quantify over the *domains* of a relation's
columns: a data source is relevant when some tuple drawn from those domains
could satisfy the query's predicates. Two parts of the system need a concrete
domain model:

* the satisfiability checks of Theorems 3 and 4 ("is ``Pr`` satisfiable in
  ``D1 x D2 x ... x Dk``?"), and
* the brute-force relevance oracle of Section 4.1 / 5.2, which enumerates the
  cross product of finite domains to compute the exact relevant set.

A domain is immutable. Finite domains expose their value set; infinite
domains (integers, reals, text, timestamps) only answer membership and
interval questions.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.errors import DomainError


class Domain:
    """Abstract base class for column domains."""

    #: Human-readable name of the domain kind, overridden by subclasses.
    kind = "abstract"

    @property
    def is_finite(self) -> bool:
        """Whether the domain has a (small) explicitly enumerable value set."""
        return False

    def contains(self, value: object) -> bool:
        """Return True when ``value`` is a member of this domain."""
        raise NotImplementedError

    def iter_values(self) -> Iterable[object]:
        """Yield every value of a finite domain.

        Raises
        ------
        DomainError
            If the domain is infinite.
        """
        raise DomainError(f"domain {self!r} is not enumerable")

    def cardinality(self) -> Optional[int]:
        """Number of values, or ``None`` when infinite."""
        return None

    def intersects_interval(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> bool:
        """Whether any domain value lies within the given interval.

        ``None`` bounds mean unbounded on that side. Used by the
        satisfiability checker to decide whether a conjunction of range
        predicates over one column can possibly be satisfied.
        """
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        return ()


def _compare(a: object, b: object) -> int:
    """Three-way comparison tolerant of mixed int/float."""
    if a == b:
        return 0
    try:
        return -1 if a < b else 1  # type: ignore[operator]
    except TypeError as exc:
        raise DomainError(f"cannot compare {a!r} and {b!r}") from exc


class FiniteDomain(Domain):
    """An explicitly enumerated, immutable set of values.

    This is the only domain kind the brute-force oracle accepts; the test
    schemas of Section 5.2 were "specially designed so that a finite domain
    with a reasonable cardinality is associated with each column".
    """

    kind = "finite"

    def __init__(self, values: Iterable[object]) -> None:
        frozen = frozenset(values)
        if not frozen:
            raise DomainError("a finite domain must contain at least one value")
        self._values: FrozenSet[object] = frozen

    @property
    def is_finite(self) -> bool:
        return True

    @property
    def values(self) -> FrozenSet[object]:
        return self._values

    def contains(self, value: object) -> bool:
        return value in self._values

    def iter_values(self) -> Iterable[object]:
        # Deterministic order so brute-force sweeps and tests are stable.
        return sorted(self._values, key=lambda v: (str(type(v).__name__), str(v)))

    def cardinality(self) -> Optional[int]:
        return len(self._values)

    def intersects_interval(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> bool:
        for value in self._values:
            try:
                if low is not None:
                    cmp = _compare(value, low)
                    if cmp < 0 or (cmp == 0 and not low_inclusive):
                        continue
                if high is not None:
                    cmp = _compare(value, high)
                    if cmp > 0 or (cmp == 0 and not high_inclusive):
                        continue
            except DomainError:
                continue
            return True
        return False

    def _key(self) -> Tuple:
        return (self._values,)

    def __repr__(self) -> str:
        preview = sorted(map(str, self._values))[:4]
        suffix = ", ..." if len(self._values) > 4 else ""
        return f"FiniteDomain({{{', '.join(preview)}{suffix}}})"


class _OrderedInfiniteDomain(Domain):
    """Shared logic for unbounded ordered domains with optional endpoints."""

    def __init__(self, low: Optional[float] = None, high: Optional[float] = None) -> None:
        if low is not None and high is not None and low > high:
            raise DomainError(f"empty domain: low {low!r} > high {high!r}")
        self.low = low
        self.high = high

    def _value_ok_type(self, value: object) -> bool:
        raise NotImplementedError

    def contains(self, value: object) -> bool:
        if not self._value_ok_type(value):
            return False
        if self.low is not None and value < self.low:  # type: ignore[operator]
            return False
        if self.high is not None and value > self.high:  # type: ignore[operator]
            return False
        return True

    def intersects_interval(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> bool:
        # Clip the query interval by the (closed) domain bounds, tracking
        # inclusivity, then check non-emptiness of the result.
        lo, lo_inc = low, low_inclusive
        if self.low is not None and (lo is None or self.low > lo or (self.low == lo and not lo_inc)):
            lo, lo_inc = self.low, True
        hi, hi_inc = high, high_inclusive
        if self.high is not None and (hi is None or self.high < hi or (self.high == hi and not hi_inc)):
            hi, hi_inc = self.high, True
        if lo is None or hi is None:
            return True
        if lo < hi:  # type: ignore[operator]
            return True
        return lo == hi and lo_inc and hi_inc

    def _key(self) -> Tuple:
        return (self.low, self.high)


class IntegerDomain(_OrderedInfiniteDomain):
    """All integers, optionally restricted to ``[low, high]``."""

    kind = "integer"

    def _value_ok_type(self, value: object) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def cardinality(self) -> Optional[int]:
        if self.low is not None and self.high is not None:
            return int(self.high) - int(self.low) + 1
        return None

    def iter_values(self) -> Iterable[object]:
        if self.low is None or self.high is None:
            raise DomainError("unbounded integer domain is not enumerable")
        return range(int(self.low), int(self.high) + 1)

    @property
    def is_finite(self) -> bool:
        return self.low is not None and self.high is not None

    def intersects_interval(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> bool:
        # Tighten possibly-open real bounds to closed integer bounds.
        lo = None
        if low is not None:
            if low == math.floor(low):
                lo = int(low) if low_inclusive else int(low) + 1
            else:
                lo = math.ceil(low)
        hi = None
        if high is not None:
            if high == math.floor(high):
                hi = int(high) if high_inclusive else int(high) - 1
            else:
                hi = math.floor(high)
        return super().intersects_interval(lo, hi, True, True)

    def __repr__(self) -> str:
        return f"IntegerDomain(low={self.low!r}, high={self.high!r})"


class RealDomain(_OrderedInfiniteDomain):
    """All reals, optionally restricted to ``[low, high]``."""

    kind = "real"

    def _value_ok_type(self, value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def __repr__(self) -> str:
        return f"RealDomain(low={self.low!r}, high={self.high!r})"


class TextDomain(Domain):
    """All strings. Infinite; supports prefix-free interval intersection."""

    kind = "text"

    def contains(self, value: object) -> bool:
        return isinstance(value, str)

    def intersects_interval(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> bool:
        if low is None or high is None:
            return True
        if low < high:  # type: ignore[operator]
            return True
        return low == high and low_inclusive and high_inclusive

    def __repr__(self) -> str:
        return "TextDomain()"


class TimestampDomain(Domain):
    """Event-time values, stored as POSIX epoch seconds (floats).

    The paper's recency timestamps are wall-clock times; representing them as
    epoch seconds makes the descriptive statistics of Section 4.3 (mean,
    standard deviation, z-scores, range) direct arithmetic.
    """

    kind = "timestamp"

    def contains(self, value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def intersects_interval(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> bool:
        if low is None or high is None:
            return True
        if low < high:  # type: ignore[operator]
            return True
        return low == high and low_inclusive and high_inclusive

    def __repr__(self) -> str:
        return "TimestampDomain()"
