"""Tracer tests: nesting, ordering, attributes, threads, the no-op path."""

import threading

import pytest

from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullSpan, Tracer


@pytest.fixture
def tracer():
    return Tracer()


class TestNesting:
    def test_child_gets_parent_id(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_completion_order_inner_first(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["inner", "outer"]

    def test_roots_and_children(self, tracer):
        with tracer.span("a"):
            with tracer.span("a.1"):
                pass
            with tracer.span("a.2"):
                pass
        with tracer.span("b"):
            pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["a", "b"]
        assert [c.name for c in tracer.children_of(roots[0])] == ["a.1", "a.2"]
        assert tracer.children_of(roots[1]) == []

    def test_walk_yields_depths(self, tracer):
        with tracer.span("root"):
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        (root,) = tracer.roots()
        walked = [(s.name, depth) for s, depth in tracer.walk(root)]
        assert walked == [("root", 0), ("mid", 1), ("leaf", 2)]

    def test_siblings_after_close_share_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == root.span_id
        assert second.parent_id == root.span_id

    def test_current_span_tracks_innermost(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None


class TestSpanLifecycle:
    def test_duration_and_finished(self, tracer):
        with tracer.span("work") as span:
            assert not span.finished
            assert span.duration == 0.0
        assert span.finished
        assert span.duration >= 0.0

    def test_monotonic_and_wall_clocks(self, tracer):
        with tracer.span("work") as span:
            pass
        assert span.end >= span.start
        assert span.start_wall > 1_000_000_000  # an actual epoch timestamp

    def test_attributes_at_creation_and_later(self, tracer):
        with tracer.span("q", method="focused") as span:
            span.set_attribute("rows", 42)
        assert span.attributes == {"method": "focused", "rows": 42}

    def test_exception_records_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert span.attributes["error"] == "ValueError"
        assert span.finished

    def test_unentered_context_records_nothing(self, tracer):
        # A phase that never runs (e.g. parse_generate for the naive
        # method) must not leave a stale span on the stack.
        tracer.span("never-entered")
        with tracer.span("real") as real:
            assert tracer.current_span() is real
        assert [s.name for s in tracer.finished_spans()] == ["real"]
        assert real.parent_id is None

    def test_span_ids_unique(self, tracer):
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [s.span_id for s in tracer.finished_spans()]
        assert len(set(ids)) == 5

    def test_to_dict_round_trippable(self, tracer):
        with tracer.span("named", k="v") as span:
            pass
        d = span.to_dict()
        assert d["name"] == "named"
        assert d["span_id"] == span.span_id
        assert d["parent_id"] is None
        assert d["attributes"] == {"k": "v"}
        assert d["duration_s"] == span.duration

    def test_reset_clears_collected(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.finished_spans() == []
        assert tracer.dropped == 0


class TestDecorator:
    def test_explicit_name(self, tracer):
        @tracer.trace("compute")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert [s.name for s in tracer.finished_spans()] == ["compute"]

    def test_default_name_is_qualname(self, tracer):
        @tracer.trace()
        def helper():
            return 1

        helper()
        (span,) = tracer.finished_spans()
        assert "helper" in span.name

    def test_decorated_call_nests_under_open_span(self, tracer):
        @tracer.trace("inner")
        def inner():
            pass

        with tracer.span("outer") as outer:
            inner()
        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["inner"].parent_id == outer.span_id


class TestCapacity:
    def test_max_spans_drops_and_counts(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("x"):
                pass
        assert len(tracer.finished_spans()) == 2
        assert tracer.dropped == 3


class TestThreadSafety:
    def test_two_threads_nest_independently(self, tracer):
        barrier = threading.Barrier(2)
        errors = []

        def worker(label):
            try:
                with tracer.span(f"{label}.root") as root:
                    barrier.wait(timeout=5)
                    for i in range(50):
                        with tracer.span(f"{label}.child") as child:
                            assert child.parent_id == root.span_id
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        spans = tracer.finished_spans()
        assert len(spans) == 102  # 2 roots + 2 * 50 children
        for label in ("t1", "t2"):
            root = next(s for s in spans if s.name == f"{label}.root")
            children = [s for s in spans if s.name == f"{label}.child"]
            assert len(children) == 50
            assert all(c.parent_id == root.span_id for c in children)


class TestNullTracer:
    def test_span_is_shared_null_span(self):
        assert NULL_TRACER.span("anything", k="v") is NULL_SPAN

    def test_null_span_works_as_context_manager(self):
        with NULL_TRACER.span("x") as span:
            span.set_attribute("ignored", 1)
        assert isinstance(span, NullSpan)
        assert span.attributes == {}
        assert span.to_dict() == {}

    def test_records_nothing(self):
        with NULL_TRACER.span("x"):
            pass
        assert NULL_TRACER.finished_spans() == []
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.current_span() is None

    def test_decorator_returns_function_unwrapped(self):
        def fn():
            return 7

        assert NULL_TRACER.trace("x")(fn) is fn
