"""A delegating backend wrapper that injects write failures.

One :class:`FaultyBackend` wraps the shared monitoring backend *per
sniffer*: the supervisor sets the wrapper's ``(source, now)`` context before
each poll, and the wrapper consults the :class:`~repro.faults.plan.FaultPlan`
on every write the sniffer performs. Reads and snapshots always pass
through untouched — the fault model is about the load path, not the query
path (queries run against whatever state the faults left behind).

Failure atomicity mirrors a real loader: a failed ``upsert_rows`` aborts
the poll before the sniffer advances its offset, so the next successful
poll re-reads and re-applies the whole batch (at-least-once delivery); a
failed ``upsert_heartbeat`` loses only the recency advance, which a later
poll repairs.
"""

from __future__ import annotations

from typing import ContextManager, Iterable, List, Optional, Sequence

from repro.backends.base import Backend, Snapshot
from repro.engine.evaluate import QueryResult
from repro.faults.plan import FaultPlan


class FaultyBackend(Backend):
    """Wraps ``inner`` and raises :class:`~repro.faults.plan.InjectedFault`
    from write calls when ``plan`` says so."""

    kind = "faulty"

    def __init__(self, inner: Backend, plan: FaultPlan) -> None:
        super().__init__(inner.catalog, telemetry=None)
        self.inner = inner
        self.plan = plan
        self._source: Optional[str] = None
        self._now = 0.0

    def set_context(self, source: str, now: float) -> None:
        """Bind fault decisions to the sniffer about to use this wrapper."""
        self._source = source
        self._now = now

    def _check(self, op: str) -> None:
        if self._source is not None:
            self.plan.check_backend(self._source, self._now, op)

    def _tel(self):
        return self.inner._tel()

    # -- write path (fault-injected) ----------------------------------------

    def insert_rows(self, table: str, rows: Iterable[Sequence[object]]) -> None:
        self._check("apply")
        self.inner.insert_rows(table, rows)

    def upsert_rows(
        self, table: str, key_columns: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> None:
        self._check("apply")
        self.inner.upsert_rows(table, key_columns, rows)

    def delete_rows(
        self, table: str, key_columns: Sequence[str], keys: Iterable[Sequence[object]]
    ) -> None:
        self._check("apply")
        self.inner.delete_rows(table, key_columns, keys)

    def upsert_heartbeat(self, source_id: str, recency: float) -> None:
        self._check("heartbeat")
        self.inner.upsert_heartbeat(source_id, recency)

    # -- pass-through --------------------------------------------------------

    def create_tables(self) -> None:
        self.inner.create_tables()

    def delete_all(self, table: str) -> None:
        self.inner.delete_all(table)

    def execute(self, sql: str) -> QueryResult:
        return self.inner.execute(sql)

    def snapshot(self) -> ContextManager[Snapshot]:
        return self.inner.snapshot()

    def persist_temp_table(self, temp_name: str, permanent_name: str) -> None:
        self.inner.persist_temp_table(temp_name, permanent_name)

    def drop_temp_table(self, name: str) -> None:
        self.inner.drop_temp_table(name)

    def list_temp_tables(self) -> List[str]:
        return self.inner.list_temp_tables()

    def close(self) -> None:
        # The wrapper does not own the shared inner backend; never close it.
        pass

    def __repr__(self) -> str:
        return f"FaultyBackend({self.inner!r}, source={self._source!r})"
