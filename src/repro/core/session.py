"""User sessions and their temporary tables (Section 4.3).

The recency timestamps of a query's relevant sources are stored in
automatically created temporary tables — one for the "normal" sources and,
when outliers exist, one for the "exceptional" sources. They persist until
the session ends (``Session.close``) unless dropped earlier, mirroring the
prototype's ``sys_temp_a<ts>`` / ``sys_temp_e<ts>`` tables.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.backends.base import Backend, Snapshot
from repro.core.statistics import SourceRecency


class Session:
    """Tracks the temp tables created for one user session."""

    _ids = itertools.count(1)

    def __init__(self, backend: Backend) -> None:
        self.backend = backend
        self._created: List[str] = []

    def next_table_names(self) -> "TempTablePair":
        """Reserve a fresh (normal, exceptional) temp-table name pair."""
        report_id = next(self._ids)
        return TempTablePair(f"sys_temp_a{report_id}", f"sys_temp_e{report_id}")

    def materialize(
        self,
        snapshot: Snapshot,
        names: "TempTablePair",
        normal: Sequence[SourceRecency],
        exceptional: Sequence[SourceRecency],
    ) -> None:
        """Create the temp tables holding the report's recency rows."""
        snapshot.create_temp_table(
            names.normal, ("sid", "recency"), [(s.source_id, s.recency) for s in normal]
        )
        self._created.append(names.normal)
        snapshot.create_temp_table(
            names.exceptional,
            ("sid", "recency"),
            [(s.source_id, s.recency) for s in exceptional],
        )
        self._created.append(names.exceptional)

    def drop(self, name: str) -> None:
        """Drop one temp table early (before session end)."""
        self.backend.drop_temp_table(name)
        self._created = [t for t in self._created if t != name]

    def save_as(self, temp_name: str, permanent_name: str) -> None:
        """Copy a report's temp table into a permanent table (Section 4.3:
        the user may keep the recency snapshot beyond the session)."""
        self.backend.persist_temp_table(temp_name, permanent_name)

    @property
    def temp_tables(self) -> List[str]:
        return list(self._created)

    def close(self) -> None:
        """End the session: discard every remaining temp table."""
        for name in self._created:
            self.backend.drop_temp_table(name)
        self._created.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TempTablePair:
    """Names of the normal/exceptional temp tables for one report."""

    __slots__ = ("normal", "exceptional")

    def __init__(self, normal: str, exceptional: str) -> None:
        self.normal = normal
        self.exceptional = exceptional

    def __repr__(self) -> str:
        return f"TempTablePair({self.normal!r}, {self.exceptional!r})"
