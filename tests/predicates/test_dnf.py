"""DNF conversion tests, including the semantic-equivalence property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DnfBlowupError
from repro.predicates.dnf import basic_terms_of, to_dnf, to_nnf
from repro.predicates.evaluate import evaluate_truth
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_expression


def dnf_of(text, **kwargs):
    return to_dnf(parse_expression(text), **kwargs)


class TestNnf:
    def test_not_pushed_through_and(self):
        nnf = to_nnf(parse_expression("NOT (a = 1 AND b = 2)"))
        assert isinstance(nnf, ast.Or)
        assert all(isinstance(i, ast.Comparison) for i in nnf.items)
        assert [i.op for i in nnf.items] == ["<>", "<>"]

    def test_not_pushed_through_or(self):
        nnf = to_nnf(parse_expression("NOT (a = 1 OR b = 2)"))
        assert isinstance(nnf, ast.And)

    def test_double_negation_cancels(self):
        expr = parse_expression("a = 1")
        assert to_nnf(parse_expression("NOT NOT a = 1")) == expr

    @pytest.mark.parametrize(
        "source, flipped_op",
        [("a < 1", ">="), ("a <= 1", ">"), ("a > 1", "<="), ("a >= 1", "<"),
         ("a = 1", "<>"), ("a <> 1", "=")],
    )
    def test_comparison_flips(self, source, flipped_op):
        nnf = to_nnf(parse_expression(f"NOT {source}"))
        assert nnf.op == flipped_op

    def test_not_in_toggles(self):
        nnf = to_nnf(parse_expression("NOT a IN (1, 2)"))
        assert isinstance(nnf, ast.InList)
        assert nnf.negated

    def test_not_between_toggles(self):
        nnf = to_nnf(parse_expression("NOT a BETWEEN 1 AND 2"))
        assert nnf.negated

    def test_not_like_toggles(self):
        nnf = to_nnf(parse_expression("NOT v LIKE 'x%'"))
        assert nnf.negated

    def test_not_is_null_toggles(self):
        nnf = to_nnf(parse_expression("NOT v IS NULL"))
        assert nnf.negated


class TestDnfShape:
    def test_single_term(self):
        assert dnf_of("a = 1") == [[parse_expression("a = 1")]]

    def test_conjunction_stays_one_conjunct(self):
        conjuncts = dnf_of("a = 1 AND b = 2")
        assert len(conjuncts) == 1
        assert len(conjuncts[0]) == 2

    def test_disjunction_splits(self):
        conjuncts = dnf_of("a = 1 OR b = 2")
        assert len(conjuncts) == 2

    def test_distribution(self):
        conjuncts = dnf_of("a = 1 AND (b = 2 OR c = 3)")
        assert len(conjuncts) == 2
        assert all(len(c) == 2 for c in conjuncts)

    def test_cross_distribution(self):
        conjuncts = dnf_of("(a = 1 OR b = 2) AND (c = 3 OR d = 4)")
        assert len(conjuncts) == 4

    def test_true_absorbs(self):
        assert dnf_of("TRUE OR a = 1") == [[]]
        assert dnf_of("a = 1 OR TRUE") == [[]]

    def test_true_dropped_from_conjunct(self):
        conjuncts = dnf_of("TRUE AND a = 1")
        assert conjuncts == [[parse_expression("a = 1")]]

    def test_false_conjunct_dropped(self):
        assert dnf_of("FALSE AND a = 1") == []
        assert dnf_of("a = 1 AND FALSE") == []

    def test_false_disjunct_dropped(self):
        conjuncts = dnf_of("FALSE OR a = 1")
        assert conjuncts == [[parse_expression("a = 1")]]

    def test_duplicate_terms_deduped(self):
        conjuncts = dnf_of("a = 1 AND a = 1")
        assert len(conjuncts[0]) == 1

    def test_duplicate_conjuncts_deduped(self):
        conjuncts = dnf_of("a = 1 OR a = 1")
        assert len(conjuncts) == 1

    def test_blowup_guard_raises(self):
        # (a=1 OR a=2) AND (b=1 OR b=2) AND ... -> 2^6 conjuncts.
        text = " AND ".join(f"(c{i} = 1 OR c{i} = 2)" for i in range(6))
        with pytest.raises(DnfBlowupError):
            to_dnf(parse_expression(text), max_conjuncts=16)

    def test_blowup_error_carries_counts(self):
        text = "(a = 1 OR a = 2) AND (b = 1 OR b = 2)"
        with pytest.raises(DnfBlowupError) as info:
            to_dnf(parse_expression(text), max_conjuncts=3)
        assert info.value.limit == 3
        assert info.value.term_count > 3


class TestBasicTermsOf:
    def test_flattens_conjunction(self):
        terms = basic_terms_of(parse_expression("a = 1 AND b = 2 AND c = 3"))
        assert len(terms) == 3

    def test_single_term(self):
        assert len(basic_terms_of(parse_expression("a = 1"))) == 1

    def test_rejects_disjunction(self):
        from repro.errors import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError):
            basic_terms_of(parse_expression("a = 1 OR b = 2"))


# ---------------------------------------------------------------------------
# Property: DNF is semantically equivalent to the original predicate
# ---------------------------------------------------------------------------

_columns = ["a", "b", "c"]

_atoms = st.one_of(
    st.builds(
        lambda c, op, v: f"{c} {op} {v}",
        st.sampled_from(_columns),
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        st.integers(0, 4),
    ),
    st.builds(
        lambda c, vs: f"{c} IN ({', '.join(map(str, vs))})",
        st.sampled_from(_columns),
        st.lists(st.integers(0, 4), min_size=1, max_size=3),
    ),
    st.builds(
        lambda c, lo, hi: f"{c} BETWEEN {lo} AND {hi}",
        st.sampled_from(_columns),
        st.integers(0, 2),
        st.integers(2, 4),
    ),
    st.builds(lambda c: f"{c} IS NULL", st.sampled_from(_columns)),
)

_predicates = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.builds(lambda x, y: f"({x} AND {y})", inner, inner),
        st.builds(lambda x, y: f"({x} OR {y})", inner, inner),
        st.builds(lambda x: f"NOT ({x})", inner),
    ),
    max_leaves=10,
)

_tuples = st.fixed_dictionaries(
    {c: st.one_of(st.none(), st.integers(0, 4)) for c in _columns}
)


def _dnf_truth(conjuncts, lookup):
    """Evaluate a DNF (list of conjuncts of terms) under 3-valued logic."""
    saw_unknown = False
    for conjunct in conjuncts:
        value = True
        for term in conjunct:
            term_value = evaluate_truth(term, lookup)
            if term_value is False:
                value = False
                break
            if term_value is None:
                value = None
        if value is True:
            return True
        if value is None:
            saw_unknown = True
    return None if saw_unknown else False


class TestDnfEquivalenceProperty:
    @given(_predicates, _tuples)
    @settings(max_examples=300, deadline=None)
    def test_dnf_preserves_where_semantics(self, text, row):
        """A row passes WHERE under the original predicate iff it passes
        under the DNF. (We compare 'is True' because simplification may
        collapse UNKNOWN and FALSE, which WHERE treats identically.)"""
        expr = parse_expression(text)
        lookup = lambda ref: row[ref.name]  # noqa: E731
        original = evaluate_truth(expr, lookup)
        conjuncts = to_dnf(expr)
        converted = _dnf_truth(conjuncts, lookup)
        assert (original is True) == (converted is True)

    @given(_predicates)
    @settings(max_examples=100, deadline=None)
    def test_dnf_conjuncts_are_basic_terms(self, text):
        for conjunct in to_dnf(parse_expression(text)):
            for term in conjunct:
                assert not isinstance(term, (ast.And, ast.Or, ast.Not))
