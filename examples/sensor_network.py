#!/usr/bin/env python
"""Recency reporting beyond grids: a sensor network.

The paper's conclusion claims the technique fits "any system comprising a
large number of autonomous sources for which it is impractical to obtain
and store synchronous global snapshots" — sensor networks being its named
example. This script builds one from the library's public API only: battery
powered sensors report readings through gateways into a central database;
sensors sleep, radios drop out, gateways batch. Queries about the physical
world then need recency context to be read safely.

Run:  python examples/sensor_network.py
"""

import random

from repro import (
    Catalog,
    Column,
    FiniteDomain,
    MemoryBackend,
    RecencyMonitor,
    RecencyReporter,
    TableSchema,
    WatchRule,
)
from repro.core.statistics import format_interval

SENSORS = [f"sensor{i:02d}" for i in range(1, 21)]
ZONES = ("greenhouse", "cold_room", "loading_dock")


def build_catalog() -> Catalog:
    sensors = FiniteDomain(SENSORS)
    readings = TableSchema(
        "readings",
        [
            Column("sensor_id", "TEXT", sensors),
            Column("zone", "TEXT", FiniteDomain(ZONES)),
            Column("temperature", "REAL"),
            Column("reading_time", "TIMESTAMP"),
        ],
        source_column="sensor_id",
    )
    placements = TableSchema(
        "placements",
        [
            Column("sensor_id", "TEXT", sensors),
            Column("zone", "TEXT", FiniteDomain(ZONES)),
        ],
        source_column="sensor_id",
        # A sensor reports the zone it is placed in; the paper's Section
        # 3.4 constraint mechanism would let us encode placement rules.
    )
    return Catalog([readings, placements])


def simulate(backend: MemoryBackend, seed: int = 5) -> None:
    """A day of sensor life: periodic readings, with some sensors sleeping
    long stretches and one dying outright. (One of twenty: 5%, safely
    inside the z-score rule's Chebyshev ceiling of 1/9.)"""
    rng = random.Random(seed)
    dead = {"sensor07"}
    sleepy = {"sensor03", "sensor12"}

    for i, sensor in enumerate(SENSORS):
        zone = ZONES[i % len(ZONES)]
        backend.upsert_rows("placements", ("sensor_id",), [(sensor, zone)])
        last = 0.0
        t = 0.0
        while True:
            interval = 300.0 if sensor not in sleepy else 7200.0
            t += rng.uniform(0.8, 1.2) * interval
            if t >= 86_400.0:
                break
            if sensor in dead and t > 20_000.0:
                break
            base = {"greenhouse": 26.0, "cold_room": 4.0, "loading_dock": 15.0}[zone]
            backend.upsert_rows(
                "readings",
                ("sensor_id",),
                [(sensor, zone, base + rng.uniform(-2.0, 2.0), t)],
            )
            last = t
        backend.upsert_heartbeat(sensor, last)


def main() -> None:
    backend = MemoryBackend(build_catalog())
    simulate(backend)
    now = 86_400.0
    reporter = RecencyReporter(backend, create_temp_tables=False)

    print("Q: current temperature readings in the cold room")
    report = reporter.report(
        "SELECT R.sensor_id, R.temperature FROM readings R "
        "WHERE R.zone = 'cold_room'"
    )
    for sensor, temp in sorted(report.result.rows):
        print(f"  {sensor}: {temp:.1f} C")
    stats = report.statistics
    print(f"  relevant sensors : {len(report.relevant_source_ids)}")
    print(
        "  freshness        : least recent "
        f"{stats.least_recent.source_id}, spread "
        f"{format_interval(stats.inconsistency_bound)}"
    )
    if report.exceptional_sources:
        names = [s.source_id for s in report.exceptional_sources]
        print(f"  WARNING          : long-silent sensors also relevant: {names}")

    print("\nQ: is any greenhouse sensor reading above 27.5 C?")
    report = reporter.report(
        "SELECT R.sensor_id, R.temperature FROM readings R "
        "WHERE R.zone = 'greenhouse' AND R.temperature > 27.5"
    )
    print(f"  hits: {report.result.rows or 'none'}")
    print(
        f"  but: answer only as fresh as its {len(report.relevant_source_ids)} "
        "relevant sensors — an alarm could be sitting in a sleeping sensor"
    )

    print("\nQ: sensor12 specifically (a sleepy sensor)")
    report = reporter.report(
        "SELECT R.temperature FROM readings R WHERE R.sensor_id = 'sensor12'"
    )
    recency = {s.source_id: s.recency for s in report.normal_sources}
    recency.update({s.source_id: s.recency for s in report.exceptional_sources})
    age = now - recency["sensor12"]
    print(f"  reading: {report.result.rows[0][0]:.1f} C")
    print(f"  caveat : that reading's source last reported {format_interval(age)} ago")
    print(f"  minimal relevant set: {report.relevant_source_ids}")

    print("\nContinuous monitoring: alert on silent cold-room sensors")
    monitor = RecencyMonitor(backend, clock=lambda: now)
    monitor.add_rule(
        WatchRule(
            "cold-room-liveness",
            "SELECT R.sensor_id FROM readings R WHERE R.zone = 'cold_room'",
            max_staleness=3 * 3600.0,
            forbid_exceptional=True,
        )
    )
    for alert in monitor.check():
        print(f"  ALERT [{alert.kind}] {alert.message}")


if __name__ == "__main__":
    main()
