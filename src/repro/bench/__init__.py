"""Benchmark harness: regenerates every table and figure of Section 5.

* :mod:`repro.bench.metrics` — the paper's two metrics: response-time
  overhead and false-positive rate (fpr);
* :mod:`repro.bench.harness` — the timing protocol (the paper ran each
  query 11 times and averaged the last 10);
* :mod:`repro.bench.figures` — series builders and a CLI
  (``python -m repro.bench.figures {fig1,fig2,fpr,all}``) producing the
  rows/series behind Figure 1, Figure 2 and the fpr results;
* :mod:`repro.bench.reporting` — ASCII tables and CSV output.
"""

from repro.bench.metrics import false_positive_rate, overhead
from repro.bench.harness import time_call, MethodMeasurement, measure_methods
from repro.bench.reporting import ascii_table, write_csv

__all__ = [
    "false_positive_rate",
    "overhead",
    "time_call",
    "MethodMeasurement",
    "measure_methods",
    "ascii_table",
    "write_csv",
]
