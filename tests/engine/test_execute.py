"""Mini-engine execution tests: selection, projection, joins, aggregates."""

import pytest

from repro.catalog import Column, FiniteDomain, TableSchema
from repro.engine import Database, execute_sql
from repro.errors import EngineError


@pytest.fixture
def db(paper_catalog):
    database = Database(paper_catalog)
    database.insert_many(
        "activity",
        [
            ("m1", "idle", 100.0),
            ("m2", "busy", 200.0),
            ("m3", "idle", 300.0),
        ],
    )
    database.insert_many(
        "routing",
        [
            ("m1", "m3", 400.0),
            ("m2", "m3", 500.0),
        ],
    )
    database.insert_many("heartbeat", [("m1", 10.0), ("m2", 20.0), ("m3", 30.0)])
    return database


class TestSelection:
    def test_no_where(self, db):
        result = execute_sql(db, "SELECT mach_id FROM activity")
        assert len(result) == 3

    def test_equality_filter(self, db):
        result = execute_sql(db, "SELECT mach_id FROM activity WHERE value = 'idle'")
        assert sorted(result.column()) == ["m1", "m3"]

    def test_in_list(self, db):
        result = execute_sql(
            db, "SELECT mach_id FROM activity WHERE mach_id IN ('m1', 'm2')"
        )
        assert sorted(result.column()) == ["m1", "m2"]

    def test_range(self, db):
        result = execute_sql(
            db, "SELECT mach_id FROM activity WHERE event_time BETWEEN 150 AND 350"
        )
        assert sorted(result.column()) == ["m2", "m3"]

    def test_or_predicate(self, db):
        result = execute_sql(
            db,
            "SELECT mach_id FROM activity WHERE mach_id = 'm1' OR event_time > 250",
        )
        assert sorted(result.column()) == ["m1", "m3"]

    def test_not_predicate(self, db):
        result = execute_sql(
            db, "SELECT mach_id FROM activity WHERE NOT value = 'idle'"
        )
        assert result.column() == ["m2"]

    def test_constant_false(self, db):
        assert len(execute_sql(db, "SELECT mach_id FROM activity WHERE 1 = 2")) == 0

    def test_constant_true(self, db):
        assert len(execute_sql(db, "SELECT mach_id FROM activity WHERE 1 = 1")) == 3


class TestProjection:
    def test_star_single_table(self, db):
        result = execute_sql(db, "SELECT * FROM activity WHERE mach_id = 'm1'")
        assert result.columns == ["mach_id", "value", "event_time"]
        assert result.rows == [("m1", "idle", 100.0)]

    def test_star_join_prefixes_columns(self, db):
        result = execute_sql(
            db,
            "SELECT * FROM routing R, activity A WHERE R.neighbor = A.mach_id",
        )
        assert "r.mach_id" in result.columns
        assert "a.mach_id" in result.columns

    def test_column_order_preserved(self, db):
        result = execute_sql(db, "SELECT value, mach_id FROM activity")
        assert result.columns == ["value", "mach_id"]

    def test_alias_in_output(self, db):
        result = execute_sql(db, "SELECT mach_id AS machine FROM activity")
        assert result.columns == ["machine"]

    def test_distinct(self, db):
        result = execute_sql(db, "SELECT DISTINCT value FROM activity")
        assert sorted(result.column()) == ["busy", "idle"]

    def test_literal_projection(self, db):
        result = execute_sql(db, "SELECT 1 FROM activity LIMIT 1")
        assert result.rows == [(1,)]

    def test_limit(self, db):
        assert len(execute_sql(db, "SELECT mach_id FROM activity LIMIT 2")) == 2

    def test_scalar_helper(self, db):
        assert execute_sql(db, "SELECT COUNT(*) FROM activity").scalar() == 3

    def test_scalar_rejects_multi_row(self, db):
        with pytest.raises(EngineError):
            execute_sql(db, "SELECT mach_id FROM activity").scalar()


class TestJoins:
    def test_paper_q2(self, db):
        result = execute_sql(
            db,
            "SELECT A.mach_id FROM routing R, activity A "
            "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
            "AND R.neighbor = A.mach_id",
        )
        assert result.rows == [("m3",)]

    def test_cross_join(self, db):
        result = execute_sql(db, "SELECT A.mach_id FROM routing R, activity A")
        assert len(result) == 6

    def test_self_join(self, db):
        result = execute_sql(
            db,
            "SELECT R1.mach_id FROM routing R1, routing R2 "
            "WHERE R1.neighbor = R2.neighbor AND R1.mach_id <> R2.mach_id",
        )
        assert sorted(result.column()) == ["m1", "m2"]

    def test_join_with_null_never_matches(self, db):
        db.insert("routing", ("m3", None, 600.0))
        result = execute_sql(
            db,
            "SELECT R.mach_id FROM routing R, activity A "
            "WHERE R.neighbor = A.mach_id",
        )
        assert "m3" not in result.column()

    def test_three_way_join(self, db):
        result = execute_sql(
            db,
            "SELECT A.mach_id FROM routing R, activity A, heartbeat H "
            "WHERE R.neighbor = A.mach_id AND H.source_id = A.mach_id "
            "AND R.mach_id = 'm1'",
        )
        assert result.rows == [("m3",)]

    def test_non_equi_join(self, db):
        result = execute_sql(
            db,
            "SELECT A.mach_id FROM activity A, heartbeat H "
            "WHERE H.recency > A.event_time",
        )
        assert result.rows == []

    def test_general_boolean_join(self, db):
        # OR across relations exercises the non-conjunctive path.
        result = execute_sql(
            db,
            "SELECT A.mach_id FROM routing R, activity A "
            "WHERE R.neighbor = A.mach_id OR A.mach_id = 'm1'",
        )
        assert sorted(set(result.column())) == ["m1", "m3"]


class TestAggregates:
    def test_count_star(self, db):
        assert execute_sql(db, "SELECT COUNT(*) FROM activity").scalar() == 3

    def test_count_with_filter(self, db):
        assert (
            execute_sql(
                db, "SELECT COUNT(*) FROM activity WHERE value = 'idle'"
            ).scalar()
            == 2
        )

    def test_count_column_skips_nulls(self, db):
        db.insert("routing", ("m3", None, 600.0))
        assert execute_sql(db, "SELECT COUNT(neighbor) FROM routing").scalar() == 2

    def test_count_distinct(self, db):
        assert execute_sql(db, "SELECT COUNT(DISTINCT value) FROM activity").scalar() == 2

    def test_sum_avg_min_max(self, db):
        assert execute_sql(db, "SELECT SUM(event_time) FROM activity").scalar() == 600.0
        assert execute_sql(db, "SELECT AVG(event_time) FROM activity").scalar() == 200.0
        assert execute_sql(db, "SELECT MIN(event_time) FROM activity").scalar() == 100.0
        assert execute_sql(db, "SELECT MAX(event_time) FROM activity").scalar() == 300.0

    def test_aggregates_on_empty_input(self, db):
        assert (
            execute_sql(db, "SELECT COUNT(*) FROM activity WHERE 1 = 2").scalar() == 0
        )
        assert (
            execute_sql(db, "SELECT MAX(event_time) FROM activity WHERE 1 = 2").scalar()
            is None
        )

    def test_sum_of_strings_rejected(self, db):
        with pytest.raises(EngineError):
            execute_sql(db, "SELECT SUM(value) FROM activity")

    def test_group_by(self, db):
        result = execute_sql(
            db, "SELECT value, COUNT(*) FROM activity GROUP BY value"
        )
        assert dict(result.rows) == {"idle": 2, "busy": 1}

    def test_group_by_preserves_first_seen_order(self, db):
        result = execute_sql(db, "SELECT value, COUNT(*) FROM activity GROUP BY value")
        assert [r[0] for r in result.rows] == ["idle", "busy"]

    def test_plain_column_without_group_by_rejected(self, db):
        with pytest.raises(EngineError):
            execute_sql(db, "SELECT mach_id, COUNT(*) FROM activity")

    def test_min_on_strings(self, db):
        assert execute_sql(db, "SELECT MIN(value) FROM activity").scalar() == "busy"
