"""The structured event log: typed, trace-correlated, ring-buffered.

Spans answer "how long did this take", metrics answer "how often / how
much"; neither answers "what exactly happened, in order, around the time
things went wrong". An :class:`Event` is one discrete, load-bearing
occurrence — a sniffer retry, a breaker opening, a source degrading, a
fault injection, a z-score outlier in a report — recorded with:

* a dotted **name** from the canonical set below (free-form names are
  allowed but the instrumented subsystems stick to the constants);
* the **wall clock** and, when the emitter lives in simulated time, the
  **domain time** ``t``;
* the **source** (machine id) the event concerns, when there is one;
* a **severity** (``debug`` / ``info`` / ``warning`` / ``error``);
* the **span id** of the emitting thread's innermost open span, so events
  interleave exactly into the trace timeline;
* free-form JSON-serializable **attributes**.

Events land in an :class:`EventLog` — a lock-protected ring buffer
(:class:`collections.deque` with ``maxlen``) so a week-long simulation
cannot grow without bound — and are fanned out to subscribed listeners
(the :class:`~repro.obs.flight.FlightRecorder` is one). The
:class:`NullEventLog` is the zero-cost stand-in while telemetry is
disabled, mirroring ``NullTracer``/``NullRegistry``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, IO, Iterable, List, Optional

from repro.errors import TracError

# -- canonical event names --------------------------------------------------
#
# Instrumented subsystems emit these; the flight recorder's default trigger
# set and the docs refer to them by constant.

EVT_SNIFFER_RETRY = "sniffer.retry"
EVT_SNIFFER_RESTART = "sniffer.restart"
EVT_BREAKER_TRANSITION = "breaker.transition"
EVT_SOURCE_DEGRADED = "source.degraded"
EVT_WATCHDOG_SILENCE = "watchdog.silence"
EVT_FAULT_INJECTED = "fault.injected"
EVT_REPORT_EXCEPTIONAL = "report.exceptional"
EVT_QUERY_SLOW = "query.slow"
EVT_CACHE_EVICTED = "cache.evicted"
EVT_CACHE_CLEARED = "cache.cleared"
EVT_INCREMENTAL_INVALIDATED = "incremental.invalidated"
EVT_SERVE_REJECTED = "serve.rejected"
EVT_MONITOR_ALERT = "monitor.alert"
EVT_SLO_BREACH = "slo.breach"
EVT_FLIGHT_DUMPED = "flight.dumped"
EVT_CHECKPOINT = "durability.checkpoint"
EVT_CHECKPOINT_FAILED = "durability.checkpoint_failed"
EVT_RECOVERED = "durability.recovered"
EVT_WAL_TORN = "durability.torn_tail"
EVT_SHARD_DEAD = "federation.shard_dead"
EVT_SHARD_REJOINED = "federation.shard_rejoined"
EVT_SHARD_RPC_RETRY = "federation.rpc_retry"
EVT_SHARD_HEDGE = "federation.hedge"
EVT_FEDERATION_PARTIAL = "federation.partial_report"

SEVERITIES = ("debug", "info", "warning", "error")

#: Default ring capacity: enough for hours of chaos at typical event rates.
DEFAULT_CAPACITY = 4096


class Event:
    """One recorded occurrence. Obtain via :meth:`EventLog.emit`."""

    __slots__ = (
        "seq",
        "name",
        "wall",
        "t",
        "source",
        "severity",
        "span_id",
        "trace_id",
        "attributes",
    )

    def __init__(
        self,
        seq: int,
        name: str,
        wall: float,
        t: Optional[float],
        source: Optional[str],
        severity: str,
        span_id: Optional[int],
        attributes: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> None:
        self.seq = seq
        self.name = name
        self.wall = wall
        self.t = t
        self.source = source
        self.severity = severity
        self.span_id = span_id
        self.trace_id = trace_id
        self.attributes = attributes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (one JSONL line per event). ``trace_id``
        (32-hex, or null) is additive on top of the original schema."""
        return {
            "seq": self.seq,
            "name": self.name,
            "wall": self.wall,
            "t": self.t,
            "source": self.source,
            "severity": self.severity,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        where = f" source={self.source}" if self.source else ""
        when = f" t={self.t:g}" if self.t is not None else ""
        return f"Event(#{self.seq} {self.name}{where}{when} [{self.severity}])"


class EventLog:
    """Thread-safe ring buffer of :class:`Event` objects with listeners.

    Listeners are called synchronously from the emitting thread, outside
    the buffer lock (a listener may itself read the log). A listener that
    raises is dropped silently from that emission — observability must
    never take down the observed system.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise TracError(f"event log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._listeners: List[Callable[[Event], None]] = []

    def emit(
        self,
        name: str,
        t: Optional[float] = None,
        source: Optional[str] = None,
        severity: str = "info",
        span_id: Optional[int] = None,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> Event:
        """Record one event; returns it after fanning out to listeners."""
        if severity not in SEVERITIES:
            raise TracError(
                f"unknown event severity {severity!r}; expected one of {SEVERITIES}"
            )
        with self._lock:
            self._seq += 1
            event = Event(
                self._seq,
                name,
                time.time(),
                t,
                source,
                severity,
                span_id,
                attributes,
                trace_id=trace_id,
            )
            self._events.append(event)
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                pass
        return event

    # -- listeners ----------------------------------------------------------

    def subscribe(self, listener: Callable[[Event], None]) -> None:
        """Register ``listener`` to receive every future event."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[Event], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> List[Event]:
        """Every retained event, oldest first."""
        with self._lock:
            return list(self._events)

    def tail(self, n: int) -> List[Event]:
        """The most recent ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        with self._lock:
            return list(self._events)[-n:]

    def counts_by_name(self) -> Dict[str, int]:
        """Retained-event counts keyed by event name."""
        out: Dict[str, int] = {}
        for event in self.snapshot():
            out[event.name] = out.get(event.name, 0) + 1
        return out

    def for_trace(self, trace_id: str) -> List[Event]:
        """Retained events stamped with ``trace_id`` (32-hex), oldest first."""
        return [e for e in self.snapshot() if e.trace_id == trace_id]

    @property
    def total(self) -> int:
        """Events ever emitted (including ones the ring has dropped)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        with self._lock:
            return self._seq - len(self._events)

    def clear(self) -> None:
        """Discard retained events (the sequence counter keeps counting)."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"EventLog({len(self)}/{self.capacity} retained, total={self.total})"


class NullEventLog:
    """Inert event log for disabled telemetry: emits nothing, stores
    nothing, notifies nobody. One shared instance suffices."""

    __slots__ = ()

    capacity = 0
    total = 0
    dropped = 0

    def emit(
        self, name, t=None, source=None, severity="info", span_id=None,
        trace_id=None, **attributes,
    ):
        return None

    def subscribe(self, listener) -> None:
        pass

    def unsubscribe(self, listener) -> None:
        pass

    def snapshot(self) -> List[Event]:
        return []

    def tail(self, n: int) -> List[Event]:
        return []

    def counts_by_name(self) -> Dict[str, int]:
        return {}

    def for_trace(self, trace_id: str) -> List[Event]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Shared no-op event log used by disabled telemetry.
NULL_EVENT_LOG = NullEventLog()


# -- JSONL export -----------------------------------------------------------


def write_events_jsonl(events: Iterable[Event], fp: IO[str]) -> int:
    """Stream events to ``fp`` as newline-terminated JSON objects;
    returns the number of lines written."""
    count = 0
    for event in events:
        fp.write(json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":")))
        fp.write("\n")
        count += 1
    return count


def events_to_jsonl(events: Iterable[Event]) -> str:
    """One compact JSON object per event, newline-separated (no trailing
    newline, mirroring :func:`repro.obs.export.spans_to_jsonl`)."""
    import io

    buffer = io.StringIO()
    write_events_jsonl(events, buffer)
    return buffer.getvalue().removesuffix("\n")


def events_from_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse an event JSONL dump back into event dicts."""
    out: List[Dict[str, object]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise TracError(f"malformed event JSONL at line {number}: {exc}") from exc
        if not isinstance(record, dict):
            raise TracError(f"event JSONL line {number} is not an object")
        out.append(record)
    return out
