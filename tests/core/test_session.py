"""Session temp-table lifecycle tests (Section 4.3)."""

import pytest

from repro.core.report import RecencyReporter
from repro.core.session import Session
from repro.core.statistics import SourceRecency

QUERY = "SELECT mach_id FROM activity WHERE value = 'idle'"


class TestNaming:
    def test_names_are_unique_and_paired(self, paper_memory_backend):
        session = Session(paper_memory_backend)
        first = session.next_table_names()
        second = session.next_table_names()
        assert first.normal != second.normal
        assert first.normal.startswith("sys_temp_a")
        assert first.exceptional.startswith("sys_temp_e")
        assert first.normal[len("sys_temp_a"):] == first.exceptional[len("sys_temp_e"):]


class TestLifecycle:
    def test_materialize_creates_both_tables(self, paper_memory_backend):
        session = Session(paper_memory_backend)
        names = session.next_table_names()
        with paper_memory_backend.snapshot() as snap:
            session.materialize(
                snap,
                names,
                [SourceRecency("m1", 1.0)],
                [SourceRecency("m2", 2.0)],
            )
        assert set(session.temp_tables) == {names.normal, names.exceptional}
        assert paper_memory_backend.execute(f"SELECT sid FROM {names.normal}").rows == [("m1",)]

    def test_close_drops_everything(self, paper_memory_backend):
        session = Session(paper_memory_backend)
        names = session.next_table_names()
        with paper_memory_backend.snapshot() as snap:
            session.materialize(snap, names, [], [])
        session.close()
        assert session.temp_tables == []
        assert paper_memory_backend.list_temp_tables() == []

    def test_drop_single_table_early(self, paper_memory_backend):
        session = Session(paper_memory_backend)
        names = session.next_table_names()
        with paper_memory_backend.snapshot() as snap:
            session.materialize(snap, names, [], [])
        session.drop(names.exceptional)
        assert names.exceptional not in session.temp_tables
        assert names.normal in session.temp_tables

    def test_context_manager(self, paper_memory_backend):
        with Session(paper_memory_backend) as session:
            names = session.next_table_names()
            with paper_memory_backend.snapshot() as snap:
                session.materialize(snap, names, [], [])
        assert paper_memory_backend.list_temp_tables() == []

    def test_temp_tables_persist_across_reports(self, paper_memory_backend):
        """Section 4.3: the temp table persists until the session ends, not
        just until the next query."""
        reporter = RecencyReporter(paper_memory_backend)
        first = reporter.report(QUERY)
        reporter.report(QUERY)
        rows = paper_memory_backend.execute(
            f"SELECT sid FROM {first.temp_tables.normal}"
        ).rows
        assert len(rows) == 10


class TestPersistTempTable:
    def test_save_as_survives_session_close(self, paper_memory_backend):
        reporter = RecencyReporter(paper_memory_backend)
        report = reporter.report(QUERY)
        reporter.session.save_as(report.temp_tables.normal, "kept_recency")
        reporter.close()
        rows = paper_memory_backend.execute("SELECT sid FROM kept_recency").rows
        assert len(rows) == 10

    def test_save_as_on_sqlite(self, paper_sqlite_backend):
        reporter = RecencyReporter(paper_sqlite_backend)
        report = reporter.report(QUERY)
        reporter.session.save_as(report.temp_tables.exceptional, "kept_exceptional")
        reporter.close()
        rows = paper_sqlite_backend.execute("SELECT sid FROM kept_exceptional").rows
        assert rows == [("m2",)]

    def test_unknown_temp_table_rejected(self, paper_memory_backend):
        from repro.errors import BackendError

        session = Session(paper_memory_backend)
        with pytest.raises(BackendError):
            session.save_as("sys_temp_a_nope", "whatever")

    def test_duplicate_permanent_name_rejected_memory(self, paper_memory_backend):
        from repro.errors import BackendError

        reporter = RecencyReporter(paper_memory_backend)
        report = reporter.report(QUERY)
        reporter.session.save_as(report.temp_tables.normal, "kept_twice")
        with pytest.raises(BackendError):
            reporter.session.save_as(report.temp_tables.normal, "kept_twice")
