"""IncrementalMaintainer unit tests: eligibility, maintenance, invalidation."""

import pytest

from repro import Catalog, Column, FiniteDomain, MemoryBackend, TableSchema
from repro.core.relevance import build_naive_plan
from repro.core.report import RecencyReporter
from repro.core.statistics import SourceRecency, mean_stddev
from repro.errors import TracError
from repro.incremental import IncrementalMaintainer, WelfordAccumulator, plan_streamable
from repro.obs.instrument import (
    INCREMENTAL_HITS,
    INCREMENTAL_INVALIDATIONS,
    INCREMENTAL_MISSES,
    Telemetry,
)

MACHINES = tuple(f"m{i}" for i in range(1, 6))


def catalog():
    return Catalog(
        [
            TableSchema(
                "activity",
                [
                    Column("mach_id", "TEXT", FiniteDomain(MACHINES)),
                    Column("value", "TEXT", FiniteDomain({"idle", "busy"})),
                ],
                source_column="mach_id",
            ),
            TableSchema(
                "routing",
                [
                    Column("mach_id", "TEXT", FiniteDomain(MACHINES)),
                    Column("neighbor", "TEXT", FiniteDomain(MACHINES)),
                ],
                source_column="mach_id",
            ),
        ]
    )


@pytest.fixture
def backend():
    b = MemoryBackend(catalog())
    b.insert_rows("activity", [("m1", "idle"), ("m2", "busy"), ("m3", "idle")])
    b.insert_rows("routing", [("m1", "m2")])
    for i, mid in enumerate(MACHINES):
        b.upsert_heartbeat(mid, 100.0 + i)
    return b


@pytest.fixture
def maintainer(backend):
    return IncrementalMaintainer(backend)


@pytest.fixture
def reporter(backend, maintainer):
    return RecencyReporter(
        backend,
        create_temp_tables=False,
        incremental=maintainer,
        incremental_verify=True,
    )


HOT = "SELECT mach_id FROM activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'"


class TestStreamability:
    def test_source_only_predicate_is_streamable(self, reporter):
        assert plan_streamable(reporter.plan_for(HOT))

    def test_no_where_is_streamable(self, reporter):
        assert plan_streamable(reporter.plan_for("SELECT mach_id FROM activity"))

    def test_join_predicate_is_not_streamable(self, reporter):
        plan = reporter.plan_for(
            "SELECT a.mach_id FROM activity a, routing r WHERE a.mach_id = r.neighbor"
        )
        assert not plan_streamable(plan)

    def test_naive_plan_is_not_streamable(self):
        assert not plan_streamable(build_naive_plan())


class TestWelford:
    def test_matches_batch_mean_stddev(self):
        values = [3.0, 7.5, 1.25, 9.0, 4.0]
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        mean, stddev = mean_stddev(values)
        assert acc.count == len(values)
        assert acc.mean == pytest.approx(mean)
        assert acc.stddev() == pytest.approx(stddev)

    def test_remove_matches_recompute(self):
        acc = WelfordAccumulator()
        for v in (3.0, 7.5, 1.25, 9.0):
            acc.add(v)
        acc.remove(7.5)
        mean, stddev = mean_stddev([3.0, 1.25, 9.0])
        assert acc.mean == pytest.approx(mean)
        assert acc.stddev() == pytest.approx(stddev)

    def test_remove_to_empty_resets(self):
        acc = WelfordAccumulator()
        acc.add(5.0)
        acc.remove(5.0)
        assert (acc.count, acc.mean, acc.m2) == (0, 0.0, 0.0)

    def test_replace(self):
        acc = WelfordAccumulator()
        for v in (1.0, 2.0, 3.0):
            acc.add(v)
        acc.replace(2.0, 9.0)
        mean, stddev = mean_stddev([1.0, 9.0, 3.0])
        assert acc.mean == pytest.approx(mean)
        assert acc.stddev() == pytest.approx(stddev)


class TestFetchRegister:
    def test_miss_then_hit(self, reporter, maintainer):
        assert reporter.report(HOT).incremental == "miss"
        report = reporter.report(HOT)
        assert report.incremental == "hit"
        assert sorted(report.relevant_source_ids) == ["m1", "m2"]
        assert maintainer.stats()["hits"] == 1

    def test_upsert_updates_materialized_value(self, backend, reporter):
        reporter.report(HOT)
        backend.upsert_heartbeat("m2", 555.0)
        report = reporter.report(HOT)
        assert report.incremental == "hit"
        recencies = {
            s.source_id: s.recency
            for s in report.normal_sources + report.exceptional_sources
        }
        assert recencies["m2"] == 555.0

    def test_new_member_source_appears(self, backend, reporter):
        backend.delete_rows("heartbeat", ["source_id"], [("m1",)])
        reporter.report(HOT)
        backend.upsert_heartbeat("m1", 50.0)  # first sighting after register
        report = reporter.report(HOT)
        assert report.incremental == "hit"
        assert "m1" in report.relevant_source_ids

    def test_non_member_source_stays_out(self, backend, reporter):
        reporter.report(HOT)
        backend.upsert_heartbeat("m4", 500.0)  # not in the IN-list
        report = reporter.report(HOT)
        assert report.incremental == "hit"
        assert "m4" not in report.relevant_source_ids

    def test_bypass_for_join_plans(self, reporter):
        sql = (
            "SELECT a.mach_id FROM activity a, routing r "
            "WHERE a.mach_id = r.neighbor"
        )
        assert reporter.report(sql).incremental == "bypass"
        assert reporter.report(sql).incremental == "bypass"

    def test_bypass_for_naive_method(self, reporter):
        assert reporter.report(HOT, method="naive").incremental == "bypass"

    def test_lru_evicts_oldest_entry(self, backend):
        maintainer = IncrementalMaintainer(backend, maxsize=2)
        reporter = RecencyReporter(
            backend, create_temp_tables=False, incremental=maintainer
        )
        queries = [
            f"SELECT mach_id FROM activity WHERE mach_id = 'm{i}'" for i in (1, 2, 3)
        ]
        for sql in queries:
            assert reporter.report(sql).incremental == "miss"
        assert reporter.report(queries[0]).incremental == "miss"  # evicted
        assert reporter.report(queries[2]).incremental == "hit"


class TestInvalidation:
    def test_delete_removes_tombstoned_source(self, backend, reporter, maintainer):
        reporter.report(HOT)
        backend.delete_rows("heartbeat", ["source_id"], [("m2",)])
        report = reporter.report(HOT)
        assert report.incremental == "hit"
        assert "m2" not in report.relevant_source_ids
        assert maintainer.stats()["invalidations"] == 1

    def test_clear_empties_materialized_sets(self, backend, reporter):
        reporter.report(HOT)
        backend.delete_all("heartbeat")
        report = reporter.report(HOT)
        assert report.incremental == "hit"
        assert report.relevant_source_ids == set()

    def test_non_source_keyed_upsert_resyncs(self, backend, reporter, maintainer):
        reporter.report(HOT)
        backend.upsert_rows("heartbeat", ["source_id", "recency"], [("m1", 7.0)])
        assert maintainer.stats()["entries"] == 0  # entries dropped
        assert reporter.report(HOT).incremental == "miss"
        assert reporter.report(HOT).incremental == "hit"

    def test_non_string_source_id_degrades(self, backend, reporter, maintainer):
        reporter.report(HOT)
        backend.insert_rows("heartbeat", [(42, 1.0)])
        assert maintainer.degraded
        assert reporter.report(HOT).incremental == "bypass"

    def test_clear_recovers_from_degraded(self, backend, reporter, maintainer):
        backend.insert_rows("heartbeat", [(42, 1.0)])
        maintainer.resync()
        assert maintainer.degraded
        backend.delete_all("heartbeat")
        assert not maintainer.degraded
        backend.upsert_heartbeat("m1", 5.0)
        assert reporter.report(HOT).incremental == "miss"
        assert reporter.report(HOT).incremental == "hit"


class TestPlumbing:
    def test_requires_listener_capable_backend(self):
        with pytest.raises(TracError):
            IncrementalMaintainer(object())

    def test_stats_shape(self, maintainer):
        stats = maintainer.stats()
        assert set(stats) == {
            "entries",
            "maxsize",
            "hits",
            "misses",
            "bypasses",
            "updates",
            "invalidations",
            "hit_rate",
            "degraded",
        }

    def test_hit_rate(self, reporter, maintainer):
        reporter.report(HOT)
        reporter.report(HOT)
        reporter.report(HOT)
        assert maintainer.stats()["hit_rate"] == pytest.approx(2 / 3)

    def test_verdict_stamped_on_profile(self):
        tel = Telemetry()
        backend = MemoryBackend(catalog(), telemetry=tel)
        backend.insert_rows("activity", [("m1", "idle"), ("m2", "busy")])
        backend.upsert_heartbeat("m1", 100.0)
        backend.upsert_heartbeat("m2", 101.0)
        maintainer = IncrementalMaintainer(backend, telemetry=tel)
        reporter = RecencyReporter(
            backend, telemetry=tel, create_temp_tables=False, incremental=maintainer
        )
        reporter.report(HOT)
        report = reporter.report(HOT)
        assert report.profile is not None
        assert report.profile.incremental == "hit"
        assert report.profile.to_dict()["incremental"] == "hit"

    def test_telemetry_counters(self, backend):
        tel = Telemetry()
        maintainer = IncrementalMaintainer(backend, telemetry=tel)
        reporter = RecencyReporter(
            backend, telemetry=tel, create_temp_tables=False, incremental=maintainer
        )
        reporter.report(HOT)
        reporter.report(HOT)
        backend.delete_rows("heartbeat", ["source_id"], [("m1",)])
        assert tel.metrics.counter(INCREMENTAL_HITS).value == 1
        assert tel.metrics.counter(INCREMENTAL_MISSES, {"outcome": "miss"}).value == 1
        assert (
            tel.metrics.counter(INCREMENTAL_INVALIDATIONS, {"reason": "delete"}).value
            == 1
        )

    def test_entry_stats_track_welford(self, backend, reporter, maintainer):
        reporter.report(HOT)
        (entry,) = maintainer.entry_stats()
        mean, stddev = mean_stddev([100.0, 101.0])  # m1, m2 heartbeats
        assert entry["sources"] == 2
        assert entry["mean"] == pytest.approx(mean)
        assert entry["stddev"] == pytest.approx(stddev)

    def test_materialized_equals_sorted_sources(self, backend, maintainer, reporter):
        reporter.report(HOT)
        verdict, sources = maintainer.fetch(reporter.plan_for(HOT))
        assert verdict == "hit"
        assert sources == [
            SourceRecency("m1", 100.0),
            SourceRecency("m2", 101.0),
        ]
