"""Hierarchical tracing spans with a thread-safe in-process collector.

A :class:`Span` is one timed region of work: a name, monotonic start/end
times, a parent (for nesting), and free-form attributes. Spans are created
through a :class:`Tracer`, either as a context manager::

    with tracer.span("report", method="focused") as span:
        span.set_attribute("rows", 42)

or as a decorator::

    @tracer.trace("plan")
    def plan_for(sql): ...

Each thread has its own span stack, so concurrently recording threads nest
independently; finished spans land in one shared, lock-protected list in
completion order. Timing uses :func:`time.perf_counter` (monotonic, never
jumps backwards); :attr:`Span.start_wall` additionally records the wall
clock so exported spans can be correlated with external logs.

The :class:`NullTracer` is the zero-cost stand-in used while telemetry is
disabled: ``span()`` hands back one shared no-op context manager and nothing
is ever recorded.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One timed region. Obtain via :meth:`Tracer.span`; do not construct."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "start_wall",
        "attributes",
    )

    def __init__(self, name: str, span_id: int, parent_id: Optional[int]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.start_wall = time.time()
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (consumed by the JSONL exporter)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1000:.3f}ms" if self.finished else "open"
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, {state})"


class _SpanContext:
    """Context manager that opens a span on entry and finishes it on exit.

    The span is allocated lazily in ``__enter__`` so an unused context (a
    phase that never runs) records nothing and touches no tracer state.
    """

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is not None:
            self._tracer._finish(self._span, exc)
            self._span = None


class NullSpan:
    """Inert span: every method is a no-op. One shared instance suffices."""

    __slots__ = ()

    name = ""
    span_id = -1
    parent_id = None
    duration = 0.0
    finished = False
    attributes: Dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared no-op span/context manager used on the disabled path.
NULL_SPAN = NullSpan()


class Tracer:
    """Creates spans and collects them once finished. Thread-safe."""

    def __init__(self, max_spans: int = 100_000) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: List[Span] = []
        self._local = threading.local()
        self._dropped = 0
        self.max_spans = max_spans

    # -- recording ----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """A context manager that, on entry, opens a child span of the
        calling thread's innermost open span."""
        return _SpanContext(self, name, attributes)

    def _open(self, name: str, attributes: Dict[str, Any]) -> Span:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(name, next(self._ids), parent_id)
        if attributes:
            span.attributes.update(attributes)
        stack.append(span)
        return span

    def _finish(self, span: Span, exc: Optional[BaseException]) -> None:
        span.end = time.perf_counter()
        if exc is not None:
            span.attributes["error"] = type(exc).__name__
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop the span from wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            if len(self._finished) < self.max_spans:
                self._finished.append(span)
            else:
                self._dropped += 1

    def trace(self, name: Optional[str] = None) -> Callable:
        """Decorator form: wraps the function body in a span."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- inspection ---------------------------------------------------------

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished_spans(self) -> List[Span]:
        """Snapshot of finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    @property
    def dropped(self) -> int:
        """Spans discarded because the collector hit ``max_spans``."""
        with self._lock:
            return self._dropped

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.finished_spans() if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.finished_spans() if s.parent_id is None]

    def walk(self, root: Span, depth: int = 0) -> Iterator[tuple]:
        """Yield ``(span, depth)`` over a finished span tree, children in
        completion order."""
        yield root, depth
        for child in self.children_of(root):
            yield from self.walk(child, depth + 1)

    def reset(self) -> None:
        """Discard every collected span (open spans keep recording)."""
        with self._lock:
            self._finished.clear()
            self._dropped = 0


class NullTracer:
    """Tracer that records nothing; ``span()`` returns the shared
    :data:`NULL_SPAN` so the disabled path allocates nothing."""

    __slots__ = ()

    max_spans = 0
    dropped = 0

    def span(self, name: str, **attributes: Any) -> NullSpan:
        return NULL_SPAN

    def trace(self, name: Optional[str] = None) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def current_span(self) -> None:
        return None

    def finished_spans(self) -> List[Span]:
        return []

    def children_of(self, span: Span) -> List[Span]:
        return []

    def roots(self) -> List[Span]:
        return []

    def walk(self, root: Span, depth: int = 0) -> Iterator[tuple]:
        return iter(())

    def reset(self) -> None:
        pass


#: Shared no-op tracer used by disabled telemetry.
NULL_TRACER = NullTracer()
