#!/usr/bin/env python
"""Open-loop load generator for the trac serving front end.

Drives ``POST /v1/query`` on a running observatory (``trac serve`` or any
:class:`~repro.obs.server.ObservatoryServer` with a query service wired)
at a **fixed arrival rate** — requests are scheduled at ``t0 + i/rate``
regardless of how fast responses come back, and latency is measured from
the scheduled arrival, so server-side queueing shows up in the tail
instead of silently slowing the generator down (the coordinated-omission
trap closed-loop generators fall into).

Examples::

    # 200 req/s for 10 s against a local trac serve
    python tools/loadgen.py --url http://127.0.0.1:9464 \
        --sql "SELECT mach_id FROM activity" --rate 200 --duration 10

    # two tenants, JSON artifact for CI
    python tools/loadgen.py --url http://127.0.0.1:9464 \
        --sql "SELECT mach_id FROM activity" --tenants alice,bob \
        --rate 300 --duration 10 --json latency.json

The JSON document contains the full latency percentiles and status-class
counts (the ``serve-load`` CI job uploads it as a build artifact).
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.loadgen import LoadgenConfig, run_load  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True, help="observatory base URL")
    parser.add_argument("--sql", required=True, help="query to POST to /v1/query")
    parser.add_argument("--rate", type=float, default=100.0, help="arrivals per second")
    parser.add_argument("--duration", type=float, default=5.0, help="seconds of load")
    parser.add_argument(
        "--tenants",
        default="default",
        help="comma-separated tenant ids, assigned round-robin",
    )
    parser.add_argument(
        "--senders", type=int, default=32, help="sender threads (open-loop slack)"
    )
    parser.add_argument("--timeout", type=float, default=10.0, help="per-request timeout")
    parser.add_argument("--method", default=None, help="report method (focused/naive)")
    parser.add_argument("--json", default=None, help="write the result document here")
    args = parser.parse_args()

    config = LoadgenConfig(
        url=args.url.rstrip("/") + "/v1/query",
        sql=args.sql,
        rate=args.rate,
        duration=args.duration,
        tenants=[t.strip() for t in args.tenants.split(",") if t.strip()],
        senders=args.senders,
        timeout=args.timeout,
        method=args.method,
    )
    result = run_load(config)
    doc = result.to_dict()

    latency = doc["latency_ms"]
    print(f"offered   {config.rate:g} req/s for {config.duration:g}s "
          f"({doc['requests']} requests, {config.senders} senders)")
    print(f"ok        {doc['ok']}  (achieved {doc['achieved_ok_per_s']:g} ok/s)")
    print(f"shed 429  {doc['rejected_429']}")
    print(f"5xx       {doc['server_errors']}   "
          f"refused {doc['refused']}   timeout {doc['timeouts']}   "
          f"other-transport {doc['transport_errors'] - doc['refused'] - doc['timeouts']}")
    for name in ("p50", "p90", "p99", "max"):
        value = latency[name]
        print(f"{name:<9} {value:.2f} ms" if value is not None else f"{name:<9} -")
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
