"""Synthetic workloads reproducing Section 5.2's experimental setup.

The paper fixed ``data_ratio x num_sources = 10,000,000`` rows in the
Activity table and swept the data ratio from 10 to 1,000,000 by factors of
ten. This package generates that data (at a configurable total), the
Heartbeat and Routing tables that go with it, and the four test queries
Q1–Q4.
"""

from repro.workload.generator import (
    WorkloadConfig,
    WorkloadData,
    generate_workload,
    load_workload,
    workload_catalog,
    source_name,
)
from repro.workload.queries import (
    PAPER_MACHINE_INDEXES,
    query_machine_indexes,
    query_machines,
    q1_selective_single,
    q2_nonselective_single,
    q3_selective_join,
    q4_nonselective_join,
    paper_queries,
)
from repro.workload.sweep import SweepConfig, sweep_points

__all__ = [
    "WorkloadConfig",
    "WorkloadData",
    "generate_workload",
    "load_workload",
    "workload_catalog",
    "source_name",
    "PAPER_MACHINE_INDEXES",
    "query_machine_indexes",
    "query_machines",
    "q1_selective_single",
    "q2_nonselective_single",
    "q3_selective_join",
    "q4_nonselective_join",
    "paper_queries",
    "SweepConfig",
    "sweep_points",
]
