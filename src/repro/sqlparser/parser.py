"""Recursive-descent parser for the SPJ subset.

Grammar (informal)::

    query       := SELECT [DISTINCT] select_list FROM table_list
                   [WHERE expr] [GROUP BY column_list] [';']
    select_list := '*' | select_item (',' select_item)*
    select_item := aggregate | column_ref [[AS] alias]
    aggregate   := (COUNT|SUM|AVG|MIN|MAX) '(' ['*' | [DISTINCT] column_ref] ')'
    table_list  := table_ref (',' table_ref)*
    table_ref   := identifier [[AS] alias]
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | primary
    primary     := '(' expr ')' | predicate | TRUE | FALSE
    predicate   := operand comparison operand
                 | operand [NOT] IN '(' literal (',' literal)* ')'
                 | operand [NOT] BETWEEN operand AND operand
                 | operand [NOT] LIKE string
                 | operand IS [NOT] NULL
    operand     := literal | column_ref
    column_ref  := identifier ['.' identifier]
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.sqlparser import ast
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import AGGREGATES, Token, TokenType


def parse_query(text: str) -> ast.Query:
    """Parse a full SELECT statement into a :class:`repro.sqlparser.ast.Query`."""
    parser = _Parser(tokenize(text))
    query = parser.query()
    parser.expect_end()
    return query


def parse_expression(text: str) -> ast.Expr:
    """Parse a stand-alone boolean expression (used heavily by tests)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_end()
    return expr


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _match_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise ParseError(f"expected {word}, found {self.current.value!r}", self.current.position)
        return self._advance()

    def _expect(self, type_: TokenType) -> Token:
        if self.current.type is not type_:
            raise ParseError(
                f"expected {type_.name}, found {self.current.type.name} {self.current.value!r}",
                self.current.position,
            )
        return self._advance()

    def expect_end(self) -> None:
        if self.current.type is TokenType.SEMICOLON:
            self._advance()
        if self.current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input: {self.current.value!r}", self.current.position
            )

    # -- grammar ----------------------------------------------------------

    def query(self) -> ast.Query:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        select_items = self._select_list()
        self._expect_keyword("FROM")
        tables = self._table_list()
        where: Optional[ast.Expr] = None
        if self._match_keyword("WHERE"):
            where = self.expression()
        group_by: List[ast.Expr] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._column_ref())
            while self.current.type is TokenType.COMMA:
                self._advance()
                group_by.append(self._column_ref())
        order_by: List[ast.OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self.current.type is TokenType.COMMA:
                self._advance()
                order_by.append(self._order_item())
        limit: Optional[int] = None
        if self._match_keyword("LIMIT"):
            token = self._expect(TokenType.NUMBER)
            if not isinstance(token.value, int) or token.value < 0:
                raise ParseError("LIMIT requires a non-negative integer", token.position)
            limit = token.value
        return ast.Query(select_items, tables, where, distinct, group_by, limit, order_by)

    def _order_item(self) -> ast.OrderItem:
        expr = self._column_ref()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _select_list(self) -> List[ast.SelectItem]:
        if self.current.type is TokenType.STAR:
            self._advance()
            return [ast.SelectItem(None, is_star=True)]
        items = [self._select_item()]
        while self.current.type is TokenType.COMMA:
            self._advance()
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        if self.current.type is TokenType.KEYWORD and self.current.value in AGGREGATES:
            expr: ast.Expr = self._aggregate()
        elif self.current.type in (TokenType.STRING, TokenType.NUMBER):
            expr = ast.Literal(self._advance().value)
        else:
            expr = self._column_ref()
        alias = self._optional_alias()
        return ast.SelectItem(expr, alias)

    def _aggregate(self) -> ast.AggregateCall:
        func = str(self._advance().value)
        self._expect(TokenType.LPAREN)
        if self.current.type is TokenType.STAR:
            self._advance()
            self._expect(TokenType.RPAREN)
            return ast.AggregateCall(func, None)
        distinct = self._match_keyword("DISTINCT")
        argument = self._column_ref()
        self._expect(TokenType.RPAREN)
        return ast.AggregateCall(func, argument, distinct)

    def _optional_alias(self) -> Optional[str]:
        if self._match_keyword("AS"):
            return str(self._expect(TokenType.IDENTIFIER).value)
        if self.current.type is TokenType.IDENTIFIER:
            return str(self._advance().value)
        return None

    def _table_list(self) -> List[ast.TableRef]:
        tables = [self._table_ref()]
        while self.current.type is TokenType.COMMA:
            self._advance()
            tables.append(self._table_ref())
        return tables

    def _table_ref(self) -> ast.TableRef:
        name = str(self._expect(TokenType.IDENTIFIER).value)
        alias = self._optional_alias()
        return ast.TableRef(name, alias)

    # -- expressions -------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        items = [self._and_expr()]
        while self._match_keyword("OR"):
            items.append(self._and_expr())
        if len(items) == 1:
            return items[0]
        return ast.Or(items)

    def _and_expr(self) -> ast.Expr:
        items = [self._not_expr()]
        while self._match_keyword("AND"):
            items.append(self._not_expr())
        if len(items) == 1:
            return items[0]
        return ast.And(items)

    def _not_expr(self) -> ast.Expr:
        if self._match_keyword("NOT"):
            return ast.Not(self._not_expr())
        return self._primary()

    def _primary(self) -> ast.Expr:
        if self.current.type is TokenType.LPAREN:
            self._advance()
            inner = self.expression()
            self._expect(TokenType.RPAREN)
            return inner
        if self.current.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if self.current.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        left = self._operand()
        negated = self._match_keyword("NOT")
        if self.current.is_keyword("IN"):
            self._advance()
            return self._in_list(left, negated)
        if self.current.is_keyword("BETWEEN"):
            self._advance()
            low = self._operand()
            self._expect_keyword("AND")
            high = self._operand()
            return ast.Between(left, low, high, negated)
        if self.current.is_keyword("LIKE"):
            self._advance()
            pattern = self._expect(TokenType.STRING)
            return ast.Like(left, str(pattern.value), negated)
        if negated:
            raise ParseError(
                "NOT must be followed by IN, BETWEEN or LIKE here", self.current.position
            )
        if self.current.is_keyword("IS"):
            self._advance()
            is_negated = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        if self.current.type is TokenType.OPERATOR:
            op = str(self._advance().value)
            right = self._operand()
            return ast.Comparison(op, left, right)
        raise ParseError(
            f"expected a predicate operator, found {self.current.value!r}",
            self.current.position,
        )

    def _in_list(self, expr: ast.Expr, negated: bool) -> ast.InList:
        self._expect(TokenType.LPAREN)
        values = [self._literal()]
        while self.current.type is TokenType.COMMA:
            self._advance()
            values.append(self._literal())
        self._expect(TokenType.RPAREN)
        return ast.InList(expr, values, negated)

    def _operand(self) -> ast.Expr:
        token = self.current
        if token.type in (TokenType.STRING, TokenType.NUMBER):
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.type is TokenType.IDENTIFIER:
            return self._column_ref()
        raise ParseError(f"expected a value or column, found {token.value!r}", token.position)

    def _literal(self) -> ast.Literal:
        token = self.current
        if token.type in (TokenType.STRING, TokenType.NUMBER):
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        raise ParseError(f"expected a literal, found {token.value!r}", token.position)

    def _column_ref(self) -> ast.ColumnRef:
        first = self._expect(TokenType.IDENTIFIER)
        if self.current.type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENTIFIER)
            return ast.ColumnRef(str(second.value), qualifier=str(first.value))
        return ast.ColumnRef(str(first.value))
