"""A bounded worker pool with admission control and request deadlines.

``concurrent.futures.ThreadPoolExecutor`` queues unboundedly — exactly
wrong for a serving front end, where an overloaded server must shed load
*immediately* (fail fast with a retry hint) instead of building a queue
whose latency grows without bound. This pool:

* keeps a **bounded queue** (``queue_depth``); a submit against a full
  queue raises :class:`QueueFull` with a ``retry_after`` estimated from
  the recent mean service time (how long until a slot frees up);
* enforces **deadlines**: a job whose deadline passed while it sat in the
  queue is never executed — its future fails with
  :class:`DeadlineExceeded` the moment a worker dequeues it, so queued
  work a client has given up on is cancelled rather than wasting a worker;
* gives each worker thread **private state** built once at thread start
  by ``worker_state_factory`` (the query service builds one
  :class:`~repro.core.report.RecencyReporter` per worker there, so
  reporters never need cross-thread locking).

Results travel on :class:`concurrent.futures.Future` objects, so callers
compose with the stdlib (``result(timeout=...)``, done-callbacks).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, List, Optional

from repro.errors import TracError


class QueueFull(TracError):
    """The pool's admission queue is full (HTTP 429)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.kind = "queue"
        self.retry_after = max(0.0, float(retry_after))


class DeadlineExceeded(TracError):
    """The request's deadline passed before a worker could run it (HTTP 504)."""


class _Stop:
    """Sentinel telling a worker thread to exit."""


_STOP = _Stop()


class _Job:
    __slots__ = ("fn", "future", "deadline", "enqueued_at")

    def __init__(self, fn: Callable[[Any], Any], future: Future, deadline: Optional[float]) -> None:
        self.fn = fn
        self.future = future
        self.deadline = deadline
        self.enqueued_at = time.monotonic()


class WorkerPool:
    """Fixed worker threads draining one bounded queue.

    Parameters
    ----------
    workers:
        Number of worker threads (started lazily on first submit).
    queue_depth:
        Maximum queued (not yet executing) jobs; further submits raise
        :class:`QueueFull`.
    worker_state_factory:
        Zero-argument callable run once per worker thread; its return
        value is passed as the single argument to every job function the
        worker executes. ``None`` passes ``None``.
    name:
        Thread-name prefix (shows up in stack dumps and ``threading``).
    """

    def __init__(
        self,
        workers: int = 8,
        queue_depth: int = 64,
        worker_state_factory: Optional[Callable[[], Any]] = None,
        name: str = "trac-serve",
    ) -> None:
        if workers < 1:
            raise TracError(f"worker pool needs at least one worker, got {workers}")
        if queue_depth < 1:
            raise TracError(f"queue depth must be positive, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth
        self._factory = worker_state_factory
        self._name = name
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_depth)
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        # EWMA of job service time, feeding the QueueFull retry hint.
        self._mean_service = 0.01
        self._expired = 0
        self._executed = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._lock:
            if self._started:
                return self
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self._name}-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Drain accepted work, then stop every worker and join it."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            started = self._started
        if not started:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- submission ----------------------------------------------------------

    def submit(self, fn: Callable[[Any], Any], deadline: Optional[float] = None) -> Future:
        """Enqueue ``fn(worker_state)``; raises :class:`QueueFull` when the
        queue is at capacity. ``deadline`` is an absolute
        ``time.monotonic()`` instant after which the job must not run."""
        if self._stopped:
            raise TracError("worker pool is stopped")
        if not self._started:
            self.start()
        future: Future = Future()
        job = _Job(fn, future, deadline)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise QueueFull(
                f"admission queue full ({self.queue_depth} queued)",
                retry_after=self._retry_hint(),
            ) from None
        return future

    def _retry_hint(self) -> float:
        """Seconds until a queue slot plausibly frees: the full queue
        drained by every worker at the recent mean service time."""
        with self._lock:
            mean = self._mean_service
        return max(0.05, self.queue_depth * mean / self.workers)

    # -- workers -------------------------------------------------------------

    def _worker_loop(self) -> None:
        state = self._factory() if self._factory is not None else None
        try:
            while True:
                job = self._queue.get()
                if job is _STOP:
                    return
                assert isinstance(job, _Job)
                if not job.future.set_running_or_notify_cancel():
                    continue  # cancelled while queued
                if job.deadline is not None and time.monotonic() > job.deadline:
                    with self._lock:
                        self._expired += 1
                    job.future.set_exception(
                        DeadlineExceeded(
                            "deadline passed after "
                            f"{time.monotonic() - job.enqueued_at:.3f}s in queue"
                        )
                    )
                    continue
                started = time.monotonic()
                try:
                    result = job.fn(state)
                except BaseException as exc:  # noqa: BLE001 — future carries it
                    job.future.set_exception(exc)
                else:
                    job.future.set_result(result)
                elapsed = time.monotonic() - started
                with self._lock:
                    self._executed += 1
                    self._mean_service += 0.1 * (elapsed - self._mean_service)
        finally:
            close = getattr(state, "close", None)
            if callable(close):
                close()

    # -- introspection -------------------------------------------------------

    def queued(self) -> int:
        """Jobs accepted but not yet picked up by a worker (approximate)."""
        return self._queue.qsize()

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "queue_depth": self.queued(),
                "queue_capacity": self.queue_depth,
                "executed": self._executed,
                "expired": self._expired,
                "mean_service_seconds": self._mean_service,
            }

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, queued={self.queued()}/"
            f"{self.queue_depth}, executed={self._executed})"
        )
