"""Schema model: columns, tables, data-source tagging and the Heartbeat table.

The paper's schema model (Section 3.3) requires that every monitored relation
carries a *data source column* which is a foreign key into a system
``Heartbeat`` table mapping each data source id to its recency timestamp.
This package provides that model plus the column-domain abstraction used by
the satisfiability reasoning and the brute-force relevance oracle.
"""

from repro.catalog.domains import (
    Domain,
    FiniteDomain,
    IntegerDomain,
    RealDomain,
    TextDomain,
    TimestampDomain,
)
from repro.catalog.schema import (
    HEARTBEAT_RECENCY_COLUMN,
    HEARTBEAT_SOURCE_COLUMN,
    HEARTBEAT_TABLE,
    Column,
    TableSchema,
    heartbeat_schema,
)
from repro.catalog.catalog import Catalog

__all__ = [
    "Domain",
    "FiniteDomain",
    "IntegerDomain",
    "RealDomain",
    "TextDomain",
    "TimestampDomain",
    "Column",
    "TableSchema",
    "Catalog",
    "heartbeat_schema",
    "HEARTBEAT_TABLE",
    "HEARTBEAT_SOURCE_COLUMN",
    "HEARTBEAT_RECENCY_COLUMN",
]
