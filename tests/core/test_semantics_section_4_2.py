"""The Section 4.2 walk-through: query semantics vs recency.

Schema: ``S(schedMachineId, jobId, remoteMachineId)`` — what the scheduler
thinks — and ``R(runningMachineId, jobId)`` — what the running machine
thinks. The same user intent written as Q3 (R only) or Q4 (S join R) yields
different relevant sets; the paper enumerates cases (a), (b), (c).
"""

import pytest

from repro import Catalog, Column, FiniteDomain, MemoryBackend, TableSchema
from repro.core.report import RecencyReporter

MACHINES = ("myScheduler", "mRemote", "mOther", "mThird")

Q3 = "SELECT R.runningMachineId FROM r_jobs R WHERE R.jobId = 'myId'"
Q4 = (
    "SELECT R.runningMachineId FROM s_jobs S, r_jobs R "
    "WHERE S.schedMachineId = 'myScheduler' AND S.jobId = 'myId' "
    "AND R.jobId = 'myId' AND R.runningMachineId = S.remoteMachineId"
)


def make_backend():
    machines = FiniteDomain(MACHINES)
    jobs = FiniteDomain({"myId", "otherId"})
    s_jobs = TableSchema(
        "s_jobs",
        [
            Column("schedMachineId", "TEXT", machines),
            Column("jobId", "TEXT", jobs),
            Column("remoteMachineId", "TEXT", machines),
        ],
        source_column="schedMachineId",
    )
    r_jobs = TableSchema(
        "r_jobs",
        [
            Column("runningMachineId", "TEXT", machines),
            Column("jobId", "TEXT", jobs),
        ],
        source_column="runningMachineId",
    )
    backend = MemoryBackend(Catalog([s_jobs, r_jobs]))
    for i, machine in enumerate(MACHINES):
        backend.upsert_heartbeat(machine, 100.0 + i)
    return backend


def relevant(backend, sql):
    return RecencyReporter(backend, create_temp_tables=False).report(sql).relevant_source_ids


class TestQ3AllSourcesRelevant:
    def test_q3_reports_all_machines(self):
        """With our techniques, for Q3 all machines are relevant: any
        machine could report 'I am running myId'."""
        backend = make_backend()
        assert relevant(backend, Q3) == set(MACHINES)

    def test_q3_returns_machine_when_reported(self):
        backend = make_backend()
        backend.insert_rows("r_jobs", [("mRemote", "myId")])
        report = RecencyReporter(backend, create_temp_tables=False).report(Q3)
        assert report.result.rows == [("mRemote",)]
        assert report.relevant_source_ids == set(MACHINES)


class TestQ4CaseAnalysis:
    def test_case_a_nothing_in_s(self):
        """(a) Nothing in S (or R) at all: empty result and — by
        Definition 2, which the brute-force oracle confirms — an *empty*
        relevant set: with both relations empty, no single update can
        change the answer (a myScheduler insert alone still joins nothing).

        Note: the paper's prose for case (a) says "only myScheduler is
        relevant", which presumes R already holds a matching row; on fully
        empty instances the paper's own formal definition gives the empty
        set, which is what we implement (see EXPERIMENTS.md)."""
        backend = make_backend()
        report = RecencyReporter(backend, create_temp_tables=False).report(Q4)
        assert report.result.rows == []
        assert report.relevant_source_ids == set()

    def test_case_a_with_r_activity(self):
        """Case (a) as the paper frames it: no S tuple for myId, but R has
        a myId record. Now only myScheduler is relevant — exactly the
        paper's claim."""
        backend = make_backend()
        backend.insert_rows("r_jobs", [("mOther", "myId")])
        report = RecencyReporter(backend, create_temp_tables=False).report(Q4)
        assert report.result.rows == []
        assert report.relevant_source_ids == {"myScheduler"}

    def test_case_b_s_tuple_without_r_match(self):
        """(b) S has the tuple but it joins nothing in R (here: R holds a
        myId record from a different machine): myScheduler and the
        remote machine are relevant."""
        backend = make_backend()
        backend.insert_rows("s_jobs", [("myScheduler", "myId", "mRemote")])
        backend.insert_rows("r_jobs", [("mOther", "myId")])
        report = RecencyReporter(backend, create_temp_tables=False).report(Q4)
        assert report.result.rows == []
        assert report.relevant_source_ids == {"myScheduler", "mRemote"}

    def test_case_b_prime_r_empty_for_job(self):
        """Variant of (b) with R completely empty: only mRemote is
        relevant. It could insert ('mRemote', 'myId'), joining the existing
        S tuple and changing the answer. myScheduler is NOT relevant by
        Definition 2: any single S-side update still joins an empty R, so
        the result stays empty (changing it takes a sequence)."""
        backend = make_backend()
        backend.insert_rows("s_jobs", [("myScheduler", "myId", "mRemote")])
        report = RecencyReporter(backend, create_temp_tables=False).report(Q4)
        assert report.result.rows == []
        assert report.relevant_source_ids == {"mRemote"}

    def test_case_c_joined(self):
        """(c) S tuple joins an R tuple: the answer is the running machine
        and the relevant set is {myScheduler, runningMachine}."""
        backend = make_backend()
        backend.insert_rows("s_jobs", [("myScheduler", "myId", "mRemote")])
        backend.insert_rows("r_jobs", [("mRemote", "myId")])
        report = RecencyReporter(backend, create_temp_tables=False).report(Q4)
        assert report.result.rows == [("mRemote",)]
        assert report.relevant_source_ids == {"myScheduler", "mRemote"}

    def test_q4_never_reports_unrelated_machines(self):
        backend = make_backend()
        backend.insert_rows("s_jobs", [("myScheduler", "myId", "mRemote")])
        backend.insert_rows("r_jobs", [("mRemote", "myId")])
        assert "mOther" not in relevant(backend, Q4)
        assert "mThird" not in relevant(backend, Q4)


class TestBruteForceAgreement:
    @pytest.mark.parametrize("with_s, with_r", [(False, False), (True, False), (True, True)])
    def test_focused_matches_brute_force(self, with_s, with_r):
        from repro.core.bruteforce import brute_force_relevant_sources
        from repro.sqlparser.parser import parse_query
        from repro.sqlparser.resolver import resolve

        backend = make_backend()
        if with_s:
            backend.insert_rows("s_jobs", [("myScheduler", "myId", "mRemote")])
        if with_r:
            backend.insert_rows("r_jobs", [("mRemote", "myId")])
        resolved = resolve(parse_query(Q4), backend.catalog)
        exact = brute_force_relevant_sources(backend.db, resolved)
        reported = relevant(backend, Q4)
        assert reported >= exact
        assert reported == exact  # exactness holds in all three cases here
