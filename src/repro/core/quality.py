"""Staleness-derived quality scores for provenance-annotated rows.

TRAC's report says *when* each relevant source last spoke; QTrail-DB
(PAPERS.md) argues that data quality should *decay* as its source ages
and propagate through query operators. This module combines the two: each
contributing source gets a quality score in ``(0, 1]`` derived from its
heartbeat staleness, and each result row inherits the **minimum** over
its lineage (QTrail-DB's pessimistic combine — a row is only as
trustworthy as its least trustworthy input).

The per-source score is an exponential decay over staleness::

    staleness(s) = reference - recency(s)        # seconds behind
    freshness(s) = 2 ** (-staleness(s) / half_life)

where ``reference`` defaults to the *most recent* relevant source's
recency (so scores are a deterministic function of the snapshot, not of
wall clock — pass ``now=`` for wall-clock-anchored scoring). A source at
the reference scores 1.0; every additional ``half_life`` seconds of
staleness halves the score, so quality degrades strictly monotonically
with staleness. Sources the report distrusts are penalized further:
z-score-**exceptional** sources (Section 4.3's split, reused as-is) and
supervisor-**degraded** sources each multiply the freshness by a penalty
factor. The default half-life equals the staleness SLO's default p95
target (:data:`repro.core.slo.DEFAULT_TARGET_P95`); build a model from a
live tracker with :meth:`QualityModel.from_slo`.

A row whose lineage cites a source with *no* heartbeat at all scores 0.0
(the source never reported — nothing is known about its recency), and a
row with empty lineage (pure literals, aggregates over empty input, or a
backend that cannot produce lineage) has quality ``None``: unattributed,
not untrusted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.slo import DEFAULT_TARGET_P95
from repro.core.statistics import SourceRecency

#: Seconds of staleness that halve a source's quality score.
DEFAULT_HALF_LIFE = DEFAULT_TARGET_P95

#: Multiplier applied to z-score-exceptional sources.
DEFAULT_EXCEPTIONAL_PENALTY = 0.5

#: Multiplier applied to supervisor-degraded (quarantined) sources.
DEFAULT_DEGRADED_PENALTY = 0.25


class SourceQuality:
    """One contributing source's scored staleness."""

    __slots__ = ("source_id", "recency", "staleness", "quality", "exceptional", "degraded")

    def __init__(
        self,
        source_id: str,
        recency: Optional[float],
        staleness: Optional[float],
        quality: float,
        exceptional: bool,
        degraded: bool,
    ) -> None:
        self.source_id = source_id
        self.recency = recency
        self.staleness = staleness
        self.quality = quality
        self.exceptional = exceptional
        self.degraded = degraded

    def to_dict(self) -> Dict[str, object]:
        return {
            "source_id": self.source_id,
            "recency": self.recency,
            "staleness": self.staleness,
            "quality": self.quality,
            "exceptional": self.exceptional,
            "degraded": self.degraded,
        }

    def __repr__(self) -> str:
        return (
            f"SourceQuality({self.source_id!r}, quality={self.quality:.3f}, "
            f"staleness={self.staleness}, exceptional={self.exceptional}, "
            f"degraded={self.degraded})"
        )


class QualitySummary:
    """Row-level quality rollup of one provenance-annotated result.

    ``per_source_rows`` counts, per source id, the result rows whose
    lineage cites that source. ``worst_row_quality`` is the minimum row
    quality across attributed rows (``None`` when no row is attributed).
    """

    __slots__ = (
        "rows",
        "attributed_rows",
        "unattributed_rows",
        "worst_row_quality",
        "rows_from_exceptional",
        "rows_from_degraded",
        "per_source_rows",
        "sources",
        "row_quality",
    )

    def __init__(
        self,
        rows: int,
        attributed_rows: int,
        unattributed_rows: int,
        worst_row_quality: Optional[float],
        rows_from_exceptional: int,
        rows_from_degraded: int,
        per_source_rows: Dict[str, int],
        sources: List[SourceQuality],
        row_quality: List[Optional[float]],
    ) -> None:
        self.rows = rows
        self.attributed_rows = attributed_rows
        self.unattributed_rows = unattributed_rows
        self.worst_row_quality = worst_row_quality
        self.rows_from_exceptional = rows_from_exceptional
        self.rows_from_degraded = rows_from_degraded
        self.per_source_rows = per_source_rows
        self.sources = sources
        #: Per-row quality scores, parallel to the result rows.
        self.row_quality = row_quality

    def top_sources(self, n: int = 3) -> List[Tuple[str, int]]:
        """The ``n`` sources contributing to the most rows (ties by id)."""
        ranked = sorted(self.per_source_rows.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: max(0, n)]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rows": self.rows,
            "attributed_rows": self.attributed_rows,
            "unattributed_rows": self.unattributed_rows,
            "worst_row_quality": self.worst_row_quality,
            "rows_from_exceptional": self.rows_from_exceptional,
            "rows_from_degraded": self.rows_from_degraded,
            "per_source_rows": dict(self.per_source_rows),
            "sources": [s.to_dict() for s in self.sources],
        }

    def __repr__(self) -> str:
        worst = (
            f"{self.worst_row_quality:.3f}" if self.worst_row_quality is not None else "-"
        )
        return (
            f"QualitySummary(rows={self.rows}, attributed={self.attributed_rows}, "
            f"worst={worst}, exceptional_rows={self.rows_from_exceptional})"
        )


class QualityModel:
    """Maps heartbeat staleness to per-source and per-row quality scores."""

    __slots__ = ("half_life", "exceptional_penalty", "degraded_penalty")

    def __init__(
        self,
        half_life: float = DEFAULT_HALF_LIFE,
        exceptional_penalty: float = DEFAULT_EXCEPTIONAL_PENALTY,
        degraded_penalty: float = DEFAULT_DEGRADED_PENALTY,
    ) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life!r}")
        self.half_life = half_life
        self.exceptional_penalty = exceptional_penalty
        self.degraded_penalty = degraded_penalty

    @classmethod
    def from_slo(cls, slo, **kwargs) -> "QualityModel":
        """A model whose half-life is the SLO tracker's p95 lag target."""
        target = getattr(slo, "target_p95", None)
        if target is None or target <= 0:
            return cls(**kwargs)
        return cls(half_life=float(target), **kwargs)

    # -- per-source scoring --------------------------------------------------

    def freshness(self, staleness: float) -> float:
        """The decay curve: 1.0 at zero staleness, halved per half-life."""
        return 2.0 ** (-max(0.0, staleness) / self.half_life)

    def score_sources(
        self,
        sources: Sequence[SourceRecency],
        exceptional: Optional[Set[str]] = None,
        degraded: Optional[Set[str]] = None,
        now: Optional[float] = None,
    ) -> Dict[str, SourceQuality]:
        """Score every source against the freshest one (or ``now``).

        ``sources`` is the report's relevant-source set (normal plus
        exceptional); ``exceptional`` and ``degraded`` name the sources the
        z-score split and the supervision layer distrust.
        """
        exceptional = exceptional or set()
        degraded = degraded or set()
        out: Dict[str, SourceQuality] = {}
        if not sources and not degraded:
            return out
        reference: Optional[float] = now
        if reference is None and sources:
            reference = max(s.recency for s in sources)
        for s in sources:
            staleness = max(0.0, (reference or s.recency) - s.recency)
            quality = self.freshness(staleness)
            is_exceptional = s.source_id in exceptional
            is_degraded = s.source_id in degraded
            if is_exceptional:
                quality *= self.exceptional_penalty
            if is_degraded:
                quality *= self.degraded_penalty
            out[s.source_id] = SourceQuality(
                s.source_id, s.recency, staleness, quality, is_exceptional, is_degraded
            )
        # Degraded sources with no heartbeat are positively known to be
        # down and never reported: worst possible score.
        for source_id in degraded:
            if source_id not in out:
                out[source_id] = SourceQuality(source_id, None, None, 0.0, False, True)
        return out

    # -- per-row combination -------------------------------------------------

    def row_quality(
        self, lineage: Iterable[str], scores: Dict[str, SourceQuality]
    ) -> Optional[float]:
        """Min-combine over the row's contributing sources.

        Empty lineage means *unattributed* (``None``); a cited source with
        no score means its heartbeat is missing entirely and pins the row
        at 0.0.
        """
        quality: Optional[float] = None
        for source_id in lineage:
            scored = scores.get(source_id)
            q = scored.quality if scored is not None else 0.0
            if quality is None or q < quality:
                quality = q
        return quality

    def summarize(
        self,
        lineages: Sequence[Iterable[str]],
        scores: Dict[str, SourceQuality],
    ) -> QualitySummary:
        """Roll one result's row lineages up into a :class:`QualitySummary`."""
        per_source: Dict[str, int] = {}
        row_quality: List[Optional[float]] = []
        worst: Optional[float] = None
        attributed = 0
        from_exceptional = 0
        from_degraded = 0
        for lineage in lineages:
            cited = list(lineage)
            quality = self.row_quality(cited, scores)
            row_quality.append(quality)
            if quality is not None:
                attributed += 1
                if worst is None or quality < worst:
                    worst = quality
            touched_exceptional = False
            touched_degraded = False
            for source_id in cited:
                per_source[source_id] = per_source.get(source_id, 0) + 1
                scored = scores.get(source_id)
                if scored is not None:
                    touched_exceptional = touched_exceptional or scored.exceptional
                    touched_degraded = touched_degraded or scored.degraded
            if touched_exceptional:
                from_exceptional += 1
            if touched_degraded:
                from_degraded += 1
        cited_ids = set(per_source)
        return QualitySummary(
            rows=len(lineages),
            attributed_rows=attributed,
            unattributed_rows=len(lineages) - attributed,
            worst_row_quality=worst,
            rows_from_exceptional=from_exceptional,
            rows_from_degraded=from_degraded,
            per_source_rows=per_source,
            sources=sorted(
                (s for sid, s in scores.items() if sid in cited_ids),
                key=lambda s: s.source_id,
            ),
            row_quality=row_quality,
        )


class ProvenanceRecord:
    """One provenance-annotated query, retained in the telemetry ring.

    Duck-typed like a :class:`~repro.engine.profile.QueryProfile` for the
    :class:`~repro.obs.instrument.ProfileLog` ring (``sql`` / ``trace_id``
    / ``to_dict()``), so the observatory's ``/provenance/<trace_id>`` view
    can correlate it with spans, events and profiles.
    """

    __slots__ = ("sql", "trace_id", "method", "row_provenance", "quality")

    def __init__(
        self,
        sql: str,
        trace_id: Optional[str],
        method: str,
        row_provenance: Sequence[Iterable[str]],
        quality: Optional[QualitySummary],
    ) -> None:
        self.sql = sql
        self.trace_id = trace_id
        self.method = method
        self.row_provenance = [sorted(lineage) for lineage in row_provenance]
        self.quality = quality

    def to_dict(self) -> Dict[str, object]:
        return {
            "sql": self.sql,
            "trace_id": self.trace_id,
            "method": self.method,
            "row_provenance": [list(lineage) for lineage in self.row_provenance],
            "quality": self.quality.to_dict() if self.quality is not None else None,
        }

    def __repr__(self) -> str:
        return (
            f"ProvenanceRecord(sql={self.sql!r}, trace_id={self.trace_id!r}, "
            f"rows={len(self.row_provenance)})"
        )


__all__ = [
    "DEFAULT_HALF_LIFE",
    "DEFAULT_EXCEPTIONAL_PENALTY",
    "DEFAULT_DEGRADED_PENALTY",
    "SourceQuality",
    "QualitySummary",
    "QualityModel",
    "ProvenanceRecord",
]
