"""Grid simulator integration tests."""

import pytest

from repro.errors import SimulationError
from repro.grid.simulator import GridSimulator, SimulationConfig, monitoring_catalog


def make_sim(**kwargs):
    defaults = dict(num_machines=5, seed=11, job_submit_probability=0.0)
    defaults.update(kwargs)
    return GridSimulator(SimulationConfig(**defaults))


class TestConfigValidation:
    def test_zero_machines_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(num_machines=0)

    def test_bad_scheduler_count(self):
        with pytest.raises(SimulationError):
            SimulationConfig(num_machines=3, num_schedulers=4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tick": 0.0},
            {"tick": float("nan")},
            {"tick": float("inf")},
            {"heartbeat_interval": 0.0},
            {"heartbeat_interval": float("nan")},
            {"transfer_delay": -1.0},
            {"activity_flip_probability": 1.5},
            {"activity_flip_probability": float("nan")},
            {"job_submit_probability": -0.1},
            {"machine_failure_probability": 2.0},
            {"machine_recover_probability": float("inf")},
            {"job_duration_range": (0.0, 10.0)},
            {"job_duration_range": (20.0, 10.0)},
            {"job_duration_range": (float("nan"), 10.0)},
            {"sniffer_poll_interval_range": (5.0, 3.0)},
            {"sniffer_poll_interval_range": (0.0, 3.0)},
            {"sniffer_lag_range": (-1.0, 3.0)},
            {"sniffer_lag_range": (5.0, 3.0)},
            {"sniffer_lag_range": (1.0, float("inf"))},
        ],
    )
    def test_bad_numeric_config_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            SimulationConfig(**kwargs)

    def test_zero_lag_allowed(self):
        config = SimulationConfig(sniffer_lag_range=(0.0, 0.0))
        assert config.sniffer_lag_range == (0.0, 0.0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = make_sim(seed=3, job_submit_probability=0.2)
        b = make_sim(seed=3, job_submit_probability=0.2)
        a.run(60)
        b.run(60)
        assert sorted(a.backend.heartbeat_rows()) == sorted(b.backend.heartbeat_rows())
        assert sorted(a.backend.execute("SELECT * FROM activity").rows) == sorted(
            b.backend.execute("SELECT * FROM activity").rows
        )

    def test_different_seed_diverges(self):
        a = make_sim(seed=1, job_submit_probability=0.3)
        b = make_sim(seed=2, job_submit_probability=0.3)
        a.run(120)
        b.run(120)
        assert sorted(a.backend.heartbeat_rows()) != sorted(b.backend.heartbeat_rows())


class TestTopologyAndBootstrap:
    def test_every_machine_has_neighbors(self):
        sim = make_sim(neighbor_degree=2)
        for machine in sim.machines.values():
            assert len(machine.neighbors) == 2

    def test_routing_loaded_after_drain(self):
        sim = make_sim(neighbor_degree=2)
        sim.run(30)
        sim.drain()
        assert sim.backend.row_count("routing") == 5 * 2

    def test_all_machines_report_activity(self):
        sim = make_sim()
        sim.run(30)
        sim.drain()
        machines = {r[0] for r in sim.backend.execute("SELECT mach_id FROM activity").rows}
        assert machines == set(sim.machine_ids)


class TestJobLifecycle:
    def test_submitted_job_runs_and_completes(self):
        sim = make_sim()
        job = sim.submit_job("alice", "m1", duration=10.0)
        sim.run(30)
        assert job.state.value == "completed"
        assert job.started_at is not None
        assert job.completed_at == pytest.approx(job.started_at + 10.0, abs=sim.config.tick)

    def test_job_rows_appear_and_disappear(self):
        sim = make_sim()
        sim.submit_job("alice", "m1", duration=20.0)
        sim.run(10)
        sim.drain()
        assert sim.backend.row_count("sched_jobs") == 1
        assert sim.backend.row_count("run_jobs") == 1
        sim.run(30)
        sim.drain()
        assert sim.backend.row_count("run_jobs") == 0

    def test_submit_to_non_scheduler_rejected(self):
        sim = make_sim(num_schedulers=1)
        with pytest.raises(SimulationError):
            sim.submit_job("alice", "m5")

    def test_job_rescheduled_when_target_fails(self):
        sim = make_sim(num_machines=3, neighbor_degree=2)
        # Fail every machine except the scheduler, then submit: the job must
        # eventually run on the scheduler machine itself.
        sim.machines["m2"].fail()
        sim.machines["m3"].fail()
        job = sim.submit_job("alice", "m1", duration=5.0)
        sim.run(30)
        assert job.state.value == "completed"
        assert job.remote_machine == "m1"


class TestHeartbeats:
    def test_heartbeats_advance_during_quiet_periods(self):
        sim = make_sim(activity_flip_probability=0.0, heartbeat_interval=10.0)
        sim.run(100)
        sim.drain()
        for machine_id in sim.machine_ids:
            recency = sim.backend.heartbeat_of(machine_id)
            assert recency is not None
            assert recency >= 80.0

    def test_failed_machine_recency_freezes(self):
        sim = make_sim(
            activity_flip_probability=0.0,
            heartbeat_interval=5.0,
            machine_recover_probability=0.0,
        )
        sim.run(30)
        sim.machines["m2"].fail()
        frozen_log_end = sim.machines["m2"].log.last_timestamp
        sim.run(100)
        sim.drain()
        recency = sim.backend.heartbeat_of("m2")
        assert recency == frozen_log_end
        # Healthy machines kept advancing.
        assert sim.backend.heartbeat_of("m1") > recency


class TestStalenessWindow:
    def test_database_lags_reality(self):
        """Right after a burst of activity, sniffer lag means the DB has not
        caught up — the core premise of the paper."""
        sim = make_sim(
            activity_flip_probability=0.5,
            sniffer_lag_range=(5.0, 10.0),
            sniffer_poll_interval_range=(8.0, 12.0),
        )
        sim.run(40)
        backlog = sum(s.backlog for s in sim.sniffers.values())
        assert backlog > 0


class TestMonitoringCatalog:
    def test_tables_present(self):
        catalog = monitoring_catalog(["m1", "m2"])
        for table in ("activity", "routing", "sched_jobs", "run_jobs", "heartbeat"):
            assert catalog.has(table)

    def test_machine_domain_is_finite(self):
        catalog = monitoring_catalog(["m1", "m2"])
        domain = catalog.get("activity").column("mach_id").domain
        assert domain.is_finite
        assert domain.cardinality() == 2
