"""The observatory HTTP server: live, scrapeable telemetry endpoints.

A dependency-free threaded HTTP server (stdlib ``http.server`` only)
exposing one :class:`~repro.obs.instrument.Telemetry` instance:

========== ==================================== ===========================
path       content type                         body
========== ==================================== ===========================
/metrics   text/plain; version=0.0.4            Prometheus exposition of
                                                every registered metric
/healthz   application/json                     overall status, per-source
                                                health entries, breaker
                                                states, degraded list
/spans     application/x-ndjson                 recent finished spans, one
                                                JSON object per line
                                                (``?limit=N``, default 500)
/events    application/x-ndjson                 recent events, one JSON
                                                object per line
                                                (``?limit=N``, default 500)
/status    application/json                     full dashboard payload
                                                (what ``trac top`` polls)
========== ==================================== ===========================

Unknown paths return 404 with a JSON body listing the endpoints. The
server runs on daemon threads (``ThreadingHTTPServer``) so it never
blocks interpreter exit; ``port=0`` binds an ephemeral port, exposed via
:attr:`ObservatoryServer.port`. Start one with ``obs.serve()``, ``trac
serve``, or ``trac simulate --serve PORT``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.export import prometheus_text, write_spans_jsonl
from repro.obs.events import write_events_jsonl

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"
NDJSON_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"

_DEFAULT_TAIL = 500


class _ObservatoryHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ObservatoryServer` via a
    per-instance subclass (the stdlib API offers no cleaner hook)."""

    observatory: "ObservatoryServer"  # set on the generated subclass
    server_version = "TracObservatory/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapers poll every few seconds; stderr must stay quiet

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _limit(self, query: Dict[str, list]) -> int:
        try:
            return max(0, int(query.get("limit", [_DEFAULT_TAIL])[0]))
        except (TypeError, ValueError):
            return _DEFAULT_TAIL

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        obs = self.observatory
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        path = parsed.path.rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._send(
                    200, PROMETHEUS_CONTENT_TYPE, prometheus_text(obs.telemetry.metrics)
                )
            elif path == "/healthz":
                self._send(
                    200, JSON_CONTENT_TYPE, json.dumps(obs.healthz(), sort_keys=True)
                )
            elif path == "/spans":
                import io

                buffer = io.StringIO()
                spans = obs.telemetry.tracer.finished_spans()
                limit = self._limit(query)
                write_spans_jsonl(spans[-limit:] if limit else [], buffer)
                self._send(200, NDJSON_CONTENT_TYPE, buffer.getvalue())
            elif path == "/events":
                import io

                buffer = io.StringIO()
                write_events_jsonl(
                    obs.telemetry.events.tail(self._limit(query)), buffer
                )
                self._send(200, NDJSON_CONTENT_TYPE, buffer.getvalue())
            elif path == "/status":
                self._send(
                    200, JSON_CONTENT_TYPE, json.dumps(obs.status(), sort_keys=True)
                )
            else:
                body = json.dumps(
                    {
                        "error": f"unknown path {parsed.path!r}",
                        "endpoints": ["/metrics", "/healthz", "/spans", "/events", "/status"],
                    }
                )
                self._send(404, JSON_CONTENT_TYPE, body)
        except BrokenPipeError:
            pass  # scraper hung up mid-response
        except Exception as exc:  # observability must not crash the host
            try:
                self._send(
                    500,
                    JSON_CONTENT_TYPE,
                    json.dumps({"error": f"{type(exc).__name__}: {exc}"}),
                )
            except Exception:
                pass


class ObservatoryServer:
    """Threaded HTTP server exposing one telemetry instance.

    Parameters
    ----------
    telemetry:
        The :class:`~repro.obs.instrument.Telemetry` to expose.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port.
    health:
        Optional :class:`~repro.core.health.SourceHealth` for ``/healthz``.
    breakers:
        Optional zero-argument callable returning ``{source: state}`` for
        the supervisor's circuit breakers.
    status_provider:
        Optional zero-argument callable returning the ``/status`` payload
        (the dashboard document); defaults to a minimal summary.
    """

    def __init__(
        self,
        telemetry,
        host: str = "127.0.0.1",
        port: int = 0,
        health=None,
        breakers: Optional[Callable[[], Dict[str, str]]] = None,
        status_provider: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.telemetry = telemetry
        self.health = health
        self.breakers = breakers
        self.status_provider = status_provider
        handler = type(
            "BoundObservatoryHandler", (_ObservatoryHandler,), {"observatory": self}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ObservatoryServer":
        """Serve on a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"trac-observatory-{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ObservatoryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- payloads -----------------------------------------------------------

    def healthz(self) -> dict:
        """The ``/healthz`` document."""
        out: dict = {"status": "ok"}
        if self.health is not None:
            snapshot = self.health.to_dict()
            out["sources"] = snapshot
            degraded = sorted(
                sid for sid, entry in snapshot.items() if entry["status"] == "degraded"
            )
            out["degraded"] = degraded
            if degraded:
                out["status"] = "degraded"
        else:
            out["sources"] = {}
            out["degraded"] = []
        if self.breakers is not None:
            out["breakers"] = dict(self.breakers())
        events = self.telemetry.events
        out["events"] = {"retained": len(events), "total": events.total}
        return out

    def status(self) -> dict:
        """The ``/status`` document (dashboard payload)."""
        if self.status_provider is not None:
            return self.status_provider()
        return {"healthz": self.healthz()}

    def __repr__(self) -> str:
        running = "running" if self._thread is not None else "stopped"
        return f"ObservatoryServer({self.url}, {running})"


def serve(
    telemetry=None,
    host: str = "127.0.0.1",
    port: int = 0,
    health=None,
    breakers: Optional[Callable[[], Dict[str, str]]] = None,
    status_provider: Optional[Callable[[], dict]] = None,
) -> ObservatoryServer:
    """Start an :class:`ObservatoryServer` for ``telemetry`` (the process
    default when omitted) and return it already serving."""
    if telemetry is None:
        from repro.obs.instrument import get_default

        telemetry = get_default()
    server = ObservatoryServer(
        telemetry,
        host=host,
        port=port,
        health=health,
        breakers=breakers,
        status_provider=status_provider,
    )
    return server.start()
