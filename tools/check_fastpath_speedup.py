#!/usr/bin/env python
"""Guard: the fast path must keep focused reports >= 2x the baseline.

The fast path is three optimizations working together (see
``docs/PERFORMANCE.md``):

* copy-on-write snapshots — ``MemoryBackend.snapshot()`` shares row lists
  instead of deep-copying every table;
* compiled predicates/projections — expressions are lowered once per query
  instead of AST-walked per row;
* the resolved-query cache — repeated SQL strings skip parse+resolve.

This script measures focused-report throughput twice on the same paper
workload — once with every fast-path feature disabled
(``MemoryBackend(cow_snapshots=False)``, interpreted expressions, query
cache off) and once with the defaults — and fails when the measured
speedup falls below the threshold (default 2x). It is the perf analogue of
``tools/check_telemetry_overhead.py``: a regression here means someone
quietly re-introduced per-row interpretation or per-snapshot copying.

Run:  python tools/check_fastpath_speedup.py [--runs N] [--threshold X]
Exit status 0 when the speedup holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.backends.memory import MemoryBackend
from repro.core.report import RecencyReporter
from repro.engine import cache as query_cache
from repro.engine.compile import set_compiled_default
from repro.workload.generator import (
    WorkloadConfig,
    generate_workload,
    load_workload,
    workload_catalog,
)
from repro.workload.queries import paper_queries, query_machine_indexes


def build_reporter(num_sources: int, data_ratio: int, fast: bool) -> RecencyReporter:
    catalog = workload_catalog(num_sources)
    backend = MemoryBackend(catalog, cow_snapshots=fast)
    data = generate_workload(
        WorkloadConfig(num_sources=num_sources, data_ratio=data_ratio),
        query_machine_indexes(num_sources),
    )
    load_workload(backend, data)
    return RecencyReporter(backend, create_temp_tables=False)


def measure(reporter: RecencyReporter, sql: str, runs: int) -> float:
    """Mean seconds per focused report (first run discarded as warm-up)."""
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        reporter.report(sql, method="focused")
        samples.append(time.perf_counter() - start)
    if len(samples) > 1:
        samples = samples[1:]
    return sum(samples) / len(samples)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=11)
    parser.add_argument("--threshold", type=float, default=2.0, help="min speedup")
    parser.add_argument("--num-sources", type=int, default=40)
    parser.add_argument("--data-ratio", type=int, default=200)
    args = parser.parse_args(argv)

    obs.disable()
    sql = paper_queries(args.num_sources)["Q1"]

    # Baseline: deep-copy snapshots, interpreted expressions, no query cache.
    baseline = build_reporter(args.num_sources, args.data_ratio, fast=False)
    saved_default = set_compiled_default(False)
    saved_cache = query_cache.get_cache()
    query_cache.configure(0)
    try:
        t_baseline = measure(baseline, sql, args.runs)
    finally:
        set_compiled_default(saved_default)
        query_cache.configure(saved_cache.maxsize)
        baseline.close()

    # Fast path: the shipped defaults.
    fast = build_reporter(args.num_sources, args.data_ratio, fast=True)
    try:
        t_fast = measure(fast, sql, args.runs)
    finally:
        fast.close()

    speedup = t_baseline / t_fast if t_fast > 0 else float("inf")

    print("fast-path speedup guard")
    print(f"  baseline report time (interpreted + deep copy): {t_baseline * 1e3:9.3f} ms")
    print(f"  fast-path report time (CoW + compiled + cache) : {t_fast * 1e3:9.3f} ms")
    print(f"  speedup                                        : {speedup:9.2f} x"
          f"  (threshold {args.threshold}x)")

    if speedup < args.threshold:
        print("FAIL: fast-path speedup fell below the threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
