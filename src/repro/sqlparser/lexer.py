"""Hand-written SQL lexer.

Produces a flat list of :class:`~repro.sqlparser.tokens.Token` ending with an
``EOF`` token. Strings use single quotes with ``''`` as the escaped quote
(standard SQL). Line comments (``--``) and block comments (``/* */``) are
skipped.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError
from repro.sqlparser.tokens import KEYWORDS, Token, TokenType

_OPERATOR_STARTS = "=<>!"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into SQL tokens.

    Raises
    ------
    LexerError
        On unterminated strings/comments or unexpected characters.
    """
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "-" and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == "."):
            start = i
            value, i = _read_number(text, i + 1)
            value = -value  # type: ignore[operator]
            tokens.append(Token(TokenType.NUMBER, value, start))
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise LexerError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            start = i
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, start))
            continue
        if ch.isalpha() or ch == "_" or ch == '"':
            word, start, i = _read_word(text, i)
            upper = word.upper()
            if upper in KEYWORDS and not word.startswith('"'):
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word.strip('"'), start))
            continue
        if ch in _OPERATOR_STARTS:
            start = i
            op, i = _read_operator(text, i)
            tokens.append(Token(TokenType.OPERATOR, op, start))
            continue
        simple = {
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "*": TokenType.STAR,
            ";": TokenType.SEMICOLON,
        }.get(ch)
        if simple is not None:
            tokens.append(Token(simple, ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def _read_string(text: str, start: int) -> tuple:
    """Read a single-quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    parts: List[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)


def _read_number(text: str, start: int) -> tuple:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    raw = text[start:i]
    try:
        value: object = float(raw) if (seen_dot or seen_exp) else int(raw)
    except ValueError as exc:
        raise LexerError(f"malformed number {raw!r}", start) from exc
    return value, i


def _read_word(text: str, start: int) -> tuple:
    n = len(text)
    if text[start] == '"':
        end = text.find('"', start + 1)
        if end == -1:
            raise LexerError("unterminated quoted identifier", start)
        return text[start : end + 1], start, end + 1
    i = start
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    return text[start:i], start, i


def _read_operator(text: str, start: int) -> tuple:
    two = text[start : start + 2]
    if two in ("<=", ">=", "<>", "!="):
        return two, start + 2
    ch = text[start]
    if ch in "=<>":
        return ch, start + 1
    raise LexerError(f"unexpected operator character {ch!r}", start)
