"""False-positive-rate results (the numbers at the end of Section 5.2).

Ground truth comes from the brute-force oracle on the memory backend; the
Focused and Naive sets come from the full reporting pipeline. The paper's
headline numbers, reproduced here as assertions:

* fpr(Focused) = 0 for all four queries;
* fpr(Naive, Q1/Q3) = (num_sources - 6) / 6 — 16,665 at paper scale;
* fpr(Naive, Q2/Q4) ≈ 6 / (num_sources - 6) — 0.00006 at paper scale.

Run:  pytest benchmarks/test_fpr.py --benchmark-only
"""

import pytest

from repro.bench.metrics import false_positive_rate, naive_fpr
from repro.core.bruteforce import brute_force_relevant_sources
from repro.core.report import RecencyReporter
from repro.sqlparser.parser import parse_query
from repro.sqlparser.resolver import resolve
from repro.workload.queries import paper_queries

QUERIES = ["Q1", "Q2", "Q3", "Q4"]


@pytest.fixture(scope="module")
def exact_sets(many_sources_memory_backend):
    backend = many_sources_memory_backend
    num_sources = backend.row_count("heartbeat")
    out = {}
    for name, sql in paper_queries(num_sources).items():
        resolved = resolve(parse_query(sql), backend.catalog)
        out[name] = brute_force_relevant_sources(backend.db, resolved)
    return out


@pytest.mark.parametrize("query", QUERIES)
class TestFocusedPrecision:
    def test_focused_fpr_is_zero(
        self, benchmark, many_sources_memory_backend, exact_sets, query
    ):
        backend = many_sources_memory_backend
        num_sources = backend.row_count("heartbeat")
        sql = paper_queries(num_sources)[query]
        reporter = RecencyReporter(backend, create_temp_tables=False)
        benchmark.group = f"fpr-{query}"

        report = benchmark(lambda: reporter.report(sql, method="focused"))
        fpr = false_positive_rate(report.relevant_source_ids, exact_sets[query])
        assert fpr == 0.0


@pytest.mark.parametrize("query", QUERIES)
class TestNaivePrecision:
    def test_naive_fpr_matches_closed_form(
        self, benchmark, many_sources_memory_backend, exact_sets, query
    ):
        backend = many_sources_memory_backend
        num_sources = backend.row_count("heartbeat")
        sql = paper_queries(num_sources)[query]
        reporter = RecencyReporter(backend, create_temp_tables=False)
        benchmark.group = f"fpr-{query}"

        report = benchmark(lambda: reporter.report(sql, method="naive"))
        fpr = false_positive_rate(report.relevant_source_ids, exact_sets[query])
        assert fpr == pytest.approx(naive_fpr(num_sources, len(exact_sets[query])))
        if query in ("Q1", "Q3"):
            assert fpr > 1.0  # selective: naive is wildly imprecise
        else:
            assert fpr < 0.1  # non-selective: almost everything is relevant


class TestBruteForceCost:
    """The oracle itself, timed: why the paper uses it only offline."""

    def test_brute_force_q1(self, benchmark, many_sources_memory_backend):
        backend = many_sources_memory_backend
        num_sources = backend.row_count("heartbeat")
        sql = paper_queries(num_sources)["Q1"]
        resolved = resolve(parse_query(sql), backend.catalog)
        benchmark.group = "fpr-oracle-cost"
        result = benchmark(lambda: brute_force_relevant_sources(backend.db, resolved))
        assert len(result) == 6
