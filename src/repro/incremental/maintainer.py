"""The materialized-report maintenance layer.

Every recency report used to recompute its relevant-source set by running
the plan's heartbeat subqueries from scratch — a full Heartbeat scan per
subquery per report — even though heartbeats arrive as a *stream* and
monitoring queries repeat with identical predicate structure. This module
keeps those sets materialized and maintains them in O(affected entries)
per mutation, so a repeated query pays a dictionary copy instead of a
scan.

Eligibility (the "streamable" criterion)
----------------------------------------
An entry can be maintained from the heartbeat stream alone when relevance
membership is a pure function of ``source_id``. That is exactly the case
when every subquery of a ``focused`` plan:

* scans only the Heartbeat table (no joined relations),
* carries no existence guards, and
* references only ``trac_h.source_id`` in its WHERE clause.

Then a source is relevant iff *any* subquery's WHERE accepts its id, which
:func:`repro.predicates.evaluate.evaluate_predicate` can decide without
touching the SQL engine. Plans with joins, guards, ``all``/``empty`` mode
or the naive method bypass the fast path entirely (the reporter records
the ``bypass`` verdict).

Keying and invalidation
-----------------------
Entries are keyed by the tuple of subquery SQL strings — the canonical
form the DNF classifier and subquery builder produce. This replaces the
old whole-``catalog.generation`` flush for schema-compatible changes: a
schema change that alters planning yields *different* subquery SQL, so the
stale entry is simply never looked up again and ages out of the LRU, while
entries over untouched predicates keep serving hits. Data-level
invalidation is event-driven: the backend's change listeners call straight
into this maintainer, and heartbeat *deletes* in particular remove the
tombstoned source from every materialized set before the next lookup can
observe it.

Statistics
----------
Each entry also maintains running per-source recency statistics
(count/mean/M2 via Welford, with constant-time remove) exposed through
:meth:`IncrementalMaintainer.stats` and telemetry. The *report's* z-score
split still recomputes mean/σ from the materialized values with the same
``mean_stddev`` arithmetic as the from-scratch path — summation order and
rounding differ under Welford, and the differential oracle demands
byte-identical reports. The scan the split performs is O(k) over the
already-materialized relevant set, not O(N) over Heartbeat.

Consistency model
-----------------
Mutations and reports are assumed to come from one writer thread (the
simulator poll loop and its reporter), which is how every backend consumer
in this codebase works. Registration stores a from-scratch result computed
in a snapshot; with a single writer no mutation can interleave between
snapshot and registration. Rows with non-string source ids or
non-numeric recencies cannot be mirrored faithfully (the from-scratch path
keys by ``str(sid)`` per *row*); observing one degrades the maintainer —
every lookup bypasses until the table is cleared or resynced clean.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog import HEARTBEAT_SOURCE_COLUMN, HEARTBEAT_TABLE
from repro.core.statistics import SourceRecency
from repro.errors import TracError
from repro.predicates.evaluate import evaluate_predicate
from repro.sqlparser import ast

DEFAULT_MAXSIZE = 64

#: Invalidation reasons (label values on the invalidations counter).
REASON_DELETE = "delete"
REASON_CLEARED = "cleared"
REASON_RESYNC = "resync"
REASON_DEGRADED = "degraded"


def plan_streamable(plan: object) -> bool:
    """Whether ``plan``'s relevant-source set is a pure function of the
    heartbeat stream (see module docstring for the criterion)."""
    if getattr(plan, "mode", None) != "focused" or not plan.subqueries:
        return False
    for sub in plan.subqueries:
        if sub.guards:
            return False
        query = sub.query
        if len(query.tables) != 1:
            return False
        table = query.tables[0]
        if table.name.lower() != HEARTBEAT_TABLE:
            return False
        h_alias = table.alias or table.name
        if query.where is None:
            continue
        for ref in ast.column_refs(query.where):
            if ref.binding_key != h_alias:
                return False
            if ref.name.lower() != HEARTBEAT_SOURCE_COLUMN:
                return False
    return True


class WelfordAccumulator:
    """Streaming count/mean/M2 with constant-time add, remove, replace."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def remove(self, x: float) -> None:
        self.count -= 1
        if self.count <= 0:
            self.count = 0
            self.mean = 0.0
            self.m2 = 0.0
            return
        delta = x - self.mean
        self.mean -= delta / self.count
        # Floating error can push M2 a hair below zero on near-empty sets.
        self.m2 = max(self.m2 - delta * (x - self.mean), 0.0)

    def replace(self, old: float, new: float) -> None:
        self.remove(old)
        self.add(new)

    def stddev(self) -> float:
        """Population standard deviation (0 for fewer than two values)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / self.count)

    def clear(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0


class _Entry:
    """One materialized relevant-source set.

    ``membership`` caches the per-source verdict of the entry's WHERE
    clauses; it is seeded from the *oracle* result at registration (so the
    engine's own WHERE semantics decide every source present at that
    point) and extended by :func:`evaluate_predicate` for sources first
    seen later. ``sources`` maps each member id to its latest recency —
    exactly the dict the from-scratch path builds, so materialization is
    ``sorted(sources.items())``.
    """

    __slots__ = ("wheres", "sources", "membership", "welford")

    def __init__(self, wheres: Sequence[Optional[ast.Expr]]) -> None:
        self.wheres = list(wheres)
        self.sources: Dict[str, float] = {}
        self.membership: Dict[str, bool] = {}
        self.welford = WelfordAccumulator()

    def _member(self, source_id: str) -> bool:
        cached = self.membership.get(source_id)
        if cached is not None:
            return cached
        member = any(
            where is None or evaluate_predicate(where, lambda ref: source_id)
            for where in self.wheres
        )
        self.membership[source_id] = member
        return member

    def upsert(self, source_id: str, recency: float) -> None:
        if not self._member(source_id):
            return
        old = self.sources.get(source_id)
        self.sources[source_id] = recency
        if old is None:
            self.welford.add(recency)
        else:
            self.welford.replace(old, recency)

    def remove(self, source_id: str) -> None:
        self.membership.pop(source_id, None)
        old = self.sources.pop(source_id, None)
        if old is not None:
            self.welford.remove(old)

    def clear_sources(self) -> None:
        self.sources.clear()
        self.welford.clear()

    def materialize(self) -> List[SourceRecency]:
        return [
            SourceRecency(source_id, recency)
            for source_id, recency in sorted(self.sources.items())
        ]


class IncrementalMaintainer:
    """Maintains materialized relevant-source sets off a backend's
    change-listener stream.

    Parameters
    ----------
    backend:
        A backend exposing ``add_change_listener`` (currently
        :class:`~repro.backends.memory.MemoryBackend`) whose ``db``
        attribute holds the live relations.
    maxsize:
        LRU capacity in entries (distinct plan structures).
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; ``None`` follows the
        process-wide default. Counters, the maintenance-latency histogram
        and invalidation events are recorded only when it is enabled; the
        plain integer counters on the maintainer itself are always kept.
    """

    def __init__(
        self,
        backend: object,
        maxsize: int = DEFAULT_MAXSIZE,
        telemetry: Optional[object] = None,
    ) -> None:
        if not hasattr(backend, "add_change_listener"):
            raise TracError(
                f"backend {type(backend).__name__} does not publish change "
                "events; incremental maintenance needs MemoryBackend"
            )
        self.backend = backend
        self.maxsize = max(1, int(maxsize))
        self.telemetry = telemetry
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.updates = 0
        self.invalidations = 0
        self._entries: "OrderedDict[Tuple[str, ...], _Entry]" = OrderedDict()
        self._hb: Dict[str, float] = {}
        self._degraded = False
        self.resync(_initial=True)
        backend.add_change_listener(self)

    # -- lookup / registration (reporter side) ------------------------------

    @staticmethod
    def _key(plan: object) -> Tuple[str, ...]:
        return tuple(sub.sql for sub in plan.subqueries)

    def fetch(self, plan: object) -> Tuple[str, Optional[List[SourceRecency]]]:
        """Look ``plan`` up; returns ``(verdict, sources)`` where verdict
        is ``"hit"`` (sources materialized), ``"miss"`` (eligible but not
        yet registered) or ``"bypass"`` (ineligible / degraded)."""
        if self._degraded or not plan_streamable(plan):
            self.bypasses += 1
            self._record_lookup("bypass")
            return "bypass", None
        entry = self._entries.get(self._key(plan))
        if entry is None:
            self.misses += 1
            self._record_lookup("miss")
            return "miss", None
        self._entries.move_to_end(self._key(plan))
        self.hits += 1
        self._record_lookup("hit")
        return "hit", entry.materialize()

    def register(self, plan: object, sources: Sequence[SourceRecency]) -> None:
        """Seed an entry for ``plan`` from a from-scratch ``sources``
        result just computed against the backend's current state."""
        if self._degraded or not plan_streamable(plan):
            return
        entry = _Entry([sub.query.where for sub in plan.subqueries])
        for source in sources:
            entry.sources[source.source_id] = source.recency
            entry.welford.add(source.recency)
        members = set(entry.sources)
        entry.membership = {sid: sid in members for sid in self._hb}
        self._entries[self._key(plan)] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    # -- backend change-listener interface ----------------------------------

    def heartbeat_upserted(self, source_id: object, recency: object) -> None:
        started = time.perf_counter()
        self._apply(source_id, recency)
        self._record_maintenance(started)

    def heartbeat_rows_inserted(self, rows: Sequence[Sequence[object]]) -> None:
        started = time.perf_counter()
        for row in rows:
            self._apply(row[0], row[1])
        self._record_maintenance(started)

    def heartbeat_rows_upserted(
        self, key_columns: Sequence[str], rows: Sequence[Sequence[object]]
    ) -> None:
        started = time.perf_counter()
        if tuple(c.lower() for c in key_columns) == (HEARTBEAT_SOURCE_COLUMN,):
            for row in rows:
                self._apply(row[0], row[1])
        else:
            # Keyed by something other than source_id: per-source last-wins
            # cannot be tracked precisely, so rebuild from the table.
            self.resync()
        self._record_maintenance(started)

    def heartbeat_rows_deleted(
        self, key_columns: Sequence[str], keys: Sequence[Sequence[object]]
    ) -> None:
        started = time.perf_counter()
        if tuple(c.lower() for c in key_columns) == (HEARTBEAT_SOURCE_COLUMN,):
            if not self._degraded:
                for key in keys:
                    source_id = key[0]
                    if not isinstance(source_id, str):
                        continue  # cannot match a (non-degraded) str mirror
                    self._hb.pop(source_id, None)
                    for entry in self._entries.values():
                        entry.remove(source_id)
                self.updates += 1
            self._invalidated(REASON_DELETE, keys=len(keys))
        else:
            self.resync()
        self._record_maintenance(started)

    def heartbeat_cleared(self) -> None:
        self._hb.clear()
        self._degraded = False
        for entry in self._entries.values():
            entry.clear_sources()
        self._invalidated(REASON_CLEARED)

    def table_changed(self, table: str) -> None:
        """Non-heartbeat mutation: streamable entries read only Heartbeat,
        so materialized data stays valid. A *schema* change that alters
        planning produces different subquery SQL — a different key — so
        stale entries are never served (they age out of the LRU)."""

    # -- maintenance core ----------------------------------------------------

    def _apply(self, source_id: object, recency: object) -> None:
        if self._degraded or source_id is None:
            return
        if not isinstance(source_id, str):
            self._degrade()
            return
        try:
            value = float(recency)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            self._degrade()
            return
        self._hb[source_id] = value
        for entry in self._entries.values():
            entry.upsert(source_id, value)
        self.updates += 1

    def resync(self, _initial: bool = False) -> None:
        """Rebuild the heartbeat mirror from the live relation and drop all
        entries (they re-register from the oracle on the next miss)."""
        relation = self.backend.db.relation(HEARTBEAT_TABLE)
        mirror: Dict[str, float] = {}
        degraded = False
        for row in relation.rows:
            source_id, recency = row[0], row[1]
            if source_id is None:
                continue  # the from-scratch path skips NULL ids too
            if not isinstance(source_id, str):
                degraded = True
                break
            try:
                mirror[source_id] = float(recency)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                degraded = True
                break
        self._degraded = degraded
        self._hb = {} if degraded else mirror
        self._entries.clear()
        if not _initial:
            self._invalidated(REASON_DEGRADED if degraded else REASON_RESYNC)

    def _degrade(self) -> None:
        self._degraded = True
        self._hb = {}
        self._entries.clear()
        self._invalidated(REASON_DEGRADED)

    # -- stats / telemetry ---------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._degraded

    def stats(self) -> Dict[str, object]:
        lookups = self.hits + self.misses + self.bypasses
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "updates": self.updates,
            "invalidations": self.invalidations,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "degraded": self._degraded,
        }

    def entry_stats(self) -> List[Dict[str, object]]:
        """Per-entry streaming statistics (Welford), freshest last."""
        return [
            {
                "subqueries": len(key),
                "sources": entry.welford.count,
                "mean": entry.welford.mean,
                "stddev": entry.welford.stddev(),
            }
            for key, entry in self._entries.items()
        ]

    def _tel(self) -> Optional[object]:
        tel = self.telemetry
        if tel is None:
            from repro.obs import instrument as obs

            tel = obs.get_default()
        if getattr(tel, "enabled", False):
            return tel
        return None

    def _record_lookup(self, outcome: str) -> None:
        tel = self._tel()
        if tel is not None:
            from repro.obs import instrument as obs

            obs.record_incremental(tel, outcome)

    def _record_maintenance(self, started: float) -> None:
        tel = self._tel()
        if tel is not None:
            from repro.obs import instrument as obs

            obs.record_incremental_maintenance(tel, time.perf_counter() - started)

    def _invalidated(self, reason: str, **attrs: object) -> None:
        self.invalidations += 1
        tel = self._tel()
        if tel is not None:
            from repro.obs import instrument as obs
            from repro.obs.events import EVT_INCREMENTAL_INVALIDATED

            obs.record_incremental_invalidation(tel, reason)
            tel.emit(
                EVT_INCREMENTAL_INVALIDATED, severity="debug", reason=reason, **attrs
            )


__all__ = [
    "IncrementalMaintainer",
    "WelfordAccumulator",
    "plan_streamable",
    "DEFAULT_MAXSIZE",
]
