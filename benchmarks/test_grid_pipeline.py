"""Substrate benchmarks: the monitoring pipeline itself.

Not a paper figure — these time the simulator/sniffer machinery so
regressions in the substrate don't silently distort the Figure 1/2
measurements built on top of it.

Run:  pytest benchmarks/test_grid_pipeline.py --benchmark-only
"""

import pytest

from repro import MemoryBackend
from repro.core.report import RecencyReporter
from repro.grid import (
    GridSimulator,
    Machine,
    SimulationConfig,
    Sniffer,
    SnifferConfig,
    monitoring_catalog,
)


class TestSimulatorThroughput:
    @pytest.mark.parametrize("machines", [10, 50])
    def test_tick_rate(self, benchmark, machines):
        benchmark.group = "grid-sim-ticks"
        sim = GridSimulator(
            SimulationConfig(num_machines=machines, seed=1, job_submit_probability=0.1)
        )
        benchmark(sim.run, 10.0)

    def test_job_lifecycle_cost(self, benchmark):
        benchmark.group = "grid-sim-jobs"
        sim = GridSimulator(SimulationConfig(num_machines=10, seed=2))

        def submit_and_run():
            sim.submit_job("bench", "m1", duration=5.0)
            sim.run(2.0)

        benchmark(submit_and_run)


class TestSnifferThroughput:
    def test_drain_large_log(self, benchmark):
        """Records applied per poll over a 5,000-event backlog."""
        benchmark.group = "sniffer-drain"

        def setup():
            backend = MemoryBackend(monitoring_catalog(["m1"]))
            machine = Machine("m1")
            for t in range(5000):
                machine.heartbeat(float(t))
            sniffer = Sniffer(machine, backend, SnifferConfig(lag=0.0))
            return (sniffer,), {}

        def drain(sniffer):
            assert sniffer.poll(1e9) == 5000

        benchmark.pedantic(drain, setup=setup, rounds=10)

    def test_upsert_heavy_log(self, benchmark):
        """Activity-state churn exercises the upsert path per record."""
        benchmark.group = "sniffer-drain"

        def setup():
            backend = MemoryBackend(monitoring_catalog(["m1"]))
            machine = Machine("m1")
            for t in range(2000):
                machine.set_activity(float(t), "busy" if t % 2 else "idle")
            sniffer = Sniffer(machine, backend, SnifferConfig(lag=0.0))
            return (sniffer,), {}

        def drain(sniffer):
            sniffer.poll(1e9)

        benchmark.pedantic(drain, setup=setup, rounds=10)


class TestReportOnLiveGrid:
    @pytest.fixture(scope="class")
    def live_grid(self):
        sim = GridSimulator(
            SimulationConfig(num_machines=50, seed=3, job_submit_probability=0.3)
        )
        sim.run(600)
        return sim

    def test_report_latency_on_simulated_db(self, benchmark, live_grid):
        benchmark.group = "grid-report"
        reporter = RecencyReporter(live_grid.backend, create_temp_tables=False)
        report = benchmark(
            lambda: reporter.report("SELECT mach_id FROM activity WHERE value = 'idle'")
        )
        assert len(report.relevant_source_ids) == 50

    def test_join_report_latency(self, benchmark, live_grid):
        benchmark.group = "grid-report"
        reporter = RecencyReporter(live_grid.backend, create_temp_tables=False)
        sql = (
            "SELECT A.mach_id FROM routing R, activity A "
            "WHERE R.mach_id = 'm1' AND R.neighbor = A.mach_id"
        )
        report = benchmark(lambda: reporter.report(sql))
        assert report.relevant_source_ids


class TestFileReplay:
    def test_archive_and_replay(self, benchmark, tmp_path_factory):
        benchmark.group = "file-replay"
        sim = GridSimulator(SimulationConfig(num_machines=10, seed=4))
        sim.run(300)
        directory = str(tmp_path_factory.mktemp("logs"))

        from repro.grid import archive_simulation, replay_directory

        archive_simulation(sim, directory)

        def replay():
            backend = MemoryBackend(monitoring_catalog(sim.machine_ids))
            replay_directory(backend, directory)
            return backend

        backend = benchmark(replay)
        assert backend.row_count("heartbeat") == 10
