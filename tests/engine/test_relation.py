"""Relation / Database container tests."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.engine import Database, Relation
from repro.errors import EngineError


def schema():
    return TableSchema(
        "t", [Column("a", "TEXT"), Column("b", "INTEGER")], source_column="a"
    )


class TestRelation:
    def test_insert_and_len(self):
        r = Relation(schema())
        r.insert(("x", 1))
        assert len(r) == 1
        assert r.rows == [("x", 1)]

    def test_insert_converts_to_tuple(self):
        r = Relation(schema())
        r.insert(["x", 1])
        assert isinstance(r.rows[0], tuple)

    def test_arity_check(self):
        r = Relation(schema())
        with pytest.raises(EngineError):
            r.insert(("x",))

    def test_bag_semantics(self):
        r = Relation(schema())
        r.insert(("x", 1))
        r.insert(("x", 1))
        assert len(r) == 2

    def test_insert_many(self):
        r = Relation(schema())
        r.insert_many([("x", 1), ("y", 2)])
        assert len(r) == 2

    def test_constructor_rows(self):
        r = Relation(schema(), [("x", 1)])
        assert len(r) == 1

    def test_delete_where(self):
        r = Relation(schema(), [("x", 1), ("y", 2), ("x", 3)])
        removed = r.delete_where(lambda row: row[0] == "x")
        assert removed == 2
        assert r.rows == [("y", 2)]

    def test_update_where(self):
        r = Relation(schema(), [("x", 1), ("y", 2)])
        updated = r.update_where(lambda row: row[0] == "x", lambda row: ("x", 99))
        assert updated == 1
        assert ("x", 99) in r.rows

    def test_update_arity_check(self):
        r = Relation(schema(), [("x", 1)])
        with pytest.raises(EngineError):
            r.update_where(lambda row: True, lambda row: ("x",))

    def test_column_values(self):
        r = Relation(schema(), [("x", 1), ("y", 2)])
        assert r.column_values("b") == [1, 2]

    def test_copy_is_independent(self):
        r = Relation(schema(), [("x", 1)])
        clone = r.copy()
        clone.insert(("y", 2))
        assert len(r) == 1
        assert len(clone) == 2


class TestDatabase:
    def test_catalog_tables_materialized(self):
        db = Database(Catalog([schema()]))
        assert db.has("t")
        assert db.has("heartbeat")

    def test_insert_through_db(self):
        db = Database(Catalog([schema()]))
        db.insert("t", ("x", 1))
        assert len(db.relation("t")) == 1

    def test_missing_relation(self):
        db = Database(Catalog())
        with pytest.raises(EngineError):
            db.relation("nope")

    def test_add_table_registers_catalog(self):
        db = Database(Catalog())
        db.add_table(schema(), [("x", 1)])
        assert db.catalog.has("t")
        assert len(db.relation("t")) == 1

    def test_copy_is_deep_for_rows(self):
        db = Database(Catalog([schema()]))
        db.insert("t", ("x", 1))
        clone = db.copy()
        clone.insert("t", ("y", 2))
        assert len(db.relation("t")) == 1
        assert len(clone.relation("t")) == 2

    def test_tables_listing(self):
        db = Database(Catalog([schema()]))
        assert db.tables() == ["heartbeat", "t"]
