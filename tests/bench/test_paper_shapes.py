"""Regression net for the paper's *qualitative* performance claims.

These run a miniature sweep and assert the relationships (not the absolute
numbers) that Figure 1 and the fpr table report. Margins are deliberately
loose — an order of magnitude where the real gap is three — so the tests
stay robust to machine noise while still catching structural regressions
(e.g. the Focused method accidentally scanning all sources).
"""

import pytest

from repro import SQLiteBackend
from repro.bench.harness import measure_methods
from repro.core.report import RecencyReporter
from repro.workload.generator import (
    WorkloadConfig,
    generate_workload,
    load_workload,
    workload_catalog,
)
from repro.workload.queries import paper_queries, query_machine_indexes

MANY_SOURCES = 2000
RATIO = 10


@pytest.fixture(scope="module")
def many_sources_setup():
    catalog = workload_catalog(MANY_SOURCES)
    backend = SQLiteBackend(catalog)
    config = WorkloadConfig(num_sources=MANY_SOURCES, data_ratio=RATIO)
    load_workload(
        backend, generate_workload(config, query_machine_indexes(MANY_SOURCES))
    )
    reporter = RecencyReporter(backend, create_temp_tables=False)
    queries = paper_queries(MANY_SOURCES)
    yield reporter, queries
    backend.close()


class TestFigure1Shapes:
    def test_naive_much_worse_than_hardcoded_for_selective_q1(self, many_sources_setup):
        reporter, queries = many_sources_setup
        results = measure_methods(reporter, queries["Q1"], runs=5)
        naive = results["naive"].t_report
        hardcoded = results["focused_hardcoded"].t_report
        assert naive > 3 * hardcoded, (
            f"expected Naive >> Focused-hardcoded for selective Q1 at "
            f"{MANY_SOURCES} sources; got naive={naive:.6f}s vs "
            f"hardcoded={hardcoded:.6f}s"
        )

    def test_naive_and_focused_comparable_for_nonselective_q2(self, many_sources_setup):
        reporter, queries = many_sources_setup
        results = measure_methods(reporter, queries["Q2"], runs=5)
        naive = results["naive"].t_report
        focused = results["focused"].t_report
        # Both must scan (nearly) all sources; within 5x of each other.
        assert focused < 5 * naive and naive < 5 * focused

    def test_focused_reports_six_sources_for_selective_queries(self, many_sources_setup):
        reporter, queries = many_sources_setup
        for name in ("Q1", "Q3"):
            report = reporter.report(queries[name])
            assert len(report.relevant_source_ids) == 6, name

    def test_naive_reports_all_sources(self, many_sources_setup):
        reporter, queries = many_sources_setup
        report = reporter.report(queries["Q1"], method="naive")
        assert len(report.relevant_source_ids) == MANY_SOURCES

    def test_parse_generation_gap(self, many_sources_setup):
        """Focused (auto) pays parse+generation that hardcoded does not."""
        reporter, queries = many_sources_setup
        report = reporter.report(queries["Q3"], method="focused")
        plan = reporter.plan_for(queries["Q3"])
        hardcoded = reporter.report(queries["Q3"], method="focused_hardcoded", plan=plan)
        assert report.timings.parse_generate > 0
        assert hardcoded.timings.parse_generate == 0


class TestHighRatioShapes:
    def test_overheads_shrink_at_high_ratio(self):
        """At few sources / many rows per source, every method's overhead
        collapses (the user query dominates)."""
        sources, ratio = 20, 2000
        backend = SQLiteBackend(workload_catalog(sources))
        config = WorkloadConfig(num_sources=sources, data_ratio=ratio)
        load_workload(backend, generate_workload(config, query_machine_indexes(sources)))
        reporter = RecencyReporter(backend, create_temp_tables=False)
        try:
            queries = paper_queries(sources)
            results = measure_methods(reporter, queries["Q1"], runs=5)
            for method, measurement in results.items():
                assert measurement.overhead < 3.0, (
                    f"{method} overhead {measurement.overhead:.1%} did not "
                    "collapse at high data ratio"
                )
        finally:
            backend.close()
