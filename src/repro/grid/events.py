"""Log event records.

Every status record an application process writes to its log is a
:class:`LogEvent`: the event's timestamp (the simulation clock when it
happened — Section 3.1: "each update is tagged with the time of the event
recorded in the update"), the source machine, a kind, and a payload.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional


class EventKind(enum.Enum):
    """The record types the monitoring pipeline understands."""

    MACHINE_STATE = "machine_state"      # payload: value = 'idle' | 'busy'
    NEIGHBOR_ADDED = "neighbor_added"    # payload: neighbor
    JOB_SUBMITTED = "job_submitted"      # payload: job_id, owner
    JOB_SCHEDULED = "job_scheduled"      # payload: job_id, remote_machine
    JOB_STARTED = "job_started"          # payload: job_id
    JOB_COMPLETED = "job_completed"      # payload: job_id
    JOB_SUSPENDED = "job_suspended"      # payload: job_id
    HEARTBEAT = "heartbeat"              # "nothing to report" record


class LogEvent:
    """One immutable log record."""

    __slots__ = ("timestamp", "source", "kind", "payload")

    def __init__(
        self,
        timestamp: float,
        source: str,
        kind: EventKind,
        payload: Optional[Dict[str, object]] = None,
    ) -> None:
        self.timestamp = float(timestamp)
        self.source = source
        self.kind = kind
        self.payload = dict(payload or {})

    def value(self, key: str) -> object:
        """Payload field access with a clear error."""
        if key not in self.payload:
            raise KeyError(
                f"event {self.kind.value!r} from {self.source!r} has no payload {key!r}"
            )
        return self.payload[key]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LogEvent)
            and self.timestamp == other.timestamp
            and self.source == other.source
            and self.kind == other.kind
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.timestamp, self.source, self.kind))

    def __repr__(self) -> str:
        return (
            f"LogEvent(t={self.timestamp}, src={self.source!r}, "
            f"kind={self.kind.value}, {self.payload!r})"
        )
